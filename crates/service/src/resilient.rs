//! A resilient planning client over an ordered list of replicas.
//!
//! [`ResilientClient`] wraps one [`Client`] per replica and layers the
//! fabric policies on top:
//!
//! * **Retry with deterministic backoff** — each failed attempt waits an
//!   exponentially growing interval with jitter drawn from a seeded
//!   generator, so two runs with the same seed back off identically.
//! * **Per-replica circuit breaker** — `failure_threshold` consecutive
//!   failures open a replica's breaker; while open, the replica is
//!   skipped. The cooldown is counted in *selection rounds*, not wall
//!   time, so breaker transitions replay deterministically. After the
//!   cooldown the breaker goes half-open: one probe request either
//!   closes it or re-opens it.
//! * **Hedged requests** — optionally, when a primary has not answered
//!   within `hedge_after`, the same request is fired at the next
//!   admissible replica and the first certified response wins. This is
//!   safe because planning is idempotent and every response carries its
//!   certificate's transcript hash; with [`ResilientConfig::hedge_verify`]
//!   both responses are awaited and compared, and a hash mismatch is the
//!   hard typed error [`ServiceError::ReplicaDivergence`] — the fabric
//!   never silently picks one of two disagreeing replicas.
//!
//! Every decision the fabric takes is appended to an event log of
//! [`FabricEvent`]s that deliberately records *choices, never wall-clock
//! readings*, so a chaos run can be replayed under the same seed and the
//! two logs diffed for equality.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::error::{ErrorCode, ServiceError};
use crate::proto::{BatchRequest, BatchResponse, PlanRequest, PlanResponse};

/// Tunables for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Read timeout for each individual attempt.
    pub attempt_timeout: Duration,
    /// Total attempts (across all replicas) before giving up with
    /// [`ServiceError::FabricExhausted`].
    pub max_attempts: u32,
    /// First backoff interval; attempt `k` waits ~`base · 2ᵏ` (jittered).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for the jitter generator; the complete retry/backoff/breaker
    /// schedule is a pure function of this seed and the failure pattern.
    pub seed: u64,
    /// Consecutive failures that open a replica's circuit breaker.
    pub failure_threshold: u32,
    /// Selection rounds an open breaker stays open before going
    /// half-open. Counted in rounds, not wall time, for replayability.
    pub cooldown: u32,
    /// Fire a hedge request at the next admissible replica when the
    /// primary has not answered within this delay. `None` disables
    /// hedging.
    pub hedge_after: Option<Duration>,
    /// When hedging, wait for *both* responses and fail hard with
    /// [`ServiceError::ReplicaDivergence`] if their transcript hashes
    /// disagree, instead of returning the first and discarding the
    /// second. Costs latency; buys byzantine-replica detection.
    pub hedge_verify: bool,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            attempt_timeout: Duration::from_secs(2),
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            seed: 0x5EED,
            failure_threshold: 3,
            cooldown: 4,
            hedge_after: None,
            hedge_verify: false,
        }
    }
}

/// Why an attempt failed, coarse enough to be schedule-deterministic:
/// connection resets and torn frames both class as [`FailureClass::Transport`]
/// because which of the two an aborted connection surfaces is an OS-level
/// race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The replica could not be dialed.
    Connect,
    /// The attempt timed out waiting for a response.
    Timeout,
    /// The transport failed mid-exchange (reset, torn frame, CRC damage,
    /// protocol violation).
    Transport,
    /// The server answered with a retryable typed rejection (overload,
    /// drain, transit corruption, internal failure).
    Rejected,
}

/// One fabric decision. The log records *what was decided*, never how
/// long anything took, so logs from two runs with the same seed and the
/// same fault schedule are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// An attempt began against a replica.
    Attempt {
        /// Zero-based attempt number within one `plan` call.
        attempt: u32,
        /// Replica index the attempt targets.
        replica: usize,
    },
    /// The attempt succeeded.
    Success {
        /// Replica that answered.
        replica: usize,
    },
    /// The attempt failed.
    Failure {
        /// Replica that failed.
        replica: usize,
        /// Failure class.
        class: FailureClass,
    },
    /// The fabric slept before the next attempt.
    Backoff {
        /// The attempt that just failed.
        attempt: u32,
        /// The jittered interval, in milliseconds.
        ms: u64,
    },
    /// A replica's breaker opened (failure threshold reached).
    BreakerOpened {
        /// The replica.
        replica: usize,
    },
    /// A replica's breaker aged out of its cooldown and will admit one
    /// probe request.
    BreakerHalfOpen {
        /// The replica.
        replica: usize,
    },
    /// A half-open probe succeeded; the replica is healthy again.
    BreakerClosed {
        /// The replica.
        replica: usize,
    },
    /// The primary was slow; a hedge fired at a second replica.
    HedgeFired {
        /// The slow primary.
        primary: usize,
        /// The hedge target.
        secondary: usize,
    },
    /// A hedged attempt resolved; this replica's response was taken.
    HedgeWinner {
        /// The winning replica.
        replica: usize,
    },
}

/// Circuit breaker state for one replica. Shared with [`crate::mesh`],
/// whose ring failover consults the same open/half-open discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Breaker {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

struct Replica {
    endpoint: String,
    conn: Option<Client>,
    breaker: Breaker,
}

/// The deterministic xorshift64 generator used for backoff jitter (and
/// reused by [`crate::mesh`] for its own jittered retries).
pub(crate) struct XorShift64(u64);

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A planning client over an ordered replica list with retry, backoff,
/// circuit breaking, and optional hedging (see the module docs).
pub struct ResilientClient {
    replicas: Vec<Replica>,
    cfg: ResilientConfig,
    rng: XorShift64,
    events: Vec<FabricEvent>,
    /// Tenant id stamped into every request frame (0 = anonymous).
    tenant: u32,
}

impl ResilientClient {
    /// A fabric over `endpoints`, in preference order (index 0 is tried
    /// first while healthy). Connections are dialed lazily, so replicas
    /// may be down at construction time.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Malformed`] if `endpoints` is empty.
    pub fn new(endpoints: &[String], cfg: ResilientConfig) -> Result<Self, ServiceError> {
        if endpoints.is_empty() {
            return Err(ServiceError::Malformed("no replica endpoints".into()));
        }
        let seed = cfg.seed;
        Ok(ResilientClient {
            replicas: endpoints
                .iter()
                .map(|e| Replica {
                    endpoint: e.clone(),
                    conn: None,
                    breaker: Breaker::Closed { failures: 0 },
                })
                .collect(),
            cfg,
            rng: XorShift64::new(seed),
            events: Vec::new(),
            tenant: 0,
        })
    }

    /// Identify as `tenant` for quota accounting on every subsequent
    /// request. Cached connections are dropped so the change takes
    /// effect immediately on every replica.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
        for r in &mut self.replicas {
            if let Some(c) = &mut r.conn {
                c.set_tenant(tenant);
            }
        }
    }

    /// The decision log accumulated so far.
    pub fn events(&self) -> &[FabricEvent] {
        &self.events
    }

    /// Drain and return the decision log.
    pub fn take_events(&mut self) -> Vec<FabricEvent> {
        std::mem::take(&mut self.events)
    }

    /// Plan through the fabric: try replicas in breaker-aware order with
    /// per-attempt timeouts, backing off between failures, hedging when
    /// configured.
    ///
    /// # Errors
    ///
    /// [`ServiceError::FabricExhausted`] when every attempt failed;
    /// [`ServiceError::ReplicaDivergence`] when verified hedging caught
    /// replicas disagreeing; a non-retryable server rejection
    /// (`Malformed`, `Unsupported`) immediately as
    /// [`ServiceError::Rejected`].
    pub fn plan(&mut self, req: &PlanRequest) -> Result<PlanResponse, ServiceError> {
        let max_attempts = self.cfg.max_attempts.max(1);
        let mut last: Option<ServiceError> = None;
        for attempt in 0..max_attempts {
            let primary = self.select_replica();
            self.events.push(FabricEvent::Attempt {
                attempt,
                replica: primary,
            });
            let outcome = match self.hedge_target(primary) {
                Some(secondary) => self.attempt_hedged(primary, secondary, req),
                None => match self.attempt_single(primary, req) {
                    Ok(resp) => {
                        self.on_success(primary);
                        Ok(resp)
                    }
                    Err(e) => {
                        self.on_failure(primary, FailureClass::of(&e));
                        Err(e)
                    }
                },
            };
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) if Self::is_hard(&e) => return Err(e),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < max_attempts {
                let ms = self.backoff_ms(attempt);
                self.events.push(FabricEvent::Backoff { attempt, ms });
                if ms > 0 {
                    thread::sleep(Duration::from_millis(ms));
                }
            }
        }
        Err(ServiceError::FabricExhausted {
            attempts: max_attempts,
            last: Box::new(last.unwrap_or(ServiceError::ConnectionClosed)),
        })
    }

    /// Plan a whole batch through the fabric: the same breaker-aware
    /// replica selection, per-attempt timeouts, and deterministic
    /// backoff as [`ResilientClient::plan`], without hedging (a batch is
    /// retried as a unit; entries still succeed or fail independently
    /// inside a delivered response). Safe to retry for the same reason
    /// single plans are — a batch is a pure function of its entries.
    ///
    /// # Errors
    ///
    /// [`ServiceError::FabricExhausted`] when every attempt failed; a
    /// non-retryable rejection immediately as [`ServiceError::Rejected`].
    pub fn plan_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, ServiceError> {
        let max_attempts = self.cfg.max_attempts.max(1);
        let mut last: Option<ServiceError> = None;
        for attempt in 0..max_attempts {
            let primary = self.select_replica();
            self.events.push(FabricEvent::Attempt {
                attempt,
                replica: primary,
            });
            match self.attempt_single_batch(primary, req) {
                Ok(resp) => {
                    self.on_success(primary);
                    return Ok(resp);
                }
                Err(e) => {
                    self.on_failure(primary, FailureClass::of(&e));
                    if Self::is_hard(&e) {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
            if attempt + 1 < max_attempts {
                let ms = self.backoff_ms(attempt);
                self.events.push(FabricEvent::Backoff { attempt, ms });
                if ms > 0 {
                    thread::sleep(Duration::from_millis(ms));
                }
            }
        }
        Err(ServiceError::FabricExhausted {
            attempts: max_attempts,
            last: Box::new(last.unwrap_or(ServiceError::ConnectionClosed)),
        })
    }

    fn attempt_single_batch(
        &mut self,
        idx: usize,
        req: &BatchRequest,
    ) -> Result<BatchResponse, ServiceError> {
        let mut client = self.take_conn(idx)?;
        client.set_timeout(Some(self.cfg.attempt_timeout))?;
        match client.plan_batch(req) {
            Ok(resp) => {
                self.put_conn(idx, client, true);
                Ok(resp)
            }
            Err(e) => {
                let healthy = matches!(e, ServiceError::Rejected { .. });
                self.put_conn(idx, client, healthy);
                Err(e)
            }
        }
    }

    /// Whether retrying cannot possibly help: the server understood the
    /// request and rejected its *content*, or replicas disagreed.
    fn is_hard(e: &ServiceError) -> bool {
        match e {
            ServiceError::Rejected { code, .. } => {
                matches!(code, ErrorCode::Malformed | ErrorCode::Unsupported)
            }
            ServiceError::ReplicaDivergence { .. } => true,
            _ => false,
        }
    }

    /// Age open breakers by one round, then pick the first admissible
    /// replica in preference order. When every breaker is open, the one
    /// closest to its cooldown's end is forced half-open — the fabric
    /// degrades to probing rather than refusing to try at all.
    fn select_replica(&mut self) -> usize {
        for i in 0..self.replicas.len() {
            if let Breaker::Open { remaining } = self.replicas[i].breaker {
                let remaining = remaining.saturating_sub(1);
                if remaining == 0 {
                    self.replicas[i].breaker = Breaker::HalfOpen;
                    self.events
                        .push(FabricEvent::BreakerHalfOpen { replica: i });
                } else {
                    self.replicas[i].breaker = Breaker::Open { remaining };
                }
            }
        }
        if let Some(i) = self
            .replicas
            .iter()
            .position(|r| !matches!(r.breaker, Breaker::Open { .. }))
        {
            return i;
        }
        let i = (0..self.replicas.len())
            .min_by_key(|&i| match self.replicas[i].breaker {
                Breaker::Open { remaining } => remaining,
                _ => 0,
            })
            .unwrap_or(0);
        self.replicas[i].breaker = Breaker::HalfOpen;
        self.events
            .push(FabricEvent::BreakerHalfOpen { replica: i });
        i
    }

    /// The hedge target for `primary`: the first other replica whose
    /// breaker admits traffic, when hedging is enabled.
    fn hedge_target(&self, primary: usize) -> Option<usize> {
        self.cfg.hedge_after?;
        (0..self.replicas.len())
            .find(|&i| i != primary && !matches!(self.replicas[i].breaker, Breaker::Open { .. }))
    }

    /// Take (or lazily dial) a replica's connection.
    fn take_conn(&mut self, idx: usize) -> Result<Client, ServiceError> {
        match self.replicas[idx].conn.take() {
            Some(c) => Ok(c),
            None => {
                let mut c = Client::connect(&self.replicas[idx].endpoint)?;
                c.set_timeout(Some(self.cfg.attempt_timeout))?;
                c.set_tenant(self.tenant);
                Ok(c)
            }
        }
    }

    /// Return a connection after an exchange, unless the failure means
    /// the transport is suspect (anything but a typed server rejection).
    fn put_conn(&mut self, idx: usize, conn: Client, healthy: bool) {
        if healthy {
            self.replicas[idx].conn = Some(conn);
        }
    }

    fn attempt_single(
        &mut self,
        idx: usize,
        req: &PlanRequest,
    ) -> Result<PlanResponse, ServiceError> {
        let mut client = self.take_conn(idx)?;
        client.set_timeout(Some(self.cfg.attempt_timeout))?;
        match client.plan(req) {
            Ok(resp) => {
                self.put_conn(idx, client, true);
                Ok(resp)
            }
            Err(e) => {
                // A typed rejection travelled over a working transport;
                // keep the connection. Anything else: drop it.
                let healthy = matches!(e, ServiceError::Rejected { .. });
                self.put_conn(idx, client, healthy);
                Err(e)
            }
        }
    }

    /// One hedged attempt: run the primary in a helper thread, fire the
    /// secondary if the primary is silent past `hedge_after`, take the
    /// first success (verify mode: await both and compare transcript
    /// hashes). All breaker/event bookkeeping for both replicas happens
    /// here, on the calling thread, in a deterministic order.
    fn attempt_hedged(
        &mut self,
        primary: usize,
        secondary: usize,
        req: &PlanRequest,
    ) -> Result<PlanResponse, ServiceError> {
        let hedge_after = self.cfg.hedge_after.unwrap_or(self.cfg.attempt_timeout);
        let timeout = self.cfg.attempt_timeout;

        let mut pclient = match self.take_conn(primary) {
            Ok(c) => c,
            Err(e) => {
                // The primary cannot even be dialed: fail the attempt
                // plainly; the retry loop will rotate to the secondary.
                self.on_failure(primary, FailureClass::Connect);
                return Err(e);
            }
        };
        let _ = pclient.set_timeout(Some(timeout));

        type Arrival = (usize, Result<PlanResponse, ServiceError>, Option<Client>);
        let (tx, rx) = mpsc::channel::<Arrival>();
        let ptx = tx.clone();
        let preq = req.clone();
        let pidx = primary;
        thread::spawn(move || {
            let r = pclient.plan(&preq);
            let _ = ptx.send((pidx, r, Some(pclient)));
        });

        // Happy path: the primary answers before the hedge delay.
        match rx.recv_timeout(hedge_after) {
            Ok(arrival) => return self.settle_unhedged(arrival),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.on_failure(primary, FailureClass::Transport);
                return Err(ServiceError::ConnectionClosed);
            }
        }

        self.events
            .push(FabricEvent::HedgeFired { primary, secondary });
        let stx = tx;
        let sreq = req.clone();
        let sidx = secondary;
        let sendpoint = self.replicas[secondary].endpoint.clone();
        let stenant = self.tenant;
        thread::spawn(move || {
            let r = (|| {
                let mut c = Client::connect(&sendpoint)?;
                c.set_timeout(Some(timeout))?;
                c.set_tenant(stenant);
                let resp = c.plan(&sreq);
                Ok::<Arrival, ServiceError>((sidx, resp, Some(c)))
            })();
            let _ = stx.send(match r {
                Ok(arrival) => arrival,
                Err(dial) => (sidx, Err(dial), None),
            });
        });

        // Collect until the attempt window closes. In verify mode both
        // results are awaited (byzantine detection); otherwise the first
        // success wins and the loser is abandoned.
        let deadline = Instant::now() + timeout + hedge_after;
        let mut winner: Option<(usize, PlanResponse)> = None;
        let mut failures: Vec<(usize, ServiceError)> = Vec::new();
        let mut arrived = 0u32;
        while arrived < 2 {
            let budget = deadline.saturating_duration_since(Instant::now());
            if budget.is_zero() {
                break;
            }
            match rx.recv_timeout(budget) {
                Ok((idx, result, conn)) => {
                    arrived += 1;
                    match result {
                        Ok(resp) => {
                            if let Some(c) = conn {
                                self.put_conn(idx, c, true);
                            }
                            match &winner {
                                None => {
                                    winner = Some((idx, resp));
                                    if !self.cfg.hedge_verify {
                                        break;
                                    }
                                }
                                Some((_, first)) => {
                                    if (first.uov.clone(), first.cost, first.certificate_hash)
                                        != (resp.uov.clone(), resp.cost, resp.certificate_hash)
                                    {
                                        // Hard error: two certified
                                        // answers disagree.
                                        let (a, b) =
                                            (first.certificate_hash, resp.certificate_hash);
                                        self.on_failure(idx, FailureClass::Rejected);
                                        return Err(ServiceError::ReplicaDivergence { a, b });
                                    }
                                }
                            }
                        }
                        Err(e) => failures.push((idx, e)),
                    }
                }
                Err(_) => break,
            }
        }

        match winner {
            Some((idx, resp)) => {
                self.events.push(FabricEvent::HedgeWinner { replica: idx });
                self.on_success(idx);
                // The loser either failed outright or never answered
                // within the window; both count against its breaker.
                let loser = if idx == primary { secondary } else { primary };
                if let Some((_, e)) = failures.iter().find(|(i, _)| *i == loser) {
                    let class = FailureClass::of(e);
                    self.on_failure(loser, class);
                } else if arrived < 2 {
                    self.on_failure(loser, FailureClass::Timeout);
                }
                Ok(resp)
            }
            None => {
                // No success: charge every replica that failed, and any
                // that never answered, then surface the last failure.
                let mut last: Option<ServiceError> = None;
                for idx in [primary, secondary] {
                    match failures.iter().position(|(i, _)| *i == idx) {
                        Some(at) => {
                            let (_, e) = failures.swap_remove(at);
                            self.on_failure(idx, FailureClass::of(&e));
                            last = Some(e);
                        }
                        None => self.on_failure(idx, FailureClass::Timeout),
                    }
                }
                Err(last.unwrap_or_else(|| {
                    ServiceError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "hedged attempt timed out on both replicas",
                    ))
                }))
            }
        }
    }

    /// The primary answered before the hedge fired: ordinary single-path
    /// bookkeeping.
    fn settle_unhedged(
        &mut self,
        (idx, result, conn): (usize, Result<PlanResponse, ServiceError>, Option<Client>),
    ) -> Result<PlanResponse, ServiceError> {
        match result {
            Ok(resp) => {
                if let Some(c) = conn {
                    self.put_conn(idx, c, true);
                }
                self.on_success(idx);
                Ok(resp)
            }
            Err(e) => {
                if let Some(c) = conn {
                    let healthy = matches!(e, ServiceError::Rejected { .. });
                    self.put_conn(idx, c, healthy);
                }
                self.on_failure(idx, FailureClass::of(&e));
                Err(e)
            }
        }
    }

    fn on_success(&mut self, idx: usize) {
        self.events.push(FabricEvent::Success { replica: idx });
        let recovered = !matches!(self.replicas[idx].breaker, Breaker::Closed { .. });
        self.replicas[idx].breaker = Breaker::Closed { failures: 0 };
        if recovered {
            self.events
                .push(FabricEvent::BreakerClosed { replica: idx });
        }
    }

    fn on_failure(&mut self, idx: usize, class: FailureClass) {
        self.events.push(FabricEvent::Failure {
            replica: idx,
            class,
        });
        let cooldown = self.cfg.cooldown.max(1);
        let threshold = self.cfg.failure_threshold.max(1);
        match self.replicas[idx].breaker {
            Breaker::HalfOpen => {
                // The probe failed: straight back to open.
                self.replicas[idx].breaker = Breaker::Open {
                    remaining: cooldown,
                };
                self.events
                    .push(FabricEvent::BreakerOpened { replica: idx });
            }
            Breaker::Closed { failures } => {
                let failures = failures + 1;
                if failures >= threshold {
                    self.replicas[idx].breaker = Breaker::Open {
                        remaining: cooldown,
                    };
                    self.events
                        .push(FabricEvent::BreakerOpened { replica: idx });
                } else {
                    self.replicas[idx].breaker = Breaker::Closed { failures };
                }
            }
            Breaker::Open { .. } => {}
        }
        // The transport is suspect on every failure class except a typed
        // rejection, which proves the connection works.
        if class != FailureClass::Rejected {
            self.replicas[idx].conn = None;
        }
    }

    fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base.as_millis() as u64;
        let cap = (self.cfg.backoff_max.as_millis() as u64).max(base);
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        // Deterministic jitter in [exp/2, exp]: enough spread to avoid
        // thundering herds, reproducible under the seed.
        let half = exp / 2;
        half + self.rng.next() % (exp - half + 1)
    }
}

impl FailureClass {
    /// Classify a failure coarsely (see the type docs).
    fn of(e: &ServiceError) -> Self {
        match e {
            ServiceError::Io(io) => match io.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    FailureClass::Timeout
                }
                std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::NotFound => {
                    FailureClass::Connect
                }
                _ => FailureClass::Transport,
            },
            ServiceError::Rejected { .. } => FailureClass::Rejected,
            _ => FailureClass::Transport,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{kind, read_frame, write_frame, ObjectiveSpec};
    use crate::server::{serve, ServerConfig};
    use std::net::TcpListener;
    use uov_isg::{ivec, Stencil};

    fn fig1_request() -> PlanRequest {
        PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        }
    }

    fn quick_cfg() -> ResilientConfig {
        ResilientConfig {
            attempt_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            ..ResilientConfig::default()
        }
    }

    /// A dead endpoint: bound, never accepted-from, then dropped so
    /// connections are refused.
    fn dead_endpoint() -> String {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let ep = l.local_addr().unwrap().to_string();
        drop(l);
        ep
    }

    #[test]
    fn fails_over_to_the_second_replica() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let endpoints = vec![dead_endpoint(), server.endpoint().to_string()];
        let mut fabric = ResilientClient::new(&endpoints, quick_cfg()).unwrap();
        let resp = fabric.plan(&fig1_request()).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        let events = fabric.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, FabricEvent::Failure { replica: 0, .. })));
        assert!(events.contains(&FabricEvent::Success { replica: 1 }));
        server.shutdown();
        server.join();
    }

    #[test]
    fn breaker_opens_skips_and_probes_half_open() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let endpoints = vec![dead_endpoint(), server.endpoint().to_string()];
        let cfg = ResilientConfig {
            failure_threshold: 2,
            cooldown: 3,
            ..quick_cfg()
        };
        let mut fabric = ResilientClient::new(&endpoints, cfg).unwrap();
        for _ in 0..6 {
            fabric.plan(&fig1_request()).unwrap();
        }
        let events = fabric.take_events();
        assert!(
            events.contains(&FabricEvent::BreakerOpened { replica: 0 }),
            "dead replica's breaker never opened: {events:?}"
        );
        // While replica 0 is open, attempts go straight to replica 1.
        let opened = events
            .iter()
            .position(|e| *e == FabricEvent::BreakerOpened { replica: 0 })
            .unwrap();
        let next_attempt = events[opened..]
            .iter()
            .find_map(|e| match e {
                FabricEvent::Attempt { replica, .. } => Some(*replica),
                _ => None,
            })
            .unwrap();
        assert_eq!(next_attempt, 1, "open breaker was not skipped");
        // Eventually the cooldown elapses and the dead replica is probed.
        assert!(
            events.contains(&FabricEvent::BreakerHalfOpen { replica: 0 }),
            "breaker never went half-open: {events:?}"
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn schedule_replays_identically_for_a_seed() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let run = |seed: u64| {
            let endpoints = vec![dead_endpoint(), server.endpoint().to_string()];
            // The dead endpoint differs per run, but its failure pattern
            // (connection refused every time) does not.
            let cfg = ResilientConfig {
                seed,
                failure_threshold: 2,
                cooldown: 2,
                ..quick_cfg()
            };
            let mut fabric = ResilientClient::new(&endpoints, cfg).unwrap();
            for _ in 0..5 {
                fabric.plan(&fig1_request()).unwrap();
            }
            fabric.take_events()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        server.shutdown();
        server.join();
    }

    /// A fake replica that speaks the protocol but answers every plan
    /// with a fixed bogus response after a delay.
    fn lying_server(delay: Duration) -> String {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let ep = l.local_addr().unwrap().to_string();
        thread::spawn(move || {
            while let Ok((mut s, _)) = l.accept() {
                let resp = PlanResponse {
                    uov: ivec![9, 9],
                    cost: 999,
                    certificate_hash: 0xBAD0_BAD0,
                    degradation: crate::proto::DegradationCode::None,
                    cache: crate::proto::CacheOutcome::Miss,
                };
                thread::spawn(move || {
                    while let Ok(Some((kind::REQ_PLAN, _))) = read_frame(&mut s) {
                        thread::sleep(delay);
                        if write_frame(&mut s, kind::RESP_PLAN, &resp.encode()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        ep
    }

    #[test]
    fn verified_hedging_turns_divergence_into_a_hard_error() {
        let honest = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        // Primary lies slowly; the hedge fires and the honest secondary
        // answers; verification then catches the divergence.
        let endpoints = vec![
            lying_server(Duration::from_millis(250)),
            honest.endpoint().to_string(),
        ];
        let cfg = ResilientConfig {
            hedge_after: Some(Duration::from_millis(50)),
            hedge_verify: true,
            attempt_timeout: Duration::from_secs(2),
            max_attempts: 1,
            ..quick_cfg()
        };
        let mut fabric = ResilientClient::new(&endpoints, cfg).unwrap();
        match fabric.plan(&fig1_request()) {
            Err(ServiceError::ReplicaDivergence { .. }) => {}
            other => panic!("expected ReplicaDivergence, got {other:?}"),
        }
        assert!(fabric
            .events()
            .iter()
            .any(|e| matches!(e, FabricEvent::HedgeFired { .. })));
        honest.shutdown();
        honest.join();
    }

    #[test]
    fn hedging_takes_the_fast_replica_when_the_primary_stalls() {
        let honest = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        // The primary answers far too slowly; the hedge must win.
        let endpoints = vec![
            lying_server(Duration::from_secs(30)),
            honest.endpoint().to_string(),
        ];
        let cfg = ResilientConfig {
            hedge_after: Some(Duration::from_millis(50)),
            attempt_timeout: Duration::from_millis(800),
            max_attempts: 2,
            ..quick_cfg()
        };
        let mut fabric = ResilientClient::new(&endpoints, cfg).unwrap();
        let resp = fabric.plan(&fig1_request()).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        assert!(fabric
            .events()
            .contains(&FabricEvent::HedgeWinner { replica: 1 }));
        honest.shutdown();
        honest.join();
    }

    #[test]
    fn exhaustion_is_a_typed_error_with_the_last_cause() {
        let endpoints = vec![dead_endpoint()];
        let cfg = ResilientConfig {
            max_attempts: 3,
            ..quick_cfg()
        };
        let mut fabric = ResilientClient::new(&endpoints, cfg).unwrap();
        match fabric.plan(&fig1_request()) {
            Err(ServiceError::FabricExhausted { attempts: 3, .. }) => {}
            other => panic!("expected FabricExhausted, got {other:?}"),
        }
    }

    #[test]
    fn empty_replica_list_is_rejected() {
        assert!(ResilientClient::new(&[], ResilientConfig::default()).is_err());
    }
}
