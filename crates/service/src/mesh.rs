//! A fault-tolerant planning mesh: consistent-hash shard routing plus
//! distributed branch-and-bound over `UOVCKPT1` work units.
//!
//! Two capabilities, one client:
//!
//! * **Routing** ([`MeshClient::plan`]) — every problem is canonicalized
//!   ([`crate::canon`]) and its canonical fingerprint is looked up on a
//!   consistent-hash [`Ring`] with virtual nodes, so each problem has a
//!   stable *home shard* (and axis-relabeled duplicates of the same
//!   problem land on the same replica's plan cache). When the home
//!   shard's circuit breaker is open the request fails over to the next
//!   live ring successor — deterministically, so two coordinators agree
//!   on the failover order.
//! * **Distributed search** ([`MeshClient::plan_distributed`]) — a large
//!   search is split across replicas by shipping PATHSET subtrees as
//!   [`crate::proto::WorkUnitRequest`] frames whose payload is the PR 3
//!   `UOVCKPT1` snapshot format, verbatim. The coordinator holds a lease
//!   (the per-attempt socket timeout) on every outstanding unit and
//!   re-dispatches a unit to the next ring successor when its replica
//!   dies, times out, or returns a damaged frame.
//!
//! # Why a multi-round fixpoint, not a one-shot scatter
//!
//! The branch-and-bound PATHSET table is *not* partition-independent: an
//! offset `w` can be reachable along paths explored in different work
//! units, and only the **union** of those PATHSETs makes `w` a UOV
//! candidate (mask = full) or generates a child's full mask. A one-shot
//! scatter/gather would silently miss such candidates. The coordinator
//! therefore merges unit snapshots (PATHSET masks by union, incumbents by
//! the engine's canonical total order), then *re-frontiers* every offset
//! whose merged mask has not provably been expanded by some single engine
//! — and loops until no frontier remains. Masks are monotone and bounded
//! and the explored region is capped by the engine's `phi_cap`, so the
//! fixpoint terminates; because the engine's pruning is strict and every
//! bound it prunes against is the cost of a genuine UOV, the fixpoint
//! answer is byte-identical to a direct in-process search — the
//! differential chaos tests assert exactly that, mid-kill included.
//!
//! # Bound gossip
//!
//! Replicas piggyback their best proven incumbent bound on the stats
//! frame ([`crate::proto::BoundGossip`]). The coordinator folds a
//! matching bound into each unit's `bound_hint`. Staleness is sound: a
//! gossiped bound is always the cost of a *genuine* UOV, so it can only
//! over-estimate the optimum, and the engine prunes strictly (`>`), so
//! ties survive to the lexicographic tie-break. A lost or stale gossip
//! frame costs visits, never correctness.
//!
//! # Neighbor replication and lease fencing
//!
//! Because a UOV plan is schedule-independent — the certified answer is
//! a pure function of the canonical problem, byte-identical no matter
//! which shard computes it — a plan-cache entry is safe to copy
//! anywhere. The mesh exploits that: after a certified, non-degraded
//! answer, the coordinator pushes the entry to the
//! [`MeshConfig::replication_factor`] ring successors of the home shard
//! (`REQ_REPLICATE`), each of which **re-certifies before storing**, so
//! the deterministic failover order lands on a warm, certified hit
//! instead of a cold solve. An anti-entropy sweep on the stats channel
//! ([`MeshClient::anti_entropy_sweep`]) watches each shard's monotone
//! connection counter; a decrease means the process restarted with an
//! empty cache, and every entry it should hold is re-pushed, flagged as
//! a repair.
//!
//! Work-unit leases are *fenced*: every dispatch attempt carries a fresh
//! monotonic epoch inside the `UOVCKPT1` envelope. The server fences
//! each problem at the highest epoch seen and rejects older ones
//! (`StaleEpoch`), so a zombie replica finishing a superseded unit can
//! never double-report into a merge; the coordinator keeps timed-out
//! sockets and drains any late completion, discarding it by epoch.
//! Duplicate or stale completions are *also* harmless algebraically —
//! the merge is a union of monotone masks plus a canonical minimum, so
//! re-absorbing a snapshot is a no-op (the property test pins that).

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use uov_core::certify::certify;
use uov_core::checkpoint::{decode_snapshot, encode_snapshot, Snapshot};
use uov_core::search::{search_unit, try_cost_of, SearchConfig, SearchStats};
use uov_core::{fingerprint, Budget, Fnv, SearchResult};
use uov_isg::{IVec, Stencil};

use crate::canon::canonicalize;
use crate::client::Client;
use crate::error::{ErrorCode, ServiceError};
use crate::proto::{
    kind, BatchRequest, BatchResponse, CacheOutcome, DegradationCode, ErrorResponse, ObjectiveSpec,
    PlanRequest, PlanResponse, ReplicateRequest, WorkUnitRequest, WorkUnitResponse,
    MAX_BATCH_ENTRIES, MAX_PAYLOAD,
};
use crate::resilient::{Breaker, XorShift64};

// ------------------------------------------------------------------ ring

/// A consistent-hash ring over shard endpoints, with virtual nodes.
///
/// Each endpoint contributes `vnodes` points hashed from the endpoint
/// string and the vnode index (FNV-1a, the workspace-standard hash), so
/// the ring depends only on the endpoint *names* — every coordinator
/// builds the identical ring, and adding or removing one endpoint moves
/// only the keys on the arcs that endpoint's points claimed or released
/// (the property test in this module pins that arc-stability down).
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted `(point, shard index)` pairs.
    points: Vec<(u64, usize)>,
    /// Number of distinct shards.
    shards: usize,
}

impl Ring {
    /// Build the ring for `endpoints` with `vnodes` points per endpoint.
    pub fn new(endpoints: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(endpoints.len() * vnodes);
        for (i, e) in endpoints.iter().enumerate() {
            for v in 0..vnodes {
                let mut h = Fnv::new();
                h.write(e.as_bytes());
                h.write_u64(v as u64);
                points.push((h.finish(), i));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            shards: endpoints.len(),
        }
    }

    /// The home shard for `key`: the owner of the first ring point at or
    /// after `key`, wrapping at the top of the hash space.
    pub fn route(&self, key: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[i % self.points.len().max(1)].1
    }

    /// Every shard, in ring order starting from `key`'s home — the
    /// deterministic failover order. Each shard appears exactly once.
    pub fn successors(&self, key: u64) -> Vec<usize> {
        let n = self.points.len().max(1);
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut seen = vec![false; self.shards];
        let mut order = Vec::with_capacity(self.shards);
        for off in 0..n {
            let shard = self.points[(start + off) % n].1;
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
            }
        }
        order
    }
}

// ---------------------------------------------------------------- config

/// Tunables for [`MeshClient`].
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Virtual nodes per endpoint on the [`Ring`].
    pub vnodes: usize,
    /// The lease on one work-unit (or routed-plan) attempt: the socket
    /// read timeout after which the coordinator declares the replica
    /// dead for this unit and re-dispatches.
    pub attempt_timeout: Duration,
    /// Attempts per routed plan before [`ServiceError::FabricExhausted`].
    pub max_route_attempts: u32,
    /// Attempts per work unit (across ring successors, wrapping) before
    /// the distributed search as a whole fails.
    pub max_unit_attempts: u32,
    /// Nodes the coordinator explores locally before splitting the
    /// frontier into work units; small problems finish here and are
    /// never shipped at all.
    pub local_prefix_nodes: u64,
    /// Node budget per shipped work unit (`0` = unlimited): small values
    /// force multiple merge rounds, which the differential tests use to
    /// exercise the fixpoint.
    pub unit_node_budget: u64,
    /// Work units per round (`0` = one per shard).
    pub units_per_round: usize,
    /// Consecutive failures that open a shard's circuit breaker.
    pub failure_threshold: u32,
    /// Routing passes an open breaker stays open before half-opening.
    pub cooldown: u32,
    /// Base delay between attempts on the same unit or route.
    pub backoff_base: Duration,
    /// Cap on the exponential backoff.
    pub backoff_max: Duration,
    /// Seed for the jittered routed-plan backoff.
    pub seed: u64,
    /// Whether to poll shards' stats frames for gossiped incumbent
    /// bounds between rounds.
    pub gossip: bool,
    /// How many ring successors of the home shard receive a copy of
    /// every certified, non-degraded answer (`0` disables replication).
    /// Each receiver re-certifies before storing, so replication can
    /// warm a failover target but never poison it.
    pub replication_factor: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            vnodes: 32,
            attempt_timeout: Duration::from_secs(2),
            max_route_attempts: 8,
            max_unit_attempts: 12,
            local_prefix_nodes: 64,
            unit_node_budget: 0,
            units_per_round: 0,
            failure_threshold: 3,
            cooldown: 4,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
            seed: 0x4D_E5_11,
            gossip: true,
            replication_factor: 1,
        }
    }
}

/// Monotone counters describing a [`MeshClient`]'s traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Requests routed by consistent hash.
    pub routed: u64,
    /// Routed requests served by a shard other than their home.
    pub failovers: u64,
    /// Distributed searches coordinated.
    pub distributed: u64,
    /// Merge rounds run across all distributed searches.
    pub rounds: u64,
    /// Work units dispatched (first attempts).
    pub units_dispatched: u64,
    /// Work-unit re-dispatches after a dead, slow, or damaged replica.
    pub redispatches: u64,
    /// Gossiped bounds folded into unit hints.
    pub gossip_hints: u64,
    /// Distributed searches that fell back to a routed single-shard
    /// plan because a unit payload exceeded the frame limit.
    pub oversize_fallbacks: u64,
    /// Certified answers offered to neighbor replicas (the receiver may
    /// still refuse to store one that fails re-certification).
    pub replicas_pushed: u64,
    /// Late work-unit completions drained from zombie sockets and
    /// discarded because their fencing epoch was superseded.
    pub stale_epoch_rejections: u64,
    /// Replicated entries re-pushed to restarted shards by the
    /// anti-entropy sweep.
    pub anti_entropy_repairs: u64,
    /// Batch requests routed (each may fan out to several shards).
    pub batches_routed: u64,
    /// Per-shard sub-batches sent beyond the first for a single batch:
    /// the extra frames paid because entries hashed to different homes.
    pub batch_splits: u64,
    /// Batch entries that fell back to individual routed plans after a
    /// shard's sub-batch attempt failed.
    pub batch_fallbacks: u64,
}

/// One entry in the mesh's replayable decision log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshEvent {
    /// A request was routed to its home shard.
    Routed {
        /// The canonical routing key.
        key: u64,
        /// The home shard.
        shard: usize,
    },
    /// A routed request was served away from home.
    Failover {
        /// The home shard that was skipped or failed.
        home: usize,
        /// The shard that served instead.
        shard: usize,
    },
    /// A work unit went out.
    UnitDispatched {
        /// Merge round.
        round: usize,
        /// Unit index within the round.
        unit: usize,
        /// Target shard.
        shard: usize,
    },
    /// A work unit was re-dispatched after a failed attempt.
    UnitRedispatched {
        /// Merge round.
        round: usize,
        /// Unit index within the round.
        unit: usize,
        /// The shard that failed the lease.
        from: usize,
        /// The next ring successor tried.
        to: usize,
    },
    /// A work unit's snapshot came back and validated.
    UnitCompleted {
        /// Merge round.
        round: usize,
        /// Unit index within the round.
        unit: usize,
        /// The shard that served it.
        shard: usize,
    },
    /// A merge round finished.
    RoundMerged {
        /// Merge round.
        round: usize,
        /// Offsets re-frontiered for the next round.
        frontier: usize,
    },
    /// A shard gossiped a usable incumbent bound.
    GossipBound {
        /// The gossiping shard.
        shard: usize,
        /// The bound (a genuine UOV's cost).
        cost: u64,
    },
    /// A certified answer was offered to a neighbor replica.
    ReplicaPushed {
        /// The receiving shard.
        shard: usize,
        /// Whether the receiver re-certified and stored it.
        stored: bool,
    },
    /// A late work-unit completion under a superseded fencing epoch was
    /// drained from a zombie socket and discarded before any merge.
    StaleCompletionDiscarded {
        /// The shard whose completion arrived too late.
        shard: usize,
        /// The superseded epoch the completion carried.
        epoch: u64,
    },
    /// The anti-entropy sweep re-pushed a replicated entry to a shard
    /// that restarted with an empty cache.
    AntiEntropyRepair {
        /// The repaired shard.
        shard: usize,
    },
}

// ---------------------------------------------------------------- client

/// A client over a shard mesh: consistent-hash routing with breaker-aware
/// failover, plus the distributed-search coordinator.
pub struct MeshClient {
    endpoints: Vec<String>,
    ring: Ring,
    conns: Vec<Option<Client>>,
    breakers: Vec<Breaker>,
    cfg: MeshConfig,
    rng: XorShift64,
    events: Vec<MeshEvent>,
    stats: MeshStats,
    /// Monotonic source of work-unit fencing epochs. Every dispatch
    /// attempt — first try and every re-dispatch — draws a fresh epoch,
    /// so the server-side fence (highest epoch wins per problem) makes
    /// superseded attempts rejectable on arrival.
    epoch: AtomicU64,
    /// Sockets kept after timed-out work-unit attempts, still owed a
    /// (superseded) completion. Drained at round boundaries and at the
    /// fixpoint so late frames are observed and discarded, never merged.
    zombies: Vec<Zombie>,
    /// Recent replication pushes, so the anti-entropy sweep can re-offer
    /// them to a target that restarted with an empty cache.
    replication_log: Vec<ReplicationRecord>,
    /// Last-seen `connections` counter per shard; a decrease is the
    /// restart signature anti-entropy keys on.
    last_conns: Vec<Option<u64>>,
}

/// Pushes the anti-entropy sweep remembers. Bounded by
/// [`REPLICATION_LOG_CAP`]; older entries age out (their home shard can
/// always recompute and re-replicate on the next miss).
#[derive(Clone)]
struct ReplicationRecord {
    stencil: Stencil,
    objective: ObjectiveSpec,
    uov: IVec,
    cost: u128,
    targets: Vec<usize>,
}

/// Cap on [`MeshClient::replication_log`].
const REPLICATION_LOG_CAP: usize = 64;

/// A socket abandoned by a timed-out work-unit attempt, kept so the late
/// completion (fenced off server-side by a newer epoch) can be drained
/// and discarded instead of leaking.
struct Zombie {
    client: Client,
    shard: usize,
    epoch: u64,
}

/// What one work-unit dispatch thread reports back: the attempt trail
/// (shard, success?) in order, the validated snapshot on success, and
/// any zombie sockets left behind by timed-out attempts.
struct UnitOutcome {
    attempts: Vec<(usize, bool)>,
    snapshot: Option<Snapshot>,
    last_error: Option<ServiceError>,
    zombies: Vec<Zombie>,
}

impl MeshClient {
    /// A mesh over `endpoints`. The ring is a pure function of the
    /// endpoint names, so every coordinator over the same list agrees on
    /// homes and failover orders.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Malformed`] if `endpoints` is empty.
    pub fn new(endpoints: &[String], cfg: MeshConfig) -> Result<Self, ServiceError> {
        if endpoints.is_empty() {
            return Err(ServiceError::Malformed("no mesh endpoints".into()));
        }
        let ring = Ring::new(endpoints, cfg.vnodes);
        let seed = cfg.seed;
        Ok(MeshClient {
            endpoints: endpoints.to_vec(),
            ring,
            conns: (0..endpoints.len()).map(|_| None).collect(),
            breakers: vec![Breaker::Closed { failures: 0 }; endpoints.len()],
            cfg,
            rng: XorShift64::new(seed),
            events: Vec::new(),
            stats: MeshStats::default(),
            epoch: AtomicU64::new(0),
            zombies: Vec::new(),
            replication_log: Vec::new(),
            last_conns: vec![None; endpoints.len()],
        })
    }

    /// The decision log accumulated so far.
    pub fn events(&self) -> &[MeshEvent] {
        &self.events
    }

    /// Drain and return the decision log.
    pub fn take_events(&mut self) -> Vec<MeshEvent> {
        std::mem::take(&mut self.events)
    }

    /// Current traffic counters.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// The ring this mesh routes on.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The canonical routing key for a request: the fingerprint of the
    /// *canonicalized* problem, so axis-relabeled duplicates share a home
    /// shard (and therefore a plan-cache slot).
    pub fn routing_key(req: &PlanRequest) -> u64 {
        let canon = canonicalize(&req.stencil, &req.objective);
        fingerprint(&canon.stencil, &canon.objective.as_objective())
    }

    /// Plan through the mesh: home shard first, then live ring
    /// successors, with per-shard circuit breakers and jittered backoff.
    ///
    /// # Errors
    ///
    /// [`ServiceError::FabricExhausted`] when every attempt failed; a
    /// non-retryable rejection (`Malformed`, `Unsupported`) immediately.
    pub fn plan(&mut self, req: &PlanRequest) -> Result<PlanResponse, ServiceError> {
        let key = Self::routing_key(req);
        let order = self.ring.successors(key);
        let home = order[0];
        self.stats.routed += 1;
        self.events.push(MeshEvent::Routed { key, shard: home });

        let max_attempts = self.cfg.max_route_attempts.max(1);
        let mut last: Option<ServiceError> = None;
        for attempt in 0..max_attempts {
            let shard = self.select_shard(&order);
            match self.attempt_plan(shard, req) {
                Ok(resp) => {
                    self.on_success(shard);
                    if shard != home {
                        self.stats.failovers += 1;
                        self.events.push(MeshEvent::Failover { home, shard });
                    }
                    // Replicate fresh, full-fidelity answers to the ring
                    // successors. Hits are skipped (their original miss
                    // already replicated) and degraded answers are never
                    // offered — a replica must only ever hold entries it
                    // could re-certify.
                    if resp.cache != CacheOutcome::Hit && resp.degradation == DegradationCode::None
                    {
                        self.push_replicas(
                            &req.stencil,
                            &req.objective,
                            &resp.uov,
                            resp.cost,
                            &order,
                            Some(shard),
                        );
                    }
                    return Ok(resp);
                }
                Err(e) if Self::is_hard(&e) => return Err(e),
                Err(e) => {
                    self.on_failure(shard, &e);
                    last = Some(e);
                }
            }
            if attempt + 1 < max_attempts {
                let ms = self.backoff_ms(attempt);
                if ms > 0 {
                    thread::sleep(Duration::from_millis(ms));
                }
            }
        }
        Err(ServiceError::FabricExhausted {
            attempts: max_attempts,
            last: Box::new(last.unwrap_or(ServiceError::ConnectionClosed)),
        })
    }

    /// Plan a whole batch through the mesh.
    ///
    /// Entries are grouped by home shard — the consistent-hash route of
    /// each entry's canonical fingerprint — so a batch whose entries
    /// hash to different homes is split client-side into one sub-batch
    /// frame per shard, then the per-entry outcomes are merged back
    /// into the caller's original order. When a shard's sub-batch
    /// attempt fails, its entries fall back to individual
    /// [`MeshClient::plan`] calls (failover, breakers, and backoff then
    /// apply per entry), so one sick shard cannot sink the whole batch.
    ///
    /// Fresh, full-fidelity answers are replicated to ring successors
    /// exactly as [`MeshClient::plan`] replicates them; cache hits and
    /// degraded answers are never offered.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Malformed`] for an empty batch or one larger
    /// than [`MAX_BATCH_ENTRIES`]. Per-entry failures are reported in
    /// the returned [`BatchResponse`], never by sinking the call: an
    /// entry whose fabric attempts were all exhausted carries a typed
    /// [`ErrorCode::Overloaded`] entry error.
    pub fn plan_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, ServiceError> {
        if req.entries.is_empty() {
            return Err(ServiceError::Malformed("empty batch".into()));
        }
        if req.entries.len() > MAX_BATCH_ENTRIES as usize {
            return Err(ServiceError::Malformed(format!(
                "batch of {} entries exceeds the limit of {MAX_BATCH_ENTRIES}",
                req.entries.len()
            )));
        }
        self.stats.batches_routed += 1;

        // Group entry indices by home shard, preserving request order
        // within each group.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, entry) in req.entries.iter().enumerate() {
            let home = self.ring.route(Self::routing_key(entry));
            groups.entry(home).or_default().push(i);
        }
        self.stats.batch_splits += groups.len() as u64 - 1;

        let mut out: Vec<Option<Result<PlanResponse, ErrorResponse>>> =
            (0..req.entries.len()).map(|_| None).collect();
        let mut shards: Vec<usize> = groups.keys().copied().collect();
        shards.sort_unstable();
        for shard in shards {
            let idxs = &groups[&shard];
            let sub = BatchRequest {
                entries: idxs.iter().map(|&i| req.entries[i].clone()).collect(),
            };
            let attempt = if matches!(self.breakers[shard], Breaker::Open { .. }) {
                // Don't burn the whole sub-batch on a shard we already
                // believe is down; the per-entry path probes it.
                Err(ServiceError::ConnectionClosed)
            } else {
                self.attempt_plan_batch(shard, &sub)
            };
            match attempt {
                Ok(resp) if resp.entries.len() == idxs.len() => {
                    self.on_success(shard);
                    for (&i, r) in idxs.iter().zip(resp.entries) {
                        if let Ok(ref plan) = r {
                            if plan.cache != CacheOutcome::Hit
                                && plan.degradation == DegradationCode::None
                            {
                                let order =
                                    self.ring.successors(Self::routing_key(&req.entries[i]));
                                self.push_replicas(
                                    &req.entries[i].stencil,
                                    &req.entries[i].objective,
                                    &plan.uov,
                                    plan.cost,
                                    &order,
                                    Some(shard),
                                );
                            }
                        }
                        out[i] = Some(r);
                    }
                }
                other => {
                    let e = match other {
                        Ok(short) => ServiceError::Malformed(format!(
                            "shard answered {} entries for a {}-entry sub-batch",
                            short.entries.len(),
                            idxs.len()
                        )),
                        Err(e) => e,
                    };
                    self.on_failure(shard, &e);
                    // Fall back entry by entry: plan() retries across
                    // ring successors, so these entries survive a dead
                    // home shard.
                    for &i in idxs {
                        self.stats.batch_fallbacks += 1;
                        out[i] = Some(match self.plan(&req.entries[i]) {
                            Ok(resp) => Ok(resp),
                            Err(ServiceError::Rejected { code, msg }) => {
                                Err(ErrorResponse { code, msg })
                            }
                            Err(e) => Err(ErrorResponse {
                                code: ErrorCode::Overloaded,
                                msg: format!("mesh batch entry exhausted the fabric: {e}"),
                            }),
                        });
                    }
                }
            }
        }
        let entries = out
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(ErrorResponse {
                        code: ErrorCode::Internal,
                        msg: "batch entry was never answered".into(),
                    })
                })
            })
            .collect();
        Ok(BatchResponse { entries })
    }

    fn attempt_plan_batch(
        &mut self,
        shard: usize,
        req: &BatchRequest,
    ) -> Result<BatchResponse, ServiceError> {
        let mut client = self.take_conn(shard)?;
        client.set_timeout(Some(self.cfg.attempt_timeout))?;
        match client.plan_batch(req) {
            Ok(resp) => {
                self.conns[shard] = Some(client);
                Ok(resp)
            }
            Err(e) => {
                // A typed rejection travelled over a working transport.
                if matches!(e, ServiceError::Rejected { .. }) {
                    self.conns[shard] = Some(client);
                }
                Err(e)
            }
        }
    }

    /// Distribute one search across the mesh and certify the merged
    /// answer locally. See the module docs for the fixpoint argument;
    /// the returned `(uov, cost, certificate_hash)` is byte-identical to
    /// a direct in-process search of the same request.
    ///
    /// # Errors
    ///
    /// [`ServiceError::FabricExhausted`] when some work unit ran out of
    /// replicas to try; [`ServiceError::Malformed`] for an invalid
    /// problem; [`ServiceError::Internal`]-coded rejections for local
    /// engine failures.
    pub fn plan_distributed(&mut self, req: &PlanRequest) -> Result<PlanResponse, ServiceError> {
        self.plan_distributed_hooked(req, &mut |_| {})
    }

    /// [`MeshClient::plan_distributed`] with a hook invoked at the start
    /// of every merge round (with the round index). The chaos tests kill
    /// and restart replicas from this hook to make "replica dies
    /// mid-distributed-search" a deterministic, seedable event instead
    /// of a race.
    ///
    /// # Errors
    ///
    /// As [`MeshClient::plan_distributed`].
    pub fn plan_distributed_hooked(
        &mut self,
        req: &PlanRequest,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<PlanResponse, ServiceError> {
        let objective = req.objective.as_objective();
        let fp = fingerprint(&req.stencil, &objective);
        let full = (1u64 << req.stencil.len().min(63)) - 1;
        self.stats.distributed += 1;

        // Local sequential prefix: cheap problems never touch the wire,
        // and expensive ones yield a frontier worth splitting.
        let prefix = SearchConfig {
            budget: Budget::unlimited().with_max_nodes(self.cfg.local_prefix_nodes.max(1)),
            threads: 1,
            ..SearchConfig::default()
        };
        let (_, snap) = search_unit(None, &req.stencil, objective, &prefix)
            .map_err(|e| ServiceError::Malformed(format!("distributed search setup: {e}")))?;

        // Global merged state (see [`MergeState`]): absorbing the local
        // prefix snapshot seeds `known`/`covered`/`checked` exactly as a
        // unit completion would, and its frontier becomes the first
        // round's work.
        let mut merged = MergeState::seeded(&snap, full);
        let mut frontier: Vec<(u128, IVec, u64)> = snap.frontier;

        let key = Self::routing_key(req);
        let order = self.ring.successors(key);
        let mut round = 0usize;
        let mut hint: Option<u128> = None;

        while !frontier.is_empty() {
            on_round(round);
            self.stats.rounds += 1;

            // Give zombie sockets from earlier rounds a brief chance to
            // surface their superseded completions (discarded by epoch).
            self.drain_zombies(Duration::from_millis(5), true);

            if self.cfg.gossip {
                self.fold_gossip(fp, &mut hint);
            }
            // The incumbent's own cost is always a sound hint; gossip can
            // only tighten it further.
            let incumbent_cost = merged.incumbent.0;
            let bound_hint = Some(hint.map_or(incumbent_cost, |h| h.min(incumbent_cost)));

            // Deterministic split: sort the frontier by the engine's
            // queue order, then deal round-robin into unit slices.
            frontier.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let unit_count = if self.cfg.units_per_round == 0 {
                self.endpoints.len()
            } else {
                self.cfg.units_per_round
            }
            .max(1)
            .min(frontier.len());
            let mut slices: Vec<Vec<(u128, IVec, u64)>> = vec![Vec::new(); unit_count];
            for (i, entry) in frontier.drain(..).enumerate() {
                slices[i % unit_count].push(entry);
            }

            // Build one work unit per slice. Every unit carries the full
            // merged PATHSET table and the global incumbent, so its seed
            // upholds the snapshot invariants the server re-validates.
            // The snapshot is encoded here (epoch 0) only for the frame
            // size check; each dispatch attempt re-encodes it under its
            // own fresh fencing epoch, which cannot change the length
            // (the EPOCH section is fixed-width).
            let known_vec: Vec<(IVec, u64)> =
                merged.known.iter().map(|(w, m)| (w.clone(), *m)).collect();
            let mut units: Vec<(WorkUnitRequest, Snapshot)> = Vec::with_capacity(unit_count);
            for slice in &slices {
                let unit_snap = Snapshot {
                    fingerprint: fp,
                    dim: req.stencil.dim(),
                    incumbent_cost: merged.incumbent.0,
                    incumbent: merged.incumbent.2.clone(),
                    frontier: slice.clone(),
                    known: known_vec.clone(),
                    nodes_charged: 0,
                    stats: SearchStats::default(),
                    epoch: 0,
                };
                let bytes = encode_snapshot(&unit_snap).map_err(|e| ServiceError::Rejected {
                    code: ErrorCode::Internal,
                    msg: format!("work-unit encode: {e}"),
                })?;
                let unit = WorkUnitRequest {
                    stencil: req.stencil.clone(),
                    objective: req.objective.clone(),
                    deadline_ms: 0,
                    node_budget: self.cfg.unit_node_budget,
                    bound_hint,
                    snapshot: bytes,
                };
                if unit.encode().len() > MAX_PAYLOAD as usize {
                    // The merged table no longer fits a frame: finish on
                    // one shard rather than truncate state.
                    self.stats.oversize_fallbacks += 1;
                    return self.plan(req);
                }
                units.push((unit, unit_snap));
            }

            let outcomes = self.dispatch_round(&order, round, &units, fp)?;

            // Merge, in unit order so the log and the state are
            // reproducible. Masks union; the incumbent takes the minimum
            // under the engine's canonical total order — an idempotent,
            // order-insensitive fold. Coverage is credited per unit
            // against its assigned slice only (see
            // [`MergeState::absorb_unit`]).
            for (snap, (_, unit_snap)) in outcomes.iter().zip(&units) {
                merged.absorb_unit(snap, &unit_snap.frontier);
            }

            // Re-frontier: any offset whose merged mask nobody expanded
            // (the cross-unit union hazard), and any full-mask offset
            // whose candidate check never ran.
            for (w, &u) in &merged.known {
                let cov = merged.covered.get(w).copied().unwrap_or(0);
                let needs_children = u & !cov != 0;
                let needs_check = u == full && !merged.checked.contains(w);
                if needs_children || needs_check {
                    if let Ok(cost) = try_cost_of(&objective, w) {
                        frontier.push((cost, w.clone(), u));
                    }
                }
            }
            self.events.push(MeshEvent::RoundMerged {
                round,
                frontier: frontier.len(),
            });
            round += 1;
        }

        // Fixpoint reached. Give every remaining zombie socket a full
        // lease to surface its superseded completion — observed,
        // counted, discarded; the merge above never saw it, and this
        // drain proves nothing arrives after it either.
        let final_wait = self.cfg.attempt_timeout;
        self.drain_zombies(final_wait, false);

        // The merged exploration equals a direct search's, so the
        // incumbent is the optimum under the canonical order. Certify
        // locally — same path, same transcript hash.
        let as_result = SearchResult {
            uov: merged.incumbent.2.clone(),
            cost: merged.incumbent.0,
            stats: SearchStats::default(),
            degradation: None,
            checkpoint_error: None,
        };
        let cert =
            certify(&req.stencil, &objective, &as_result).map_err(|e| ServiceError::Rejected {
                code: ErrorCode::Internal,
                msg: format!("certification failed: {e}"),
            })?;
        // The answer is certified and non-degraded by construction:
        // replicate it so failover targets are warm for this problem.
        // Searches that finished inside the local prefix stay off the
        // wire entirely — a problem that cheap is cheaper to re-solve
        // than to replicate.
        if round > 0 {
            self.push_replicas(
                &req.stencil,
                &req.objective,
                &as_result.uov,
                as_result.cost,
                &order,
                None,
            );
        }
        Ok(PlanResponse {
            uov: as_result.uov,
            cost: as_result.cost,
            certificate_hash: cert.transcript_hash,
            degradation: DegradationCode::None,
            cache: CacheOutcome::Miss,
        })
    }

    /// Dispatch one round's units concurrently, each with its own
    /// redispatch loop over ring successors, and return the validated
    /// snapshots in unit order. Breaker and event bookkeeping happens
    /// after the join, on this thread, in unit order — deterministic
    /// regardless of network timing.
    fn dispatch_round(
        &mut self,
        order: &[usize],
        round: usize,
        units: &[(WorkUnitRequest, Snapshot)],
        expected_fp: u64,
    ) -> Result<Vec<Snapshot>, ServiceError> {
        let open: Vec<bool> = self
            .breakers
            .iter()
            .map(|b| matches!(b, Breaker::Open { .. }))
            .collect();
        // Unit j prefers successor j, so a round spreads across the ring;
        // shards behind an open breaker are demoted to last resort.
        let preferences: Vec<Vec<usize>> = (0..units.len())
            .map(|j| {
                let rotated: Vec<usize> = (0..order.len())
                    .map(|i| order[(j + i) % order.len()])
                    .collect();
                let (live, dead): (Vec<usize>, Vec<usize>) =
                    rotated.into_iter().partition(|&s| !open[s]);
                live.into_iter().chain(dead).collect()
            })
            .collect();

        let endpoints = &self.endpoints;
        let timeout = self.cfg.attempt_timeout;
        let max_attempts = self.cfg.max_unit_attempts.max(1) as usize;
        let backoff_base = self.cfg.backoff_base;
        let backoff_max = self.cfg.backoff_max;
        let epoch_src = &self.epoch;

        let outcomes: Vec<UnitOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = units
                .iter()
                .enumerate()
                .map(|(j, (unit, base))| {
                    let prefs = &preferences[j];
                    scope.spawn(move || {
                        run_unit(
                            endpoints,
                            prefs,
                            unit,
                            base,
                            epoch_src,
                            expected_fp,
                            timeout,
                            max_attempts,
                            backoff_base,
                            backoff_max,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| UnitOutcome {
                        attempts: Vec::new(),
                        snapshot: None,
                        last_error: Some(ServiceError::Malformed(
                            "work-unit dispatch thread panicked".into(),
                        )),
                        zombies: Vec::new(),
                    })
                })
                .collect()
        });

        // Post-join bookkeeping in unit order.
        let mut snaps = Vec::with_capacity(outcomes.len());
        for (j, outcome) in outcomes.into_iter().enumerate() {
            self.stats.units_dispatched += 1;
            self.zombies.extend(outcome.zombies);
            let mut prev: Option<usize> = None;
            for &(shard, ok) in &outcome.attempts {
                match prev {
                    None => self.events.push(MeshEvent::UnitDispatched {
                        round,
                        unit: j,
                        shard,
                    }),
                    Some(from) => {
                        self.stats.redispatches += 1;
                        self.events.push(MeshEvent::UnitRedispatched {
                            round,
                            unit: j,
                            from,
                            to: shard,
                        });
                    }
                }
                if ok {
                    self.on_success(shard);
                    self.events.push(MeshEvent::UnitCompleted {
                        round,
                        unit: j,
                        shard,
                    });
                } else {
                    self.breaker_failure(shard);
                    self.conns[shard] = None;
                }
                prev = Some(shard);
            }
            match outcome.snapshot {
                Some(s) => snaps.push(s),
                None => {
                    return Err(ServiceError::FabricExhausted {
                        attempts: self.cfg.max_unit_attempts.max(1),
                        last: Box::new(
                            outcome.last_error.unwrap_or(ServiceError::ConnectionClosed),
                        ),
                    })
                }
            }
        }
        Ok(snaps)
    }

    /// Best-effort: poll every shard's stats frame and fold a matching
    /// gossiped bound into `hint`. Failures are ignored — a missing
    /// gossip costs visits, never correctness.
    fn fold_gossip(&mut self, fp: u64, hint: &mut Option<u128>) {
        for shard in 0..self.endpoints.len() {
            if matches!(self.breakers[shard], Breaker::Open { .. }) {
                continue;
            }
            let mut client = match self.take_conn(shard) {
                Ok(c) => c,
                Err(_) => continue,
            };
            match client.stats() {
                Ok(stats) => {
                    self.conns[shard] = Some(client);
                    // Piggybacked anti-entropy: the same stats frame
                    // carries the restart signature.
                    if self.note_connections(shard, stats.server.connections) {
                        self.repair_shard(shard);
                    }
                    if let Some(b) = stats.bound {
                        if b.fingerprint == fp && u128::from(b.cost) < hint.unwrap_or(u128::MAX) {
                            *hint = Some(u128::from(b.cost));
                            self.stats.gossip_hints += 1;
                            self.events.push(MeshEvent::GossipBound {
                                shard,
                                cost: b.cost,
                            });
                        }
                    }
                }
                Err(_) => {
                    // Stats are advisory; a failed poll is not a breaker
                    // event, just a dropped connection.
                }
            }
        }
    }

    /// Anti-entropy sweep on the stats channel: poll every shard's
    /// counters, detect restarts (the monotone `connections` counter
    /// went backwards), and re-push every replicated entry the restarted
    /// shard should hold, flagged as a repair. The same detection rides
    /// along on gossip polls during distributed search; call this
    /// between planning bursts to repair gaps sooner.
    pub fn anti_entropy_sweep(&mut self) {
        for shard in 0..self.endpoints.len() {
            let mut client = match self.take_conn(shard) {
                Ok(c) => c,
                Err(_) => continue,
            };
            if let Ok(stats) = client.stats() {
                self.conns[shard] = Some(client);
                if self.note_connections(shard, stats.server.connections) {
                    self.repair_shard(shard);
                }
            }
        }
    }

    /// Track a shard's monotone `connections` counter; a decrease means
    /// the process restarted with fresh counters — and an empty cache.
    fn note_connections(&mut self, shard: usize, connections: u64) -> bool {
        let prev = self.last_conns[shard];
        self.last_conns[shard] = Some(connections);
        prev.is_some_and(|p| connections < p)
    }

    /// Re-offer every remembered replication this shard was a target of,
    /// flagged as an anti-entropy repair. Best-effort: the receiver
    /// re-certifies as always, and a still-down shard is repaired on the
    /// next sweep instead.
    fn repair_shard(&mut self, shard: usize) {
        let records: Vec<ReplicationRecord> = self
            .replication_log
            .iter()
            .filter(|r| r.targets.contains(&shard))
            .cloned()
            .collect();
        for r in records {
            if let Ok(stored) =
                self.replicate_to(shard, &r.stencil, &r.objective, &r.uov, r.cost, true)
            {
                if stored {
                    self.stats.anti_entropy_repairs += 1;
                    self.events.push(MeshEvent::AntiEntropyRepair { shard });
                }
            }
        }
    }

    /// Best-effort push of a certified answer to the
    /// [`MeshConfig::replication_factor`] ring successors of the home
    /// shard, so a deterministic failover lands on a warm, certified
    /// cache entry. Every receiver re-certifies before storing. The push
    /// is recorded so anti-entropy can re-offer it after a target
    /// restarts — including targets that were down for the original push.
    fn push_replicas(
        &mut self,
        stencil: &Stencil,
        objective: &ObjectiveSpec,
        uov: &IVec,
        cost: u128,
        order: &[usize],
        served_by: Option<usize>,
    ) {
        let k = self
            .cfg
            .replication_factor
            .min(order.len().saturating_sub(1));
        if k == 0 {
            return;
        }
        let targets: Vec<usize> = order[1..=k].to_vec();
        for &shard in &targets {
            if Some(shard) == served_by {
                continue; // the serving replica already holds the entry
            }
            if let Ok(stored) = self.replicate_to(shard, stencil, objective, uov, cost, false) {
                self.stats.replicas_pushed += 1;
                self.events.push(MeshEvent::ReplicaPushed { shard, stored });
            }
        }
        self.replication_log.push(ReplicationRecord {
            stencil: stencil.clone(),
            objective: objective.clone(),
            uov: uov.clone(),
            cost,
            targets,
        });
        if self.replication_log.len() > REPLICATION_LOG_CAP {
            self.replication_log.remove(0);
        }
    }

    /// One replication push to one shard over the pooled connection.
    fn replicate_to(
        &mut self,
        shard: usize,
        stencil: &Stencil,
        objective: &ObjectiveSpec,
        uov: &IVec,
        cost: u128,
        repair: bool,
    ) -> Result<bool, ServiceError> {
        let mut client = self.take_conn(shard)?;
        let req = ReplicateRequest {
            stencil: stencil.clone(),
            objective: objective.clone(),
            uov: uov.clone(),
            cost,
            repair,
        };
        match client.replicate(&req) {
            Ok(resp) => {
                self.conns[shard] = Some(client);
                Ok(resp.stored)
            }
            Err(e) => {
                // A typed rejection travelled over a working transport.
                if matches!(e, ServiceError::Rejected { .. }) {
                    self.conns[shard] = Some(client);
                }
                Err(e)
            }
        }
    }

    /// Drain sockets kept after timed-out work-unit attempts. A late
    /// `RESP_WORKUNIT` surfacing here carries a superseded fencing epoch
    /// by construction — the attempt was abandoned and the unit
    /// re-dispatched under a fresh epoch — so it is counted and
    /// discarded, never merged. With `keep_pending`, sockets that still
    /// have nothing to say survive to the next drain; otherwise they are
    /// dropped (the server-side fence and the wedge watchdog make the
    /// zombie work harmless).
    fn drain_zombies(&mut self, wait: Duration, keep_pending: bool) {
        let zombies = std::mem::take(&mut self.zombies);
        for mut z in zombies {
            match z.client.recv_pending(wait) {
                Ok(Some((kind::RESP_WORKUNIT, payload))) => {
                    let epoch = WorkUnitResponse::decode(&payload)
                        .ok()
                        .and_then(|r| decode_snapshot(&r.snapshot).ok())
                        .map_or(z.epoch, |s| s.epoch);
                    self.stats.stale_epoch_rejections += 1;
                    self.events.push(MeshEvent::StaleCompletionDiscarded {
                        shard: z.shard,
                        epoch,
                    });
                }
                Ok(_) => {
                    // An error frame (the server's own fence fired) or a
                    // clean close: nothing stale escaped.
                }
                Err(ServiceError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
                {
                    if keep_pending {
                        self.zombies.push(z);
                    }
                }
                Err(_) => {
                    // Dead socket (reset, torn frame): the replica died
                    // with the zombie, nothing to discard.
                }
            }
        }
    }

    /// Age open breakers one tick, then pick the first admissible shard
    /// in `order`; when every breaker is open, half-open the one closest
    /// to its cooldown's end (probe rather than refuse).
    fn select_shard(&mut self, order: &[usize]) -> usize {
        for &s in order {
            if let Breaker::Open { remaining } = self.breakers[s] {
                let remaining = remaining.saturating_sub(1);
                self.breakers[s] = if remaining == 0 {
                    Breaker::HalfOpen
                } else {
                    Breaker::Open { remaining }
                };
            }
        }
        if let Some(&s) = order
            .iter()
            .find(|&&s| !matches!(self.breakers[s], Breaker::Open { .. }))
        {
            return s;
        }
        let s = order
            .iter()
            .copied()
            .min_by_key(|&s| match self.breakers[s] {
                Breaker::Open { remaining } => remaining,
                _ => 0,
            })
            .unwrap_or(order[0]);
        self.breakers[s] = Breaker::HalfOpen;
        s
    }

    fn take_conn(&mut self, shard: usize) -> Result<Client, ServiceError> {
        match self.conns[shard].take() {
            Some(c) => Ok(c),
            None => {
                let mut c = Client::connect(&self.endpoints[shard])?;
                c.set_timeout(Some(self.cfg.attempt_timeout))?;
                Ok(c)
            }
        }
    }

    fn attempt_plan(
        &mut self,
        shard: usize,
        req: &PlanRequest,
    ) -> Result<PlanResponse, ServiceError> {
        let mut client = self.take_conn(shard)?;
        client.set_timeout(Some(self.cfg.attempt_timeout))?;
        match client.plan(req) {
            Ok(resp) => {
                self.conns[shard] = Some(client);
                Ok(resp)
            }
            Err(e) => {
                // A typed rejection travelled over a working transport.
                if matches!(e, ServiceError::Rejected { .. }) {
                    self.conns[shard] = Some(client);
                }
                Err(e)
            }
        }
    }

    fn is_hard(e: &ServiceError) -> bool {
        matches!(
            e,
            ServiceError::Rejected {
                code: ErrorCode::Malformed | ErrorCode::Unsupported,
                ..
            }
        )
    }

    fn on_success(&mut self, shard: usize) {
        self.breakers[shard] = Breaker::Closed { failures: 0 };
    }

    fn on_failure(&mut self, shard: usize, e: &ServiceError) {
        self.breaker_failure(shard);
        if !matches!(e, ServiceError::Rejected { .. }) {
            self.conns[shard] = None;
        }
    }

    fn breaker_failure(&mut self, shard: usize) {
        let cooldown = self.cfg.cooldown.max(1);
        let threshold = self.cfg.failure_threshold.max(1);
        self.breakers[shard] = match self.breakers[shard] {
            Breaker::HalfOpen => Breaker::Open {
                remaining: cooldown,
            },
            Breaker::Closed { failures } => {
                let failures = failures + 1;
                if failures >= threshold {
                    Breaker::Open {
                        remaining: cooldown,
                    }
                } else {
                    Breaker::Closed { failures }
                }
            }
            open => open,
        };
    }

    fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base.as_millis() as u64;
        let cap = (self.cfg.backoff_max.as_millis() as u64).max(base);
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        let half = exp / 2;
        half + self.rng.next() % (exp - half + 1)
    }
}

/// The coordinator's merged global state across work-unit completions.
///
/// `known[w]` is the union of PATHSET masks seen for offset `w`;
/// `covered[w]` is the union of masks at which some single engine fully
/// expanded `w`; `checked` holds offsets expanded at the *full* mask (so
/// the candidate check provably ran). An offset is re-frontiered until
/// its merged mask is covered and, when full, checked.
///
/// Coverage evidence is earned, never inferred wholesale: a unit is
/// seeded with the entire merged PATHSET table, but only the offsets in
/// its *assigned slice* provably pass through its queue — "absent from
/// the final frontier" means "expanded" only for those. Crediting the
/// whole table would mark another unit's budget-cut slice entry as
/// covered and silently drop its subtree (see
/// [`MergeState::absorb_unit`]). The engine's queue invariant does hold
/// for every entry of a *fresh* run's table, which is why
/// [`MergeState::seeded`] may absorb the local prefix in full.
///
/// Both folds are **idempotent and order-insensitive**: masks merge by
/// union and the incumbent by the canonical minimum, so feeding the same
/// completion twice — or a superseded one whose state is a subset of
/// what a later completion already contributed — cannot move the
/// fixpoint. That algebra is the second line of defense behind the
/// fencing epochs, and the property test below pins it down.
struct MergeState {
    known: HashMap<IVec, u64>,
    incumbent: (u128, i128, IVec),
    covered: HashMap<IVec, u64>,
    checked: HashSet<IVec>,
    full: u64,
}

impl MergeState {
    /// Seed the merge from the coordinator's local-prefix snapshot:
    /// absorbing it contributes its PATHSET table and incumbent exactly
    /// as a unit completion would (the snapshot's own frontier is the
    /// first round's work, handled by the caller).
    fn seeded(snap: &Snapshot, full: u64) -> Self {
        let mut state = MergeState {
            known: HashMap::new(),
            incumbent: (
                snap.incumbent_cost,
                snap.incumbent.try_norm_sq().unwrap_or(i128::MAX),
                snap.incumbent.clone(),
            ),
            covered: HashMap::new(),
            checked: HashSet::new(),
            full,
        };
        state.absorb(snap);
        state
    }

    /// Fold a *fresh-run* snapshot in, trusting its whole table: every
    /// store entry of a from-scratch run passed through the engine's
    /// queue, so "absent from the final frontier" means "fully expanded
    /// at its final mask" for all of them. Only [`MergeState::seeded`]
    /// may use this; resumed units go through
    /// [`MergeState::absorb_unit`].
    fn absorb(&mut self, snap: &Snapshot) {
        self.absorb_incumbent(snap);
        let unit_frontier: HashSet<&IVec> = snap.frontier.iter().map(|(_, w, _)| w).collect();
        for (w, m) in &snap.known {
            *self.known.entry(w.clone()).or_insert(0) |= m;
            if !unit_frontier.contains(w) {
                *self.covered.entry(w.clone()).or_insert(0) |= m;
                if *m == self.full {
                    self.checked.insert(w.clone());
                }
            }
        }
    }

    /// Fold one completed work unit in. The discovered paths (`known`)
    /// and the incumbent merge unconditionally — unions and minima are
    /// always sound — but coverage is credited only for the unit's
    /// `assigned` slice: those offsets were queued, so each is either in
    /// the final frontier (budget cut it short) or was expanded at a
    /// mask ⊇ its assigned mask (a stale pop only ever yields to a
    /// grown twin in the same queue, and a superset-mask expansion
    /// subsumes the subset's children under the PATHSET union).
    /// Descendants the unit discovered earn no credit here; the
    /// re-frontier reassigns them until a unit expands them as its own
    /// slice work, which keeps every claim witnessed.
    fn absorb_unit(&mut self, snap: &Snapshot, assigned: &[(u128, IVec, u64)]) {
        self.absorb_incumbent(snap);
        for (w, m) in &snap.known {
            *self.known.entry(w.clone()).or_insert(0) |= m;
        }
        let unit_frontier: HashSet<&IVec> = snap.frontier.iter().map(|(_, w, _)| w).collect();
        for (_, w, u) in assigned {
            if !unit_frontier.contains(w) {
                *self.covered.entry(w.clone()).or_insert(0) |= u;
                if *u == self.full {
                    self.checked.insert(w.clone());
                }
            }
        }
    }

    fn absorb_incumbent(&mut self, snap: &Snapshot) {
        if improves(snap.incumbent_cost, &snap.incumbent, &self.incumbent) {
            self.incumbent = (
                snap.incumbent_cost,
                snap.incumbent.try_norm_sq().unwrap_or(i128::MAX),
                snap.incumbent.clone(),
            );
        }
    }
}

/// The engine's canonical candidate order (cost, then squared length,
/// then lexicographic) — the same total order `uov_core`'s engines use,
/// so the coordinator's incumbent merge is deterministic and agrees with
/// a direct search's tie-breaks.
fn improves(cost: u128, w: &IVec, best: &(u128, i128, IVec)) -> bool {
    use std::cmp::Ordering as O;
    match cost.cmp(&best.0) {
        O::Less => true,
        O::Greater => false,
        O::Equal => {
            let norm = w.try_norm_sq().unwrap_or(i128::MAX);
            match norm.cmp(&best.1) {
                O::Less => true,
                O::Greater => false,
                O::Equal => *w < best.2,
            }
        }
    }
}

/// One unit's dispatch loop, run on a scoped thread: try ring successors
/// in preference order (wrapping) until a replica returns a frame whose
/// snapshot decodes, CRC-checks, and fingerprints to the right problem.
/// Each attempt is bounded by the lease (`timeout`) and carries a
/// **fresh fencing epoch** drawn from the coordinator's monotonic
/// counter, so once a re-dispatch lands, the server rejects any earlier
/// attempt still executing (`StaleEpoch`) and it can never double-report
/// into a merge. Units of one search share a fingerprint, so two
/// *concurrent* units colliding on one shard can fence each other — that
/// race is benign: `StaleEpoch` is retryable, every retry draws a
/// strictly higher epoch, and the round's preference rotation sends
/// first attempts to distinct shards, so progress is never lost, only a
/// retry spent. A timed-out socket is kept as a zombie for the
/// coordinator's drain instead of being dropped with a frame in flight.
#[allow(clippy::too_many_arguments)]
fn run_unit(
    endpoints: &[String],
    prefs: &[usize],
    unit: &WorkUnitRequest,
    base: &Snapshot,
    epoch_src: &AtomicU64,
    expected_fp: u64,
    timeout: Duration,
    max_attempts: usize,
    backoff_base: Duration,
    backoff_max: Duration,
) -> UnitOutcome {
    let mut attempts: Vec<(usize, bool)> = Vec::new();
    let mut last_error: Option<ServiceError> = None;
    let mut zombies: Vec<Zombie> = Vec::new();
    for attempt in 0..max_attempts {
        let shard = prefs[attempt % prefs.len()];
        let epoch = epoch_src.fetch_add(1, Ordering::Relaxed) + 1;
        let mut keep: Option<Client> = None;
        let result = (|| -> Result<Snapshot, ServiceError> {
            // Re-encode the snapshot under this attempt's lease epoch.
            // The EPOCH section is fixed-width, so the frame-size check
            // done at build time (epoch 0) stays valid.
            let mut leased = base.clone();
            leased.epoch = epoch;
            let mut req = unit.clone();
            req.snapshot = encode_snapshot(&leased).map_err(|e| ServiceError::Rejected {
                code: ErrorCode::Internal,
                msg: format!("work-unit re-encode: {e}"),
            })?;
            let mut client = Client::connect(&endpoints[shard])?;
            client.set_timeout(Some(timeout))?;
            let resp = match client.workunit(&req) {
                Ok(resp) => resp,
                Err(e) => {
                    // The lease expired with a frame possibly still in
                    // flight: keep the socket so the coordinator can
                    // drain (and discard by epoch) the late completion.
                    if matches!(
                        &e,
                        ServiceError::Io(io) if matches!(
                            io.kind(),
                            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                        )
                    ) {
                        keep = Some(client);
                    }
                    return Err(e);
                }
            };
            let snap = decode_snapshot(&resp.snapshot).map_err(|e| {
                ServiceError::Malformed(format!("work-unit response snapshot: {e}"))
            })?;
            if snap.fingerprint != expected_fp {
                return Err(ServiceError::Malformed(
                    "work-unit response for a different problem".into(),
                ));
            }
            if snap.epoch != epoch {
                return Err(ServiceError::Malformed(format!(
                    "work-unit response under lease epoch {} instead of {epoch}",
                    snap.epoch
                )));
            }
            Ok(snap)
        })();
        if let Some(client) = keep {
            zombies.push(Zombie {
                client,
                shard,
                epoch,
            });
        }
        match result {
            Ok(snap) => {
                attempts.push((shard, true));
                return UnitOutcome {
                    attempts,
                    snapshot: Some(snap),
                    last_error: None,
                    zombies,
                };
            }
            Err(e) => {
                // A malformed/unsupported rejection from a *healthy*
                // transport will repeat on every replica: give up now.
                let hard = matches!(
                    e,
                    ServiceError::Rejected {
                        code: ErrorCode::Malformed | ErrorCode::Unsupported,
                        ..
                    }
                );
                attempts.push((shard, false));
                last_error = Some(e);
                if hard {
                    break;
                }
            }
        }
        if attempt + 1 < max_attempts {
            let base = backoff_base.as_millis() as u64;
            let cap = (backoff_max.as_millis() as u64).max(base);
            let ms = base
                .saturating_mul(1u64 << (attempt as u32).min(20))
                .min(cap);
            if ms > 0 {
                thread::sleep(Duration::from_millis(ms));
            }
        }
    }
    UnitOutcome {
        attempts,
        snapshot: None,
        last_error,
        zombies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_core::search::{find_best_uov, Objective};
    use uov_isg::{ivec, Stencil};

    fn endpoints(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
    }

    #[test]
    fn ring_routes_deterministically_and_covers_all_shards() {
        let eps = endpoints(5);
        let a = Ring::new(&eps, 16);
        let b = Ring::new(&eps, 16);
        let mut hit = [false; 5];
        for k in 0..2000u64 {
            let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(a.route(key), b.route(key));
            hit[a.route(key)] = true;
            let order = a.successors(key);
            assert_eq!(order.len(), 5);
            assert_eq!(order[0], a.route(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
        assert!(hit.iter().all(|&h| h), "some shard owns no arc at all");
    }

    /// The consistent-hashing contract: adding a shard re-homes only the
    /// keys that move *to* the new shard; removing a shard re-homes only
    /// the keys that lived on it. Everything else stays put.
    #[test]
    fn ring_add_remove_moves_only_the_affected_arcs() {
        let five = endpoints(5);
        let six: Vec<String> = five
            .iter()
            .cloned()
            .chain(std::iter::once("10.0.0.9:7878".to_string()))
            .collect();
        let ring5 = Ring::new(&five, 16);
        let ring6 = Ring::new(&six, 16);
        let mut moved = 0usize;
        let total = 4000usize;
        for k in 0..total as u64 {
            let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
            let before = &five[ring5.route(key)];
            let after = &six[ring6.route(key)];
            if before != after {
                assert_eq!(after, "10.0.0.9:7878", "key re-homed to an old shard");
                moved += 1;
            }
        }
        // Roughly 1/6 of the keyspace should move; all of it must move
        // to the new shard (asserted above), and some of it must move
        // (a ring that never moves keys is not hashing at all).
        assert!(moved > 0, "adding a shard moved nothing");
        assert!(
            moved < total / 3,
            "adding one of six shards moved {moved}/{total} keys"
        );

        // Removal is the mirror image: only the removed shard's keys move.
        let four: Vec<String> = five[..4].to_vec();
        let ring4 = Ring::new(&four, 16);
        for k in 0..total as u64 {
            let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5A5A;
            let before = &five[ring5.route(key)];
            let after = &four[ring4.route(key)];
            if before != after {
                assert_eq!(before, &five[4], "a surviving shard's key moved on removal");
            }
        }
    }

    #[test]
    fn routing_key_is_permutation_invariant() {
        // Axis-relabeled problems must share a home shard.
        let a = PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![2, 1]]).unwrap(),
            objective: crate::proto::ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        };
        let b = PlanRequest {
            stencil: Stencil::new(vec![ivec![0, 1], ivec![1, 2]]).unwrap(),
            objective: crate::proto::ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        };
        assert_eq!(MeshClient::routing_key(&a), MeshClient::routing_key(&b));
    }

    /// End-to-end distributed search against live in-process servers,
    /// multiple merge rounds forced by a tiny unit budget, byte-compared
    /// to the direct in-process answer.
    #[test]
    fn distributed_search_matches_direct_search() {
        let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 3]]).unwrap();
        let direct = find_best_uov(
            &stencil,
            Objective::ShortestVector,
            &SearchConfig::default(),
        )
        .unwrap();
        let direct_cert = certify(
            &stencil,
            &Objective::ShortestVector,
            &SearchResult {
                uov: direct.uov.clone(),
                cost: direct.cost,
                stats: SearchStats::default(),
                degradation: None,
                checkpoint_error: None,
            },
        )
        .unwrap();

        let replicas =
            crate::chaos::ReplicaSet::start(3, crate::server::ServerConfig::default()).unwrap();
        let mut mesh = MeshClient::new(
            replicas.endpoints(),
            MeshConfig {
                local_prefix_nodes: 4,
                unit_node_budget: 16,
                ..MeshConfig::default()
            },
        )
        .unwrap();
        let req = PlanRequest {
            stencil,
            objective: crate::proto::ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        };
        let resp = mesh.plan_distributed(&req).unwrap();
        assert_eq!(resp.uov, direct.uov);
        assert_eq!(resp.cost, direct.cost);
        assert_eq!(resp.certificate_hash, direct_cert.transcript_hash);
        assert!(
            mesh.stats().rounds >= 2,
            "unit budget too big to test merging"
        );
        replicas.shutdown_all();
    }

    /// One pseudo-random unit completion over a 2-D, 3-vector problem:
    /// the snapshot plus the slice the unit was notionally assigned (a
    /// subset of its table, some of it left unexpanded in the frontier).
    type UnitFixture = (Snapshot, Vec<(u128, IVec, u64)>);

    fn rand_unit(rng: &mut XorShift64, full: u64) -> UnitFixture {
        let n = 1 + (rng.next() % 4) as usize;
        let mut known = Vec::new();
        let mut frontier = Vec::new();
        let mut assigned = Vec::new();
        for _ in 0..n {
            let w = ivec![(rng.next() % 5) as i64 - 2, (rng.next() % 5) as i64 - 2];
            let m = 1 + rng.next() % full;
            if rng.next().is_multiple_of(3) {
                frontier.push((0u128, w.clone(), m));
            }
            if rng.next().is_multiple_of(2) {
                assigned.push((0u128, w.clone(), m));
            }
            known.push((w, m));
        }
        let incumbent = ivec![1 + (rng.next() % 3) as i64, (rng.next() % 3) as i64];
        let incumbent_cost = incumbent.try_norm_sq().unwrap_or(9) as u128;
        let snap = Snapshot {
            fingerprint: 42,
            dim: 2,
            incumbent_cost,
            incumbent,
            frontier,
            known,
            nodes_charged: 0,
            stats: SearchStats::default(),
            epoch: 0,
        };
        (snap, assigned)
    }

    fn assert_same_fixpoint(a: &MergeState, b: &MergeState) {
        assert_eq!(a.known, b.known, "PATHSET unions diverged");
        assert_eq!(a.covered, b.covered, "coverage evidence diverged");
        assert_eq!(a.checked, b.checked, "candidate checks diverged");
        assert_eq!(a.incumbent, b.incumbent, "incumbents diverged");
    }

    /// The fencing epochs' second line of defense: the merge fold is
    /// idempotent and order-insensitive, so a duplicate or superseded
    /// completion — even one that somehow slipped past every epoch
    /// check — leaves the merge fixpoint byte-identical, and with it the
    /// certified answer and its certificate hash.
    #[test]
    fn merge_fold_is_idempotent_under_duplicate_and_stale_completions() {
        let full = 0b111u64;
        for case in 0..50u64 {
            let mut rng = XorShift64::new(0xF3CE_D000 + case);
            let (prefix, _) = rand_unit(&mut rng, full);
            let units: Vec<UnitFixture> = (0..5).map(|_| rand_unit(&mut rng, full)).collect();

            // Once each, in order.
            let mut once = MergeState::seeded(&prefix, full);
            for (s, a) in &units {
                once.absorb_unit(s, a);
            }

            // Every completion delivered twice (a zombie double-report).
            let mut doubled = MergeState::seeded(&prefix, full);
            for (s, a) in &units {
                doubled.absorb_unit(s, a);
                doubled.absorb_unit(s, a);
            }
            assert_same_fixpoint(&once, &doubled);

            // Reversed order, then a stale re-delivery of an early
            // completion after everything else has merged.
            let mut reversed = MergeState::seeded(&prefix, full);
            for (s, a) in units.iter().rev() {
                reversed.absorb_unit(s, a);
            }
            let (s, a) = &units[rng.next() as usize % units.len()];
            reversed.absorb_unit(s, a);
            assert_same_fixpoint(&once, &reversed);
        }
    }

    /// A small problem finishes inside the local prefix and never ships
    /// a unit at all.
    #[test]
    fn tiny_problems_never_touch_the_wire() {
        let eps = endpoints(3); // nothing is listening here
        let mut mesh = MeshClient::new(&eps, MeshConfig::default()).unwrap();
        let req = PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
            objective: crate::proto::ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        };
        let resp = mesh.plan_distributed(&req).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        assert_eq!(mesh.stats().units_dispatched, 0);
    }
}
