//! The length-prefixed binary planning protocol.
//!
//! Every message travels as one self-checking frame. Version 1 frames:
//!
//! ```text
//! magic   b"UOVS"                      4 bytes
//! version u16 LE (= 1)                 2 bytes
//! kind    u8                           1 byte
//! len     u32 LE payload length        4 bytes   (≤ MAX_PAYLOAD)
//! payload len bytes
//! crc     u32 LE CRC-32 over           4 bytes
//!         magic ‖ version ‖ kind ‖ len ‖ payload
//! ```
//!
//! Version 2 frames carry a tenant id in the header, between `kind` and
//! `len`, for per-tenant admission control:
//!
//! ```text
//! magic   b"UOVS"                      4 bytes
//! version u16 LE (= 2)                 2 bytes
//! kind    u8                           1 byte
//! tenant  u32 LE tenant id             4 bytes
//! len     u32 LE payload length        4 bytes   (≤ MAX_PAYLOAD)
//! payload len bytes
//! crc     u32 LE CRC-32 over the whole header ‖ payload
//! ```
//!
//! Readers accept both versions; a version-1 frame is tenant 0 (the
//! anonymous tenant). The header is fixed-size per version and the
//! version field sits at a fixed offset, so a reader always knows how
//! much to pull before trusting anything; `len` is validated against
//! [`MAX_PAYLOAD`] *before* any allocation, so a hostile length prefix
//! cannot balloon memory. The CRC covers the header too — a bit flip
//! anywhere in the frame is detected. Encoding reuses the same
//! [`uov_core::wire`] primitives as the checkpoint format.

use std::io::{self, Read, Write};

use uov_core::search::Objective;
use uov_core::wire::{crc32, Decoder, Encoder};
use uov_isg::{IVec, RectDomain, Stencil};

use crate::error::{ErrorCode, ServiceError};

/// Frame magic: "UOV service".
pub const MAGIC: &[u8; 4] = b"UOVS";
/// Base protocol version: no tenant id in the header (tenant 0).
pub const VERSION: u16 = 1;
/// Tenant-tagged protocol version: the header carries a `u32` tenant id
/// between `kind` and `len`.
pub const VERSION_TENANT: u16 = 2;
/// Hard cap on a frame's payload. Generous for any realistic stencil
/// (a request of 1 MiB holds ~16k stencil vectors in 8 dimensions) and
/// small enough that a hostile length prefix cannot exhaust memory.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Bytes of the fixed version-1 frame header (magic, version, kind, len).
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;
/// Bytes of the version-2 frame header (magic, version, kind, tenant,
/// len).
pub const HEADER_LEN_TENANT: usize = 4 + 2 + 1 + 4 + 4;
/// Hard cap on entries in one `REQ_BATCH` frame. Small enough that a
/// hostile count cannot balloon per-entry bookkeeping, large enough for
/// any realistic compiler invocation (one entry per loop nest).
pub const MAX_BATCH_ENTRIES: u32 = 128;

/// Frame kinds. The numeric values are wire format; never reassign them.
pub mod kind {
    /// Client → server: plan this stencil.
    pub const REQ_PLAN: u8 = 1;
    /// Server → client: the plan.
    pub const RESP_PLAN: u8 = 2;
    /// Server → client: typed failure.
    pub const RESP_ERROR: u8 = 3;
    /// Client → server: drain and exit.
    pub const REQ_SHUTDOWN: u8 = 4;
    /// Server → client: shutdown acknowledged.
    pub const RESP_SHUTDOWN_ACK: u8 = 5;
    /// Client → server: liveness/readiness probe. Answered even during a
    /// drain, so orchestrators can watch a replica all the way down.
    pub const REQ_HEALTH: u8 = 6;
    /// Server → client: health report.
    pub const RESP_HEALTH: u8 = 7;
    /// Client → server: counter snapshot probe (also answered mid-drain).
    pub const REQ_STATS: u8 = 8;
    /// Server → client: server + cache counter snapshot.
    pub const RESP_STATS: u8 = 9;
    /// Coordinator → shard: run one search work unit — a `UOVCKPT1`
    /// snapshot carrying a slice of the PATHSET frontier.
    pub const REQ_WORKUNIT: u8 = 10;
    /// Shard → coordinator: the unit's final state, as `UOVCKPT1` bytes.
    pub const RESP_WORKUNIT: u8 = 11;
    /// Peer → replica: store a certified plan for a problem whose ring
    /// home is elsewhere, so a deterministic failover lands on a warm
    /// hit. The receiver re-certifies before inserting; degraded answers
    /// never travel in this frame.
    pub const REQ_REPLICATE: u8 = 12;
    /// Replica → peer: whether the replicated plan was stored.
    pub const RESP_REPLICATE: u8 = 13;
    /// Client → server: plan a whole batch of stencils in one round
    /// trip (N `(stencil, objective)` entries under a single CRC).
    pub const REQ_BATCH: u8 = 14;
    /// Server → client: per-entry statuses for a batch request.
    pub const RESP_BATCH: u8 = 15;
}

/// What the request wants minimised — an owned mirror of
/// [`uov_core::search::Objective`], which borrows its domain and so
/// cannot cross a serialization boundary itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ObjectiveSpec {
    /// Minimise the squared Euclidean length of the UOV.
    ShortestVector,
    /// Minimise storage classes over a concrete rectangular domain.
    KnownBounds(RectDomain),
}

impl ObjectiveSpec {
    /// Borrow as the core search objective.
    pub fn as_objective(&self) -> Objective<'_> {
        match self {
            ObjectiveSpec::ShortestVector => Objective::ShortestVector,
            ObjectiveSpec::KnownBounds(d) => Objective::KnownBounds(d),
        }
    }
}

/// Request flags bitfield: skip the plan cache entirely (always solve
/// fresh, never read or write a cached entry). Used by differential
/// tests and benchmarks to obtain cold-solve references.
pub const FLAG_NO_CACHE: u32 = 1;

/// A planning request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// The statement's flow-dependence stencil.
    pub stencil: Stencil,
    /// What to minimise.
    pub objective: ObjectiveSpec,
    /// Per-request budget deadline in milliseconds; `0` means unlimited.
    /// When the deadline expires mid-search the server degrades to the
    /// best legal UOV found (at worst `Σvᵢ`) instead of erroring.
    pub deadline_ms: u32,
    /// Bitfield of `FLAG_*` values.
    pub flags: u32,
}

/// How the cache served a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A fresh branch-and-bound search ran for this request.
    Miss,
    /// Served from the canonicalizing plan cache.
    Hit,
    /// Deduplicated onto a concurrent identical request's search.
    Coalesced,
}

impl CacheOutcome {
    fn to_u8(self) -> u8 {
        match self {
            CacheOutcome::Miss => 0,
            CacheOutcome::Hit => 1,
            CacheOutcome::Coalesced => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(CacheOutcome::Miss),
            1 => Some(CacheOutcome::Hit),
            2 => Some(CacheOutcome::Coalesced),
            _ => None,
        }
    }
}

/// Why a response is degraded (budget-cut), if it is. Mirrors
/// [`uov_core::budget::Exhausted`] on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationCode {
    /// The search ran to completion; the answer is optimal.
    None,
    /// The wall-clock deadline passed.
    Deadline,
    /// The node cap was reached.
    Nodes,
    /// The memo cap was reached.
    Memo,
    /// The request was cancelled.
    Cancelled,
    /// The server was under load pressure and served the always-legal
    /// `Σvᵢ` fast path instead of running a full search. The answer is
    /// certified and legal, possibly not optimal, and is never cached.
    Pressure,
}

impl DegradationCode {
    fn to_u8(self) -> u8 {
        match self {
            DegradationCode::None => 0,
            DegradationCode::Deadline => 1,
            DegradationCode::Nodes => 2,
            DegradationCode::Memo => 3,
            DegradationCode::Cancelled => 4,
            DegradationCode::Pressure => 5,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(DegradationCode::None),
            1 => Some(DegradationCode::Deadline),
            2 => Some(DegradationCode::Nodes),
            3 => Some(DegradationCode::Memo),
            4 => Some(DegradationCode::Cancelled),
            5 => Some(DegradationCode::Pressure),
            _ => None,
        }
    }

    /// Convert from the core budget's exhaustion reason.
    pub fn from_exhausted(e: Option<uov_core::budget::Exhausted>) -> Self {
        use uov_core::budget::Exhausted;
        match e {
            None => DegradationCode::None,
            Some(Exhausted::Deadline) => DegradationCode::Deadline,
            Some(Exhausted::Nodes) => DegradationCode::Nodes,
            Some(Exhausted::Memo) => DegradationCode::Memo,
            Some(Exhausted::Cancelled) => DegradationCode::Cancelled,
        }
    }
}

/// A planning response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanResponse {
    /// The universal occupancy vector.
    pub uov: IVec,
    /// Its objective value.
    pub cost: u128,
    /// Transcript hash of the server-side certificate: the client can
    /// compare it against a local [`uov_core::certify::certify`] run to
    /// confirm it received the same certified answer a cold solve yields.
    pub certificate_hash: u64,
    /// Whether (and why) the answer is budget-degraded.
    pub degradation: DegradationCode,
    /// How the plan cache served this request.
    pub cache: CacheOutcome,
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// What class of failure.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub msg: String,
}

/// A liveness/readiness report (the frame body of a `RESP_HEALTH`).
///
/// Liveness is implied by the answer arriving at all; `ready` is the
/// admission signal: the worker pool is up and the connection queue is
/// below its high-water mark, so a new request is likely to be served
/// rather than shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthResponse {
    /// Whether the replica should receive new traffic.
    pub ready: bool,
    /// Whether a graceful drain has begun.
    pub draining: bool,
    /// Worker threads currently alive.
    pub workers_alive: u32,
    /// Connections waiting in the bounded queue.
    pub queue_len: u32,
    /// The queue's capacity (its high-water mark).
    pub queue_depth: u32,
}

impl HealthResponse {
    /// Serialize the health payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(16);
        e.u8(u8::from(self.ready));
        e.u8(u8::from(self.draining));
        e.u32(self.workers_alive);
        e.u32(self.queue_len);
        e.u32(self.queue_depth);
        e.buf
    }

    /// Decode a `RESP_HEALTH` payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on non-boolean flags or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let ready = match d.u8()? {
            0 => false,
            1 => true,
            v => return Err(ServiceError::Malformed(format!("bad ready flag {v}"))),
        };
        let draining = match d.u8()? {
            0 => false,
            1 => true,
            v => return Err(ServiceError::Malformed(format!("bad draining flag {v}"))),
        };
        let workers_alive = d.u32()?;
        let queue_len = d.u32()?;
        let queue_depth = d.u32()?;
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed("trailing bytes in health".into()));
        }
        Ok(HealthResponse {
            ready,
            draining,
            workers_alive,
            queue_len,
            queue_depth,
        })
    }
}

/// A counter snapshot (the frame body of a `RESP_STATS`): the server's
/// traffic and fault counters plus the plan cache's counters, so chaos
/// tests can assert on *server-observed* fault counts instead of
/// inferring them from client-side behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResponse {
    /// The server's monotone traffic/fault counters.
    pub server: crate::server::ServerStats,
    /// The plan cache's monotone counters.
    pub cache: crate::plan_cache::CacheStats,
    /// Best-effort incumbent-bound gossip piggybacked on the stats frame.
    pub bound: Option<BoundGossip>,
    /// Per-tenant in-flight gauges (tenants with at least one admitted
    /// request currently queued or running), sorted by tenant id so the
    /// encoding is deterministic.
    pub tenants: Vec<TenantGauge>,
}

/// One tenant's instantaneous in-flight gauge, carried on stats frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantGauge {
    /// The tenant id from the frame header.
    pub tenant: u32,
    /// Requests admitted for this tenant that have not yet been answered
    /// (queued in the compute pool or running).
    pub inflight: u64,
}

/// An incumbent bound a replica is willing to share: the canonical
/// fingerprint of the problem it most recently improved and the cost of
/// the best *genuine* UOV it holds for that problem. Soundness does not
/// depend on freshness — a stale bound is merely higher than the current
/// best, which only weakens pruning, never changes an answer (pruning is
/// strict, so ties at the bound always survive to the canonical
/// tie-break).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundGossip {
    /// `uov_core::fingerprint` of the `(stencil, objective)` the bound is
    /// for. A bound is only usable against the identical fingerprint.
    pub fingerprint: u64,
    /// The UOV's cost, saturated to `u64`. `u64::MAX` (unrepresentable)
    /// never travels — it is mapped to "no gossip" at encode time.
    pub cost: u64,
}

impl StatsResponse {
    /// Serialize the stats payload. Fields travel as a count-prefixed
    /// list of `u64`s in declaration order, so an older client can read
    /// the counters it knows and skip the rest. The gossip rides as
    /// fields 20–21 (fingerprint, cost); a zero fingerprint means "no
    /// gossip", which an older decoder reading zeros gets for free. The
    /// replication/fencing counters ride after it, the overload counters
    /// (shed/degraded/batch/idle) as fields 26–29, field 30 is the count
    /// of per-tenant gauge *pairs*, and each gauge rides as two trailing
    /// `u64`s `(tenant, inflight)` — all skipped by older decoders as
    /// unknown trailing fields.
    pub fn encode(&self) -> Vec<u8> {
        let s = &self.server;
        let c = &self.cache;
        let (gossip_fp, gossip_cost) = match self.bound {
            Some(b) if b.fingerprint != 0 && b.cost != u64::MAX => (b.fingerprint, b.cost),
            _ => (0, 0),
        };
        let fields = [
            s.connections,
            s.rejected_overloaded,
            s.requests,
            s.responses,
            s.protocol_errors,
            s.rejected_shutdown,
            s.panics,
            s.crc_failures,
            s.bad_magic,
            s.bad_version,
            s.oversized_frames,
            s.watchdog_cancels,
            s.worker_restarts,
            c.hits,
            c.misses,
            c.coalesced,
            c.warm_loaded,
            s.workunits,
            s.warm_load_corrupt,
            s.warm_load_version,
            gossip_fp,
            gossip_cost,
            c.replicated_entries,
            c.replica_hits,
            s.stale_epoch_rejections,
            s.anti_entropy_repairs,
            s.shed_over_quota,
            s.degraded_under_pressure,
            s.batch_frames,
            s.idle_timeouts,
            self.tenants.len() as u64,
        ];
        let total = fields.len() + 2 * self.tenants.len();
        let mut e = Encoder::with_capacity(4 + 8 * total);
        e.u32(total as u32);
        for v in fields {
            e.u64(v);
        }
        for g in &self.tenants {
            e.u64(u64::from(g.tenant));
            e.u64(g.inflight);
        }
        e.buf
    }

    /// Decode a `RESP_STATS` payload. Unknown trailing counters from a
    /// newer server are tolerated; missing counters read as zero.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation,
    /// [`ServiceError::Malformed`] when the declared count exceeds the
    /// payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let n = d.u32()? as usize;
        let need = n
            .checked_mul(8)
            .ok_or_else(|| ServiceError::Malformed("counter count overflows".into()))?;
        if need > d.remaining() {
            return Err(ServiceError::Malformed(
                "declared counters exceed the payload".into(),
            ));
        }
        let mut fields = [0u64; 31];
        for (i, slot) in fields.iter_mut().enumerate() {
            if i < n {
                *slot = d.u64()?;
            }
        }
        let mut consumed = n.min(fields.len());
        // Per-tenant gauge pairs follow the scalar counters; the pair
        // count travels as field 30 and is implicitly bounded by the
        // declared total (itself validated against the payload above).
        let mut tenants = Vec::new();
        for _ in 0..fields[30] {
            if consumed + 2 > n {
                break;
            }
            let tenant = u32::try_from(d.u64()?).unwrap_or(u32::MAX);
            let inflight = d.u64()?;
            consumed += 2;
            tenants.push(TenantGauge { tenant, inflight });
        }
        // Skip counters this build does not know about.
        for _ in consumed..n {
            let _ = d.u64()?;
        }
        let bound = if fields[20] != 0 && fields[21] != u64::MAX {
            Some(BoundGossip {
                fingerprint: fields[20],
                cost: fields[21],
            })
        } else {
            None
        };
        Ok(StatsResponse {
            server: crate::server::ServerStats {
                connections: fields[0],
                rejected_overloaded: fields[1],
                requests: fields[2],
                responses: fields[3],
                protocol_errors: fields[4],
                rejected_shutdown: fields[5],
                panics: fields[6],
                crc_failures: fields[7],
                bad_magic: fields[8],
                bad_version: fields[9],
                oversized_frames: fields[10],
                watchdog_cancels: fields[11],
                worker_restarts: fields[12],
                workunits: fields[17],
                warm_load_corrupt: fields[18],
                warm_load_version: fields[19],
                stale_epoch_rejections: fields[24],
                anti_entropy_repairs: fields[25],
                shed_over_quota: fields[26],
                degraded_under_pressure: fields[27],
                batch_frames: fields[28],
                idle_timeouts: fields[29],
            },
            cache: crate::plan_cache::CacheStats {
                hits: fields[13],
                misses: fields[14],
                coalesced: fields[15],
                warm_loaded: fields[16],
                replicated_entries: fields[22],
                replica_hits: fields[23],
            },
            bound,
            tenants,
        })
    }
}

// ---------------------------------------------------------------- frames

/// Encode one version-1 frame (anonymous tenant): header, payload,
/// trailing CRC.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::with_capacity(HEADER_LEN + payload.len() + 4);
    e.buf.extend_from_slice(MAGIC);
    e.u16(VERSION);
    e.u8(kind);
    e.u32(payload.len() as u32);
    e.buf.extend_from_slice(payload);
    let crc = crc32(&e.buf);
    e.u32(crc);
    e.buf
}

/// Encode one version-2 frame carrying a tenant id in the header.
pub fn encode_frame_tenant(kind: u8, tenant: u32, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::with_capacity(HEADER_LEN_TENANT + payload.len() + 4);
    e.buf.extend_from_slice(MAGIC);
    e.u16(VERSION_TENANT);
    e.u8(kind);
    e.u32(tenant);
    e.u32(payload.len() as u32);
    e.buf.extend_from_slice(payload);
    let crc = crc32(&e.buf);
    e.u32(crc);
    e.buf
}

/// Write one version-1 frame to a stream.
///
/// # Errors
///
/// [`ServiceError::Io`] on any socket failure.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), ServiceError> {
    let frame = encode_frame(kind, payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Write one frame, as version 1 for tenant 0 (byte-identical to the
/// pre-tenant protocol) and version 2 otherwise.
///
/// # Errors
///
/// [`ServiceError::Io`] on any socket failure.
pub fn write_frame_tenant(
    w: &mut impl Write,
    kind: u8,
    tenant: u32,
    payload: &[u8],
) -> Result<(), ServiceError> {
    let frame = if tenant == 0 {
        encode_frame(kind, payload)
    } else {
        encode_frame_tenant(kind, tenant, payload)
    };
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from a stream.
///
/// Returns `Ok(None)` when the peer closes cleanly at a frame boundary
/// (EOF before any header byte). A close mid-frame is
/// [`ServiceError::ConnectionClosed`]. The declared payload length is
/// checked against [`MAX_PAYLOAD`] *before* the payload buffer is
/// allocated.
///
/// # Errors
///
/// The protocol taxonomy: [`ServiceError::BadMagic`],
/// [`ServiceError::UnsupportedVersion`], [`ServiceError::FrameTooLarge`],
/// [`ServiceError::CrcMismatch`], [`ServiceError::ConnectionClosed`], or
/// [`ServiceError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
    Ok(read_frame_tenant(r)?.map(|(kind, _tenant, payload)| (kind, payload)))
}

/// Read one frame from a stream, accepting both protocol versions and
/// surfacing the tenant id (0 for version-1 frames). Otherwise identical
/// to [`read_frame`].
///
/// # Errors
///
/// The protocol taxonomy of [`read_frame`].
pub fn read_frame_tenant(r: &mut impl Read) -> Result<Option<(u8, u32, Vec<u8>)>, ServiceError> {
    // Magic ‖ version ‖ kind first: the version decides the header size.
    let mut prefix = [0u8; 7];
    // First byte separately: EOF here is a clean close, not an error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServiceError::Io(e)),
        }
    }
    prefix[0] = first[0];
    read_exact_or_closed(r, &mut prefix[1..])?;

    if &prefix[..4] != MAGIC {
        return Err(ServiceError::BadMagic);
    }
    let version = u16::from_le_bytes([prefix[4], prefix[5]]);
    let kind = prefix[6];
    let rest_len = match version {
        VERSION => 4,
        VERSION_TENANT => 8,
        other => return Err(ServiceError::UnsupportedVersion(other)),
    };
    let mut rest = [0u8; 8];
    read_exact_or_closed(r, &mut rest[..rest_len])?;
    let (tenant, len) = if version == VERSION {
        (0, u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]))
    } else {
        (
            u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]),
            u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]),
        )
    };
    if len > MAX_PAYLOAD {
        return Err(ServiceError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_closed(r, &mut payload)?;
    let mut crc_bytes = [0u8; 4];
    read_exact_or_closed(r, &mut crc_bytes)?;
    let declared = u32::from_le_bytes(crc_bytes);

    let mut h = Encoder::with_capacity(prefix.len() + rest_len + payload.len());
    h.buf.extend_from_slice(&prefix);
    h.buf.extend_from_slice(&rest[..rest_len]);
    h.buf.extend_from_slice(&payload);
    if crc32(&h.buf) != declared {
        return Err(ServiceError::CrcMismatch);
    }
    Ok(Some((kind, tenant, payload)))
}

/// `read_exact` mapping an EOF mid-structure to `ConnectionClosed` — the
/// half-open / torn-frame signal — and passing timeouts through as `Io`.
fn read_exact_or_closed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ServiceError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(ServiceError::ConnectionClosed),
        Err(e) => Err(ServiceError::Io(e)),
    }
}

// --------------------------------------------------------------- payloads

/// Encode the `(stencil, objective)` problem prefix shared by `REQ_PLAN`
/// and `REQ_WORKUNIT`. Byte-identical to the original `REQ_PLAN` layout.
fn encode_problem(e: &mut Encoder, stencil: &Stencil, objective: &ObjectiveSpec) {
    e.u16(stencil.dim() as u16);
    e.u32(stencil.len() as u32);
    for v in stencil.iter() {
        e.vec(v);
    }
    match objective {
        ObjectiveSpec::ShortestVector => e.u8(0),
        ObjectiveSpec::KnownBounds(d) => {
            e.u8(1);
            e.vec(d.lo());
            e.vec(d.hi());
        }
    }
}

/// Decode the problem prefix, validating every structural and semantic
/// invariant (dimensions, lex-positivity via [`Stencil::new`], non-empty
/// domains) with hostile-count guards before any allocation.
fn decode_problem(d: &mut Decoder<'_>) -> Result<(Stencil, ObjectiveSpec), ServiceError> {
    let dim = usize::from(d.u16()?);
    if dim == 0 {
        return Err(ServiceError::Malformed("zero-dimensional stencil".into()));
    }
    let nvec = d.u32()? as usize;
    // Reject a hostile vector count before allocating for it.
    let need = nvec
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| ServiceError::Malformed("vector count overflows".into()))?;
    if need > d.remaining() {
        return Err(ServiceError::Malformed(
            "declared vectors exceed the payload".into(),
        ));
    }
    let mut vectors = Vec::with_capacity(nvec);
    for _ in 0..nvec {
        vectors.push(d.vec(dim)?);
    }
    let stencil = Stencil::new(vectors)
        .map_err(|e| ServiceError::Malformed(format!("invalid stencil: {e}")))?;
    if stencil.dim() != dim {
        return Err(ServiceError::Malformed("stencil dimension mismatch".into()));
    }
    let objective = match d.u8()? {
        0 => ObjectiveSpec::ShortestVector,
        1 => {
            let lo = d.vec(dim)?;
            let hi = d.vec(dim)?;
            for k in 0..dim {
                if lo[k] > hi[k] {
                    return Err(ServiceError::Malformed(format!(
                        "empty domain: lo[{k}] > hi[{k}]"
                    )));
                }
            }
            ObjectiveSpec::KnownBounds(RectDomain::new(lo, hi))
        }
        other => {
            return Err(ServiceError::Malformed(format!(
                "unknown objective tag {other}"
            )))
        }
    };
    Ok((stencil, objective))
}

impl PlanRequest {
    /// Serialize the request payload (the frame body of a `REQ_PLAN`).
    pub fn encode(&self) -> Vec<u8> {
        let dim = self.stencil.dim();
        let mut e = Encoder::with_capacity(16 + 8 * dim * (self.stencil.len() + 2));
        encode_problem(&mut e, &self.stencil, &self.objective);
        e.u32(self.deadline_ms);
        e.u32(self.flags);
        e.buf
    }

    /// Decode a `REQ_PLAN` payload, validating every structural and
    /// semantic invariant (dimensions, lex-positivity via
    /// [`Stencil::new`], non-empty domains).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on any semantic violation.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let (stencil, objective) = decode_problem(&mut d)?;
        let deadline_ms = d.u32()?;
        let flags = d.u32()?;
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed("trailing bytes in request".into()));
        }
        Ok(PlanRequest {
            stencil,
            objective,
            deadline_ms,
            flags,
        })
    }
}

/// One distributed-search work unit (the frame body of a `REQ_WORKUNIT`):
/// the problem, a per-unit budget, an optional incumbent-bound hint, and
/// a slice of the coordinator's search state shipped **verbatim** in the
/// crash-safe `UOVCKPT1` snapshot format of [`uov_core::checkpoint`] —
/// the same bytes a disk checkpoint would hold, so a shard validates and
/// resumes it exactly like a file-based resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnitRequest {
    /// The problem's flow-dependence stencil.
    pub stencil: Stencil,
    /// What to minimise.
    pub objective: ObjectiveSpec,
    /// Per-unit wall-clock budget in milliseconds; `0` means unlimited.
    /// An expired unit returns its partial state (non-empty frontier)
    /// rather than erroring — the coordinator re-dispatches the leftovers.
    pub deadline_ms: u32,
    /// Per-unit node budget; `0` means unlimited.
    pub node_budget: u64,
    /// Optional incumbent-cost hint for pruning
    /// ([`uov_core::search::SearchConfig::bound_hint`]). Sound iff it is
    /// the cost of a genuine UOV for this problem; a stale (high) hint
    /// only weakens pruning.
    pub bound_hint: Option<u128>,
    /// The unit's starting state as `UOVCKPT1` snapshot bytes.
    pub snapshot: Vec<u8>,
}

impl WorkUnitRequest {
    /// Serialize the work-unit payload.
    pub fn encode(&self) -> Vec<u8> {
        let dim = self.stencil.dim();
        let mut e =
            Encoder::with_capacity(48 + 8 * dim * (self.stencil.len() + 2) + self.snapshot.len());
        encode_problem(&mut e, &self.stencil, &self.objective);
        e.u32(self.deadline_ms);
        e.u64(self.node_budget);
        match self.bound_hint {
            None => e.u8(0),
            Some(h) => {
                e.u8(1);
                e.u128(h);
            }
        }
        e.u32(self.snapshot.len() as u32);
        e.buf.extend_from_slice(&self.snapshot);
        e.buf
    }

    /// Decode a `REQ_WORKUNIT` payload. The snapshot bytes are
    /// length-checked here but *not* parsed — structural validation
    /// happens in the search layer's resume path, exactly as for a disk
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on any semantic violation or hostile length.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let (stencil, objective) = decode_problem(&mut d)?;
        let deadline_ms = d.u32()?;
        let node_budget = d.u64()?;
        let bound_hint = match d.u8()? {
            0 => None,
            1 => Some(d.u128()?),
            v => {
                return Err(ServiceError::Malformed(format!(
                    "unknown bound-hint flag {v}"
                )))
            }
        };
        let snap_len = d.u32()? as usize;
        if snap_len > d.remaining() {
            return Err(ServiceError::Malformed(
                "declared snapshot exceeds the payload".into(),
            ));
        }
        let snapshot = d.take(snap_len)?.to_vec();
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed(
                "trailing bytes in work unit".into(),
            ));
        }
        Ok(WorkUnitRequest {
            stencil,
            objective,
            deadline_ms,
            node_budget,
            bound_hint,
            snapshot,
        })
    }
}

/// A shard's answer to a work unit (the frame body of a `RESP_WORKUNIT`):
/// the unit's final search state in `UOVCKPT1` bytes — incumbent, PATHSET
/// table and leftover frontier — plus why (if at all) it stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnitResponse {
    /// Whether (and why) the unit was cut short. `None` means it ran its
    /// slice to exhaustion (empty frontier in the snapshot).
    pub degradation: DegradationCode,
    /// The final state as `UOVCKPT1` snapshot bytes.
    pub snapshot: Vec<u8>,
}

impl WorkUnitResponse {
    /// Serialize the work-unit response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(8 + self.snapshot.len());
        e.u8(self.degradation.to_u8());
        e.u32(self.snapshot.len() as u32);
        e.buf.extend_from_slice(&self.snapshot);
        e.buf
    }

    /// Decode a `RESP_WORKUNIT` payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on unknown codes, hostile lengths, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let degradation = DegradationCode::from_u8(d.u8()?)
            .ok_or_else(|| ServiceError::Malformed("unknown degradation code".into()))?;
        let snap_len = d.u32()? as usize;
        if snap_len > d.remaining() {
            return Err(ServiceError::Malformed(
                "declared snapshot exceeds the payload".into(),
            ));
        }
        let snapshot = d.take(snap_len)?.to_vec();
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed(
                "trailing bytes in work-unit response".into(),
            ));
        }
        Ok(WorkUnitResponse {
            degradation,
            snapshot,
        })
    }
}

/// A neighbor-replication push (the frame body of a `REQ_REPLICATE`):
/// the problem in the *sender's* coordinates plus the certified optimal
/// answer. The receiver canonicalizes, re-derives the canonical lex-min
/// answer, re-certifies, and only then inserts — a hostile or damaged
/// push can cost it a search, never a wrong cached plan. Degraded
/// answers are never replicated (the plan cache refuses them anyway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateRequest {
    /// The problem's flow-dependence stencil.
    pub stencil: Stencil,
    /// What to minimise.
    pub objective: ObjectiveSpec,
    /// The certified optimal UOV, in the sender's coordinates.
    pub uov: IVec,
    /// Its objective value.
    pub cost: u128,
    /// Whether this push is an anti-entropy repair (a re-push after the
    /// sender observed the replica restart) rather than a first-time
    /// replication. Changes accounting only, never semantics.
    pub repair: bool,
}

impl ReplicateRequest {
    /// Serialize the replication payload.
    pub fn encode(&self) -> Vec<u8> {
        let dim = self.stencil.dim();
        let mut e = Encoder::with_capacity(32 + 8 * dim * (self.stencil.len() + 3));
        encode_problem(&mut e, &self.stencil, &self.objective);
        e.vec(&self.uov);
        e.u128(self.cost);
        e.u8(u8::from(self.repair));
        e.buf
    }

    /// Decode a `REQ_REPLICATE` payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on any semantic violation or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let (stencil, objective) = decode_problem(&mut d)?;
        let uov = d.vec(stencil.dim())?;
        let cost = d.u128()?;
        let repair = match d.u8()? {
            0 => false,
            1 => true,
            v => return Err(ServiceError::Malformed(format!("bad repair flag {v}"))),
        };
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed(
                "trailing bytes in replication".into(),
            ));
        }
        Ok(ReplicateRequest {
            stencil,
            objective,
            uov,
            cost,
            repair,
        })
    }
}

/// A replica's answer to a replication push (the frame body of a
/// `RESP_REPLICATE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicateResponse {
    /// Whether the entry passed re-certification and was stored. `false`
    /// is not an error: the replica may refuse (repair-enumeration limit,
    /// failed verification) and simply stay cold for this problem.
    pub stored: bool,
}

impl ReplicateResponse {
    /// Serialize the replication-response payload.
    pub fn encode(&self) -> Vec<u8> {
        vec![u8::from(self.stored)]
    }

    /// Decode a `RESP_REPLICATE` payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on a non-boolean flag or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let stored = match d.u8()? {
            0 => false,
            1 => true,
            v => return Err(ServiceError::Malformed(format!("bad stored flag {v}"))),
        };
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed(
                "trailing bytes in replication response".into(),
            ));
        }
        Ok(ReplicateResponse { stored })
    }
}

impl PlanResponse {
    /// Serialize the response payload (the frame body of a `RESP_PLAN`).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(32 + 8 * self.uov.dim());
        e.u8(self.cache.to_u8());
        e.u8(self.degradation.to_u8());
        e.u16(self.uov.dim() as u16);
        e.vec(&self.uov);
        e.u128(self.cost);
        e.u64(self.certificate_hash);
        e.buf
    }

    /// Decode a `RESP_PLAN` payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on unknown enum values or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let cache = CacheOutcome::from_u8(d.u8()?)
            .ok_or_else(|| ServiceError::Malformed("unknown cache outcome".into()))?;
        let degradation = DegradationCode::from_u8(d.u8()?)
            .ok_or_else(|| ServiceError::Malformed("unknown degradation code".into()))?;
        let dim = usize::from(d.u16()?);
        if dim == 0 {
            return Err(ServiceError::Malformed("zero-dimensional UOV".into()));
        }
        let uov = d.vec(dim)?;
        let cost = d.u128()?;
        let certificate_hash = d.u64()?;
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed("trailing bytes in response".into()));
        }
        Ok(PlanResponse {
            uov,
            cost,
            certificate_hash,
            degradation,
            cache,
        })
    }
}

impl ErrorResponse {
    /// Serialize the error payload (the frame body of a `RESP_ERROR`).
    pub fn encode(&self) -> Vec<u8> {
        let bytes = self.msg.as_bytes();
        let mut e = Encoder::with_capacity(8 + bytes.len());
        e.u8(self.code.to_u8());
        e.u32(bytes.len() as u32);
        e.buf.extend_from_slice(bytes);
        e.buf
    }

    /// Decode a `RESP_ERROR` payload.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on unknown codes or invalid UTF-8.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let code = ErrorCode::from_u8(d.u8()?)
            .ok_or_else(|| ServiceError::Malformed("unknown error code".into()))?;
        let len = d.u32()? as usize;
        if len > d.remaining() {
            return Err(ServiceError::Malformed(
                "declared message exceeds the payload".into(),
            ));
        }
        let msg = String::from_utf8(d.take(len)?.to_vec())
            .map_err(|_| ServiceError::Malformed("error message is not UTF-8".into()))?;
        Ok(ErrorResponse { code, msg })
    }
}

/// A multi-plan batch request (the frame body of a `REQ_BATCH`): N
/// independent `(stencil, objective)` entries under one header and one
/// CRC — one round trip per loop-nest *program* instead of per nest.
/// Each entry is a full [`PlanRequest`], length-prefixed so a decoder
/// can validate entry boundaries before parsing entry contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// The entries, answered position-for-position in `RESP_BATCH`.
    pub entries: Vec<PlanRequest>,
}

impl BatchRequest {
    /// Serialize the batch payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(8 + 64 * self.entries.len());
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            let bytes = entry.encode();
            e.u32(bytes.len() as u32);
            e.buf.extend_from_slice(&bytes);
        }
        e.buf
    }

    /// Decode a `REQ_BATCH` payload. The entry count is validated against
    /// [`MAX_BATCH_ENTRIES`] and each declared entry length against the
    /// remaining payload *before* any entry is parsed, so a hostile count
    /// or length cannot balloon memory.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on an empty or oversized batch, hostile lengths, any invalid
    /// entry, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let count = d.u32()?;
        if count == 0 {
            return Err(ServiceError::Malformed("empty batch".into()));
        }
        if count > MAX_BATCH_ENTRIES {
            return Err(ServiceError::Malformed(format!(
                "batch of {count} entries exceeds the {MAX_BATCH_ENTRIES}-entry limit"
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..count {
            let len = d.u32()? as usize;
            if len > d.remaining() {
                return Err(ServiceError::Malformed(format!(
                    "batch entry {i} declares {len} bytes beyond the payload"
                )));
            }
            let bytes = d.take(len)?;
            entries.push(
                PlanRequest::decode(bytes)
                    .map_err(|e| ServiceError::Malformed(format!("batch entry {i}: {e}")))?,
            );
        }
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed("trailing bytes in batch".into()));
        }
        Ok(BatchRequest { entries })
    }
}

/// A batch response (the frame body of a `RESP_BATCH`): one status per
/// request entry, position-for-position — a plan or a typed error, so
/// one malformed or shed entry never poisons its siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResponse {
    /// Per-entry outcomes, in request order.
    pub entries: Vec<Result<PlanResponse, ErrorResponse>>,
}

impl BatchResponse {
    /// Serialize the batch-response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(8 + 64 * self.entries.len());
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            let (tag, bytes) = match entry {
                Ok(plan) => (0u8, plan.encode()),
                Err(err) => (1u8, err.encode()),
            };
            e.u8(tag);
            e.u32(bytes.len() as u32);
            e.buf.extend_from_slice(&bytes);
        }
        e.buf
    }

    /// Decode a `RESP_BATCH` payload with the same hostile-length guards
    /// as [`BatchRequest::decode`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on truncation, [`ServiceError::Malformed`]
    /// on unknown tags, hostile counts or lengths, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ServiceError> {
        let mut d = Decoder::new(payload);
        let count = d.u32()?;
        if count > MAX_BATCH_ENTRIES {
            return Err(ServiceError::Malformed(format!(
                "batch response of {count} entries exceeds the {MAX_BATCH_ENTRIES}-entry limit"
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..count {
            let tag = d.u8()?;
            let len = d.u32()? as usize;
            if len > d.remaining() {
                return Err(ServiceError::Malformed(format!(
                    "batch response entry {i} declares {len} bytes beyond the payload"
                )));
            }
            let bytes = d.take(len)?;
            entries.push(match tag {
                0 => Ok(PlanResponse::decode(bytes)?),
                1 => Err(ErrorResponse::decode(bytes)?),
                other => {
                    return Err(ServiceError::Malformed(format!(
                        "unknown batch entry tag {other}"
                    )))
                }
            });
        }
        if d.remaining() != 0 {
            return Err(ServiceError::Malformed(
                "trailing bytes in batch response".into(),
            ));
        }
        Ok(BatchResponse { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    fn fig1_request() -> PlanRequest {
        PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
            objective: ObjectiveSpec::KnownBounds(RectDomain::grid(8, 8)),
            deadline_ms: 250,
            flags: 0,
        }
    }

    #[test]
    fn request_round_trips() {
        let req = fig1_request();
        let back = PlanRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        let short = PlanRequest {
            objective: ObjectiveSpec::ShortestVector,
            ..req
        };
        assert_eq!(PlanRequest::decode(&short.encode()).unwrap(), short);
    }

    #[test]
    fn response_round_trips() {
        let resp = PlanResponse {
            uov: ivec![1, 1],
            cost: 9,
            certificate_hash: 0xDEAD_BEEF,
            degradation: DegradationCode::Deadline,
            cache: CacheOutcome::Coalesced,
        };
        assert_eq!(PlanResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn error_round_trips() {
        let err = ErrorResponse {
            code: ErrorCode::Overloaded,
            msg: "queue full".into(),
        };
        assert_eq!(ErrorResponse::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn health_round_trips() {
        let h = HealthResponse {
            ready: true,
            draining: false,
            workers_alive: 4,
            queue_len: 3,
            queue_depth: 64,
        };
        assert_eq!(HealthResponse::decode(&h.encode()).unwrap(), h);
        let mut bad = h.encode();
        bad[0] = 7;
        assert!(matches!(
            HealthResponse::decode(&bad),
            Err(ServiceError::Malformed(_))
        ));
    }

    #[test]
    fn stats_round_trip_and_tolerate_extra_counters() {
        let s = StatsResponse {
            server: crate::server::ServerStats {
                connections: 1,
                rejected_overloaded: 2,
                requests: 3,
                responses: 4,
                protocol_errors: 5,
                rejected_shutdown: 6,
                panics: 7,
                crc_failures: 8,
                bad_magic: 9,
                bad_version: 10,
                oversized_frames: 11,
                watchdog_cancels: 12,
                worker_restarts: 13,
                workunits: 18,
                warm_load_corrupt: 19,
                warm_load_version: 20,
                stale_epoch_rejections: 25,
                anti_entropy_repairs: 26,
                shed_over_quota: 27,
                degraded_under_pressure: 28,
                batch_frames: 29,
                idle_timeouts: 30,
            },
            cache: crate::plan_cache::CacheStats {
                hits: 14,
                misses: 15,
                coalesced: 16,
                warm_loaded: 17,
                replicated_entries: 23,
                replica_hits: 24,
            },
            bound: Some(BoundGossip {
                fingerprint: 0xFEED_F00D,
                cost: 42,
            }),
            tenants: vec![
                TenantGauge {
                    tenant: 7,
                    inflight: 3,
                },
                TenantGauge {
                    tenant: 42,
                    inflight: 1,
                },
            ],
        };
        assert_eq!(StatsResponse::decode(&s.encode()).unwrap(), s);
        // A future server appending a counter must not break this build.
        let mut extended = s.encode();
        let declared = u32::from_le_bytes(extended[0..4].try_into().unwrap());
        extended[0..4].copy_from_slice(&(declared + 1).to_le_bytes());
        extended.extend_from_slice(&99u64.to_le_bytes());
        assert_eq!(StatsResponse::decode(&extended).unwrap(), s);
        // A hostile count is rejected before any allocation.
        let mut hostile = s.encode();
        hostile[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            StatsResponse::decode(&hostile),
            Err(ServiceError::Malformed(_))
        ));
        // No gossip travels as zeros, which an old decoder reads as none.
        let none = StatsResponse {
            bound: None,
            ..s.clone()
        };
        assert_eq!(StatsResponse::decode(&none.encode()).unwrap().bound, None);
        // An older (17-field) frame decodes with zeroed new counters.
        let mut old = s.encode();
        old.truncate(4 + 8 * 17);
        old[0..4].copy_from_slice(&17u32.to_le_bytes());
        let decoded = StatsResponse::decode(&old).unwrap();
        assert_eq!(decoded.server.workunits, 0);
        assert_eq!(decoded.bound, None);
        assert_eq!(decoded.cache.warm_loaded, 17);
        assert_eq!(decoded.cache.replicated_entries, 0);
        assert_eq!(decoded.server.stale_epoch_rejections, 0);
        assert_eq!(decoded.server.shed_over_quota, 0);
        assert_eq!(decoded.tenants, Vec::new());
        // A 26-field (pre-overload) frame zeroes the new counters too.
        let mut pre = s.encode();
        pre.truncate(4 + 8 * 26);
        pre[0..4].copy_from_slice(&26u32.to_le_bytes());
        let decoded = StatsResponse::decode(&pre).unwrap();
        assert_eq!(decoded.server.anti_entropy_repairs, 26);
        assert_eq!(decoded.server.idle_timeouts, 0);
        assert_eq!(decoded.tenants, Vec::new());
        // A gauge-pair count cut off by the declared total is clamped,
        // never read past the payload.
        let mut torn = s.encode();
        let full = u32::from_le_bytes(torn[0..4].try_into().unwrap());
        torn.truncate(torn.len() - 8);
        torn[0..4].copy_from_slice(&(full - 1).to_le_bytes());
        let decoded = StatsResponse::decode(&torn).unwrap();
        assert_eq!(decoded.tenants.len(), 1);
    }

    #[test]
    fn replicate_round_trips() {
        for repair in [false, true] {
            let req = ReplicateRequest {
                stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
                objective: ObjectiveSpec::ShortestVector,
                uov: ivec![1, 1],
                cost: 2,
                repair,
            };
            assert_eq!(ReplicateRequest::decode(&req.encode()).unwrap(), req);
        }
        for stored in [false, true] {
            let resp = ReplicateResponse { stored };
            assert_eq!(ReplicateResponse::decode(&resp.encode()).unwrap(), resp);
        }
        // Non-boolean flags and trailing bytes are typed errors.
        assert!(matches!(
            ReplicateResponse::decode(&[7]),
            Err(ServiceError::Malformed(_))
        ));
        assert!(matches!(
            ReplicateResponse::decode(&[1, 0]),
            Err(ServiceError::Malformed(_))
        ));
        let req = ReplicateRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).unwrap(),
            objective: ObjectiveSpec::ShortestVector,
            uov: ivec![1, 1],
            cost: 2,
            repair: false,
        };
        let mut bytes = req.encode();
        bytes.push(0);
        assert!(matches!(
            ReplicateRequest::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));
    }

    #[test]
    fn workunit_request_round_trips() {
        for hint in [None, Some(12u128), Some(u128::MAX)] {
            let req = WorkUnitRequest {
                stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 750,
                node_budget: 4_096,
                bound_hint: hint,
                snapshot: vec![0xAB; 97],
            };
            assert_eq!(WorkUnitRequest::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn workunit_response_round_trips() {
        let resp = WorkUnitResponse {
            degradation: DegradationCode::Nodes,
            snapshot: vec![0xCD; 33],
        };
        assert_eq!(WorkUnitResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn hostile_workunit_lengths_are_rejected_before_allocation() {
        let req = WorkUnitRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).unwrap(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            node_budget: 0,
            bound_hint: None,
            snapshot: vec![1, 2, 3],
        };
        let mut bytes = req.encode();
        // The snapshot length prefix sits 7 bytes from the end (u32 len +
        // 3 payload bytes); declare 2 GiB.
        let at = bytes.len() - 7;
        bytes[at..at + 4].copy_from_slice(&(2u32 << 30).to_le_bytes());
        assert!(matches!(
            WorkUnitRequest::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));

        let resp = WorkUnitResponse {
            degradation: DegradationCode::None,
            snapshot: vec![9; 8],
        };
        let mut bytes = resp.encode();
        bytes[1..5].copy_from_slice(&(2u32 << 30).to_le_bytes());
        assert!(matches!(
            WorkUnitResponse::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));
    }

    #[test]
    fn frame_round_trips_through_a_stream() {
        let req = fig1_request();
        let frame = encode_frame(kind::REQ_PLAN, &req.encode());
        let mut cursor = io::Cursor::new(frame);
        let (k, payload) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(k, kind::REQ_PLAN);
        assert_eq!(PlanRequest::decode(&payload).unwrap(), req);
        // A second read at EOF is a clean close.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = encode_frame(kind::REQ_PLAN, &[]);
        // Corrupt the length field to declare a 3 GiB payload.
        frame[7..11].copy_from_slice(&(3u32 << 30).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        match read_frame(&mut cursor) {
            Err(ServiceError::FrameTooLarge(n)) => assert_eq!(n, 3 << 30),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_frame(kind::REQ_PLAN, &fig1_request().encode());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                let mut cursor = io::Cursor::new(flipped);
                assert!(
                    read_frame(&mut cursor).is_err(),
                    "undetected flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_clean() {
        let frame = encode_frame(kind::REQ_PLAN, &fig1_request().encode());
        for cut in 1..frame.len() {
            let mut cursor = io::Cursor::new(frame[..cut].to_vec());
            match read_frame(&mut cursor) {
                Err(ServiceError::ConnectionClosed) => {}
                other => panic!("cut at {cut}: expected ConnectionClosed, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_request_payloads_are_typed_errors() {
        // Zero dimension.
        let mut e = Encoder::new();
        e.u16(0);
        e.u32(1);
        assert!(matches!(
            PlanRequest::decode(&e.buf),
            Err(ServiceError::Malformed(_))
        ));
        // Hostile vector count (must not allocate).
        let mut e = Encoder::new();
        e.u16(2);
        e.u32(u32::MAX);
        assert!(matches!(
            PlanRequest::decode(&e.buf),
            Err(ServiceError::Malformed(_))
        ));
        // Non-lex-positive stencil vector.
        let mut e = Encoder::new();
        e.u16(2);
        e.u32(1);
        e.i64(-1);
        e.i64(0);
        e.u8(0);
        e.u32(0);
        e.u32(0);
        assert!(matches!(
            PlanRequest::decode(&e.buf),
            Err(ServiceError::Malformed(_))
        ));
        // Empty domain (lo > hi).
        let req = fig1_request();
        let mut bytes = req.encode();
        // lo starts right after dim(2) + nvec(4) + 3 vectors (48) + tag(1).
        let lo_at = 2 + 4 + 48 + 1;
        bytes[lo_at..lo_at + 8].copy_from_slice(&100i64.to_le_bytes());
        assert!(matches!(
            PlanRequest::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let mut frame = encode_frame(kind::REQ_PLAN, &[]);
        frame[0] = b'X';
        // Recompute the CRC so only the magic is wrong.
        let body_len = frame.len() - 4;
        let crc = crc32(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&crc.to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServiceError::BadMagic)
        ));

        let mut frame = encode_frame(kind::REQ_PLAN, &[]);
        frame[4..6].copy_from_slice(&9u16.to_le_bytes());
        let body_len = frame.len() - 4;
        let crc = crc32(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&crc.to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServiceError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn tenant_frames_round_trip_and_interoperate() {
        let payload = fig1_request().encode();
        // A v2 frame carries its tenant id through intact.
        let frame = encode_frame_tenant(kind::REQ_PLAN, 7, &payload);
        let mut cursor = io::Cursor::new(frame);
        let (k, tenant, back) = read_frame_tenant(&mut cursor).unwrap().unwrap();
        assert_eq!((k, tenant), (kind::REQ_PLAN, 7));
        assert_eq!(back, payload);
        assert!(read_frame_tenant(&mut cursor).unwrap().is_none());
        // A v1 frame reads as tenant 0 through the same entry point.
        let mut cursor = io::Cursor::new(encode_frame(kind::REQ_PLAN, &payload));
        let (k, tenant, back) = read_frame_tenant(&mut cursor).unwrap().unwrap();
        assert_eq!((k, tenant), (kind::REQ_PLAN, 0));
        assert_eq!(back, payload);
        // Tenant 0 writes the v1 layout byte for byte, so old servers
        // never see a version they cannot parse.
        let mut wire = Vec::new();
        write_frame_tenant(&mut wire, kind::REQ_PLAN, 0, &payload).unwrap();
        assert_eq!(wire, encode_frame(kind::REQ_PLAN, &payload));
        let mut wire = Vec::new();
        write_frame_tenant(&mut wire, kind::REQ_PLAN, 9, &payload).unwrap();
        assert_eq!(wire, encode_frame_tenant(kind::REQ_PLAN, 9, &payload));
    }

    #[test]
    fn every_tenant_frame_bit_flip_is_detected() {
        let frame = encode_frame_tenant(kind::REQ_PLAN, 0xABCD, &fig1_request().encode());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                let mut cursor = io::Cursor::new(flipped);
                assert!(
                    read_frame_tenant(&mut cursor).is_err(),
                    "undetected flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_tenant_frame_truncation_is_clean() {
        let frame = encode_frame_tenant(kind::REQ_PLAN, 3, &fig1_request().encode());
        for cut in 1..frame.len() {
            let mut cursor = io::Cursor::new(frame[..cut].to_vec());
            match read_frame_tenant(&mut cursor) {
                Err(ServiceError::ConnectionClosed) => {}
                other => panic!("cut at {cut}: expected ConnectionClosed, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_tenant_frame_is_rejected_from_the_header_alone() {
        let mut frame = encode_frame_tenant(kind::REQ_PLAN, 1, &[]);
        // len field sits after magic(4) + version(2) + kind(1) + tenant(4).
        frame[11..15].copy_from_slice(&(3u32 << 30).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        match read_frame_tenant(&mut cursor) {
            Err(ServiceError::FrameTooLarge(n)) => assert_eq!(n, 3 << 30),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn batch_request_round_trips() {
        let one = fig1_request();
        let two = PlanRequest {
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 10,
            ..one.clone()
        };
        let batch = BatchRequest {
            entries: vec![one, two],
        };
        assert_eq!(BatchRequest::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn batch_response_round_trips() {
        let resp = BatchResponse {
            entries: vec![
                Ok(PlanResponse {
                    uov: ivec![1, 1],
                    cost: 2,
                    certificate_hash: 0xF00D,
                    degradation: DegradationCode::Pressure,
                    cache: CacheOutcome::Miss,
                }),
                Err(ErrorResponse {
                    code: ErrorCode::Overloaded,
                    msg: "tenant over quota".into(),
                }),
            ],
        };
        assert_eq!(BatchResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn hostile_batches_are_typed_errors() {
        // Empty batches carry no work and are rejected.
        let empty = BatchRequest { entries: vec![] };
        assert!(matches!(
            BatchRequest::decode(&empty.encode()),
            Err(ServiceError::Malformed(_))
        ));
        // A count beyond the limit is rejected before any allocation.
        let mut e = Encoder::new();
        e.u32(MAX_BATCH_ENTRIES + 1);
        assert!(matches!(
            BatchRequest::decode(&e.buf),
            Err(ServiceError::Malformed(_))
        ));
        let mut e = Encoder::new();
        e.u32(u32::MAX);
        assert!(matches!(
            BatchRequest::decode(&e.buf),
            Err(ServiceError::Malformed(_))
        ));
        // A hostile per-entry length is bounded by the payload size.
        let batch = BatchRequest {
            entries: vec![fig1_request()],
        };
        let mut bytes = batch.encode();
        bytes[4..8].copy_from_slice(&(2u32 << 30).to_le_bytes());
        assert!(matches!(
            BatchRequest::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));
        // Trailing bytes after the declared entries are rejected.
        let mut bytes = batch.encode();
        bytes.push(0);
        assert!(matches!(
            BatchRequest::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));
        // An unknown status tag in a response is rejected.
        let resp = BatchResponse {
            entries: vec![Err(ErrorResponse {
                code: ErrorCode::Internal,
                msg: "x".into(),
            })],
        };
        let mut bytes = resp.encode();
        bytes[4] = 9;
        assert!(matches!(
            BatchResponse::decode(&bytes),
            Err(ServiceError::Malformed(_))
        ));
    }

    #[test]
    fn pressure_degradation_round_trips() {
        assert_eq!(
            DegradationCode::from_u8(DegradationCode::Pressure.to_u8()).unwrap(),
            DegradationCode::Pressure
        );
        let resp = PlanResponse {
            uov: ivec![1, 1],
            cost: 2,
            certificate_hash: 1,
            degradation: DegradationCode::Pressure,
            cache: CacheOutcome::Miss,
        };
        assert_eq!(PlanResponse::decode(&resp.encode()).unwrap(), resp);
    }
}
