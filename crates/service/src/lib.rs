//! `uov-service` — a dependency-free planning server for universal
//! occupancy vectors.
//!
//! The rest of the workspace computes UOVs in-process; this crate puts
//! the planner behind a socket so one warm process can answer for many
//! compiler invocations:
//!
//! * [`proto`] — a length-prefixed, CRC-checked binary protocol
//!   (`PlanRequest` → `PlanResponse`) built on the same
//!   [`uov_core::wire`] primitives as the checkpoint format.
//! * [`server`] — an event-driven readiness loop (epoll on Linux, poll
//!   elsewhere) feeding a fixed compute pool through a weighted-fair
//!   per-tenant scheduler: typed admission control (`Overloaded`),
//!   per-tenant token-bucket quotas and in-flight caps, idle/slow-loris
//!   read deadlines, degrade-under-pressure to the certified `Σvᵢ` fast
//!   path, per-request deadline budgets, panic isolation, and graceful
//!   drain on shutdown.
//! * [`plan_cache`] — a canonicalizing plan cache: requests are reduced
//!   modulo coordinate permutation ([`canon`]) and keyed by the
//!   workspace-standard fingerprint into a sharded LRU, with
//!   single-flight dedup so N concurrent identical requests run one
//!   search.
//! * [`client`] / [`loadgen`] — a blocking client and a deterministic
//!   closed-loop load generator (throughput, latency percentiles, cache
//!   hit rates).
//! * [`resilient`] — a [`ResilientClient`] over an ordered replica list:
//!   per-attempt timeouts, exponential backoff with deterministic seeded
//!   jitter, per-replica circuit breakers, optional hedged requests, and
//!   a replayable event log of every decision.
//! * [`chaos`] — a deterministic seeded chaos proxy (resets, stalls,
//!   latency spikes, truncation, bit-flips) and a replica kill/restart
//!   orchestrator, turning every resilience claim into a repeatable test.
//! * [`mesh`] — a fault-tolerant planning mesh: consistent-hash shard
//!   routing (each canonical problem has a home shard, with deterministic
//!   ring failover) and distributed branch-and-bound that ships PATHSET
//!   subtrees as `UOVCKPT1` work units, re-dispatching any unit whose
//!   replica dies mid-search — with a byte-identical-answer guarantee.
//!
//! Every answer is re-certified server-side ([`uov_core::certify`]) and
//! carries the certificate's transcript hash, so a client can prove a
//! cached response is byte-identical to a cold solve.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod canon;
pub mod chaos;
pub mod client;
pub mod error;
pub mod loadgen;
pub mod mesh;
pub mod plan_cache;
pub mod proto;
pub mod resilient;
pub mod server;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats, ReplicaSet};
pub use client::Client;
pub use error::{ErrorCode, ServiceError};
pub use loadgen::{
    coalescing_burst, run as run_loadgen, run_open_loop, BurstReport, LoadGenConfig, LoadReport,
    OpenLoopConfig, OpenLoopReport, TenantLoad,
};
pub use mesh::{MeshClient, MeshConfig, MeshEvent, MeshStats, Ring};
pub use plan_cache::{CacheStats, PlanCache, Planned, WarmCacheError};
pub use proto::{
    BatchRequest, BatchResponse, BoundGossip, CacheOutcome, DegradationCode, HealthResponse,
    ObjectiveSpec, PlanRequest, PlanResponse, ReplicateRequest, ReplicateResponse, StatsResponse,
    TenantGauge, WorkUnitRequest, WorkUnitResponse, FLAG_NO_CACHE, MAX_BATCH_ENTRIES,
};
pub use resilient::{FabricEvent, FailureClass, ResilientClient, ResilientConfig};
pub use server::{serve, QuotaConfig, ServerConfig, ServerHandle, ServerStats, TenantQuota};
