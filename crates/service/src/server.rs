//! The planning server: a fixed worker pool behind a bounded accept
//! queue, speaking the framed protocol of [`crate::proto`].
//!
//! Admission control is explicit and typed. The accept loop never blocks
//! on a slow worker: connections land in a bounded queue, and when the
//! queue is full the connection is answered with one `Overloaded` error
//! frame and closed — load-shedding at the door instead of unbounded
//! buffering. Each worker isolates connection handling behind
//! `catch_unwind`, so a panic poisons one connection, not the pool.
//!
//! Shutdown is a drain, not a kill: the shutdown flag stops the accept
//! loop, in-flight requests run to completion, frames arriving after the
//! flag are answered `ShuttingDown`, and [`ServerHandle::join`] returns
//! once every worker has exited.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uov_core::certify::certify;
use uov_core::checkpoint::{decode_snapshot, encode_snapshot};
use uov_core::search::{find_best_uov, search_unit, SearchConfig, SearchStats};
use uov_core::{fingerprint, Budget, SearchResult};
use uov_isg::Stencil;

use crate::error::{ErrorCode, ServiceError};
use crate::plan_cache::{CacheStats, PlanCache, Planned, WarmCacheError, DEFAULT_CACHE_CAPACITY};
use crate::proto::{
    kind, read_frame, write_frame, BoundGossip, DegradationCode, ErrorResponse, HealthResponse,
    ObjectiveSpec, PlanRequest, PlanResponse, ReplicateRequest, ReplicateResponse, StatsResponse,
    WorkUnitRequest, WorkUnitResponse, FLAG_NO_CACHE,
};

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections (and running searches).
    pub workers: usize,
    /// Bounded connection queue depth between accept and the workers.
    /// A full queue rejects new connections with `Overloaded`.
    pub queue_depth: usize,
    /// Branch-and-bound threads per search (`0`/`1` = sequential).
    pub search_threads: usize,
    /// Distinct canonical plans retained by the cache.
    pub cache_capacity: usize,
    /// Consecutive ~100 ms idle polls tolerated on a connection before it
    /// is dropped (half-open peer protection). Default ≈ 30 s.
    pub idle_ticks: u32,
    /// Warm-cache snapshot path. When set, the plan cache is restored
    /// from this file on startup (a missing or corrupt snapshot starts
    /// cold, never fails the boot) and persisted to it atomically on a
    /// graceful drain, so a bounced replica keeps its hot set.
    pub warm_cache: Option<PathBuf>,
    /// How long a worker may stay busy on a single request before the
    /// watchdog trips its budget's cancellation token, degrading the
    /// search to the best certified legal answer found so far.
    /// `Duration::ZERO` (the default) disables wedge detection —
    /// legitimate unbounded searches are never cut.
    pub wedge_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            search_threads: 1,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            idle_ticks: 300,
            warm_cache: None,
            wedge_timeout: Duration::ZERO,
        }
    }
}

/// A snapshot of the server's monotone traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted into the queue.
    pub connections: u64,
    /// Connections rejected at the door with `Overloaded`.
    pub rejected_overloaded: u64,
    /// Plan requests admitted to a worker.
    pub requests: u64,
    /// Plan responses successfully written.
    pub responses: u64,
    /// Frames rejected for protocol violations (bad magic, CRC, torn
    /// frames, malformed payloads).
    pub protocol_errors: u64,
    /// Requests answered `ShuttingDown` during the drain.
    pub rejected_shutdown: u64,
    /// Connection handlers that panicked (isolated; the worker survived).
    pub panics: u64,
    /// Frames whose CRC32 did not match their contents (bit damage in
    /// transit). A subset of `protocol_errors`.
    pub crc_failures: u64,
    /// Frames not starting with the protocol magic. A subset of
    /// `protocol_errors`.
    pub bad_magic: u64,
    /// Frames declaring an unsupported protocol version. A subset of
    /// `protocol_errors`.
    pub bad_version: u64,
    /// Frames whose declared payload exceeded [`crate::proto::MAX_PAYLOAD`]
    /// (rejected before allocation). A subset of `protocol_errors`.
    pub oversized_frames: u64,
    /// Wedged requests whose budgets the watchdog cancelled.
    pub watchdog_cancels: u64,
    /// Worker threads the watchdog found dead and respawned.
    pub worker_restarts: u64,
    /// Distributed-search work units executed (`REQ_WORKUNIT`).
    pub workunits: u64,
    /// Warm-cache snapshots refused at startup because the file was
    /// unreadable or damaged (bad magic, torn section, CRC mismatch).
    pub warm_load_corrupt: u64,
    /// Warm-cache snapshots refused at startup because a newer server
    /// wrote them — a rollback signature, not disk damage.
    pub warm_load_version: u64,
    /// Work units rejected because their fencing epoch was superseded by
    /// a later lease for the same problem (`StaleEpoch`) — zombie or
    /// replayed completions that must not reach a merge.
    pub stale_epoch_rejections: u64,
    /// Replication pushes flagged as anti-entropy repairs that were
    /// re-certified and stored (a peer healing this replica's cache
    /// after it restarted).
    pub anti_entropy_repairs: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    rejected_overloaded: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
    rejected_shutdown: AtomicU64,
    panics: AtomicU64,
    crc_failures: AtomicU64,
    bad_magic: AtomicU64,
    bad_version: AtomicU64,
    oversized_frames: AtomicU64,
    watchdog_cancels: AtomicU64,
    worker_restarts: AtomicU64,
    workunits: AtomicU64,
    warm_load_corrupt: AtomicU64,
    warm_load_version: AtomicU64,
    stale_epoch_rejections: AtomicU64,
    anti_entropy_repairs: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            crc_failures: self.crc_failures.load(Ordering::Relaxed),
            bad_magic: self.bad_magic.load(Ordering::Relaxed),
            bad_version: self.bad_version.load(Ordering::Relaxed),
            oversized_frames: self.oversized_frames.load(Ordering::Relaxed),
            watchdog_cancels: self.watchdog_cancels.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            workunits: self.workunits.load(Ordering::Relaxed),
            warm_load_corrupt: self.warm_load_corrupt.load(Ordering::Relaxed),
            warm_load_version: self.warm_load_version.load(Ordering::Relaxed),
            stale_epoch_rejections: self.stale_epoch_rejections.load(Ordering::Relaxed),
            anti_entropy_repairs: self.anti_entropy_repairs.load(Ordering::Relaxed),
        }
    }

    /// Count one protocol failure, both in the aggregate and in the
    /// per-class counter chaos tests assert on.
    fn protocol_error(&self, e: &ServiceError) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        match e {
            ServiceError::CrcMismatch => {
                self.crc_failures.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::BadMagic => {
                self.bad_magic.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::UnsupportedVersion(_) => {
                self.bad_version.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::FrameTooLarge(_) => {
                self.oversized_frames.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

// ------------------------------------------------------------- transports

/// A listening socket: TCP, or a Unix domain socket for `unix:<path>`
/// endpoints.
enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted (or dialed) connection.
pub(crate) enum AnyStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyListener {
    fn bind(endpoint: &str) -> io::Result<(Self, String)> {
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix:") {
            // A stale socket file from a crashed server blocks rebinding.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            return Ok((AnyListener::Unix(l), format!("unix:{path}")));
        }
        #[cfg(not(unix))]
        if endpoint.starts_with("unix:") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        let l = TcpListener::bind(endpoint)?;
        let local = l.local_addr()?;
        Ok((AnyListener::Tcp(l), local.to_string()))
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(AnyStream::Tcp(s))
            }
            #[cfg(unix)]
            AnyListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(AnyStream::Unix(s))
            }
        }
    }
}

impl AnyStream {
    pub(crate) fn connect(endpoint: &str) -> io::Result<Self> {
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix:") {
            return Ok(AnyStream::Unix(UnixStream::connect(path)?));
        }
        #[cfg(not(unix))]
        if endpoint.starts_with("unix:") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        Ok(AnyStream::Tcp(TcpStream::connect(endpoint)?))
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn close(&self) {
        match self {
            AnyStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            AnyStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

// ----------------------------------------------------------------- server

/// What one worker is doing right now, read and written under one lock so
/// the watchdog can never cancel a request that registered after its
/// busy-time check (the check and the trip are atomic w.r.t. registration).
#[derive(Default)]
struct BusyState {
    /// Milliseconds (since server start) when the current request began;
    /// `None` while idle.
    since_ms: Option<u64>,
    /// The current request's budget cancellation token.
    cancel: Option<Arc<AtomicBool>>,
}

/// Per-worker liveness bookkeeping for the watchdog.
#[derive(Default)]
struct WorkerSlot {
    /// Milliseconds (since server start) of the worker's last sign of
    /// life — updated on every connection event and request boundary.
    heartbeat_ms: AtomicU64,
    /// The in-flight request, if any.
    busy: Mutex<BusyState>,
}

impl WorkerSlot {
    fn beat(&self, now_ms: u64) {
        self.heartbeat_ms.store(now_ms, Ordering::Relaxed);
    }

    fn begin_request(&self, now_ms: u64, cancel: Arc<AtomicBool>) {
        let mut busy = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        busy.since_ms = Some(now_ms);
        busy.cancel = Some(cancel);
    }

    fn end_request(&self) {
        let mut busy = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        busy.since_ms = None;
        busy.cancel = None;
    }
}

struct ServerState {
    config: ServerConfig,
    cache: PlanCache,
    shutdown: AtomicBool,
    stats: Counters,
    /// Connections sitting in the bounded queue right now.
    queue_len: AtomicU64,
    /// Worker threads currently running their loop.
    workers_alive: AtomicU64,
    /// One slot per worker index, shared with the watchdog.
    slots: Vec<Arc<WorkerSlot>>,
    /// Server start, the epoch for all slot timestamps.
    started: Instant,
    /// The best incumbent bound this replica has proven, as
    /// `(problem fingerprint, saturated cost)`. Piggybacked on stats
    /// frames so mesh coordinators can tighten pruning on sibling
    /// replicas. Staleness is sound: the value is always the cost of a
    /// genuine UOV, so it can only ever *over*-estimate the optimum.
    gossip: Mutex<Option<(u64, u64)>>,
    /// The highest work-unit fencing epoch seen per problem fingerprint.
    /// A unit whose snapshot carries a *lower* epoch than the recorded
    /// fence was superseded by a re-dispatch and is rejected with
    /// `StaleEpoch` before any work runs; an equal epoch is the same
    /// lease resent (idempotent) and is allowed.
    leases: Mutex<HashMap<u64, u64>>,
}

impl ServerState {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Record a proven incumbent bound for gossip. Costs that do not fit
    /// in the wire's `u64` (or the reserved `u64::MAX`) are dropped — a
    /// missing hint is always sound. For a repeated fingerprint only an
    /// improvement overwrites; a different problem always takes the slot
    /// (most-recent-problem wins, which is what a coordinator polling
    /// mid-search wants).
    fn update_gossip(&self, fp: u64, cost: u128) {
        let Ok(cost) = u64::try_from(cost) else {
            return;
        };
        if cost == u64::MAX || fp == 0 {
            return;
        }
        let mut slot = self.gossip.lock().unwrap_or_else(|p| p.into_inner());
        match *slot {
            Some((f, c)) if f == fp && c <= cost => {}
            _ => *slot = Some((fp, cost)),
        }
    }

    /// The current gossip bound, for stats frames.
    fn gossip_bound(&self) -> Option<BoundGossip> {
        let slot = self.gossip.lock().unwrap_or_else(|p| p.into_inner());
        slot.map(|(fingerprint, cost)| BoundGossip { fingerprint, cost })
    }

    /// The readiness signal served by `REQ_HEALTH`.
    fn health(&self) -> HealthResponse {
        let draining = self.shutdown.load(Ordering::SeqCst);
        let workers_alive = self.workers_alive.load(Ordering::Relaxed) as u32;
        let queue_len = self.queue_len.load(Ordering::Relaxed) as u32;
        let queue_depth = self.config.queue_depth.max(1) as u32;
        HealthResponse {
            ready: !draining && workers_alive > 0 && queue_len < queue_depth,
            draining,
            workers_alive,
            queue_len,
            queue_depth,
        }
    }

    /// Run one plan request through the cache (or around it, for
    /// `FLAG_NO_CACHE`) and certify the answer server-side. The `cancel`
    /// token is wired into the search budget so the watchdog can degrade
    /// a wedged request to a certified legal answer.
    fn handle_plan(
        &self,
        req: &PlanRequest,
        cancel: Arc<AtomicBool>,
    ) -> Result<PlanResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let budget = if req.deadline_ms > 0 {
            Budget::unlimited().with_deadline(Duration::from_millis(u64::from(req.deadline_ms)))
        } else {
            Budget::unlimited()
        }
        .with_cancel_token(cancel);
        let config = SearchConfig {
            budget,
            threads: self.config.search_threads,
            ..SearchConfig::default()
        };
        let solve = |s: &Stencil, o: &ObjectiveSpec| {
            find_best_uov(s, o.as_objective(), &config).map_err(|e| e.to_string())
        };
        let planned: Planned = if req.flags & FLAG_NO_CACHE != 0 {
            self.cache.direct(&req.stencil, &req.objective, &solve)
        } else {
            self.cache.plan(&req.stencil, &req.objective, solve)
        }
        .map_err(|msg| ErrorResponse {
            code: ErrorCode::Internal,
            msg,
        })?;

        // Every served plan is a genuine UOV, so its cost is a sound
        // upper bound worth gossiping (degraded answers included: they
        // are legal, just possibly not optimal).
        self.update_gossip(
            fingerprint(&req.stencil, &req.objective.as_objective()),
            planned.cost,
        );

        // Re-certify every answer against the *request's* problem. The
        // certificate hash deliberately excludes search statistics, so a
        // cache hit certifies to exactly the hash a cold solve yields.
        let as_result = SearchResult {
            uov: planned.uov.clone(),
            cost: planned.cost,
            stats: SearchStats::default(),
            degradation: planned.degradation,
            checkpoint_error: None,
        };
        let cert =
            certify(&req.stencil, &req.objective.as_objective(), &as_result).map_err(|e| {
                ErrorResponse {
                    code: ErrorCode::Internal,
                    msg: format!("certification failed: {e}"),
                }
            })?;
        Ok(PlanResponse {
            uov: planned.uov,
            cost: planned.cost,
            certificate_hash: cert.transcript_hash,
            degradation: DegradationCode::from_exhausted(planned.degradation.map(|d| d.reason)),
            cache: planned.cache,
        })
    }

    /// Execute one distributed-search work unit: resume the shipped
    /// `UOVCKPT1` snapshot under this request's budget and ship the final
    /// engine state back. The coordinator owns correctness (merging,
    /// re-frontiering, certification); this side only guarantees that
    /// whatever it returns is a faithful engine snapshot of *this*
    /// problem, which `SeedState::from_snapshot` enforced on the way in
    /// and the snapshot capture enforces on the way out.
    fn handle_workunit(
        &self,
        req: &WorkUnitRequest,
        cancel: Arc<AtomicBool>,
    ) -> Result<WorkUnitResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.workunits.fetch_add(1, Ordering::Relaxed);
        let snap = decode_snapshot(&req.snapshot).map_err(|e| ErrorResponse {
            code: ErrorCode::Malformed,
            msg: format!("work-unit snapshot: {e}"),
        })?;
        // Lease fencing: a superseded epoch is a zombie or replay and is
        // rejected before any search runs. Epoch 0 (unleased) bypasses
        // the fence for single-coordinator callers and old coordinators.
        let unit_epoch = snap.epoch;
        if unit_epoch > 0 {
            let mut leases = self.leases.lock().unwrap_or_else(|p| p.into_inner());
            let fence = leases.entry(snap.fingerprint).or_insert(0);
            if unit_epoch < *fence {
                let fence = *fence;
                drop(leases);
                self.stats
                    .stale_epoch_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ErrorResponse {
                    code: ErrorCode::StaleEpoch,
                    msg: format!("work-unit epoch {unit_epoch} superseded by {fence}"),
                });
            }
            *fence = unit_epoch;
        }
        let mut budget = Budget::unlimited();
        if req.deadline_ms > 0 {
            budget = budget.with_deadline(Duration::from_millis(u64::from(req.deadline_ms)));
        }
        if req.node_budget > 0 {
            budget = budget.with_max_nodes(req.node_budget);
        }
        let config = SearchConfig {
            budget: budget.with_cancel_token(cancel),
            threads: self.config.search_threads,
            bound_hint: req.bound_hint,
            ..SearchConfig::default()
        };
        let (result, mut out) = search_unit(
            Some(snap),
            &req.stencil,
            req.objective.as_objective(),
            &config,
        )
        .map_err(|e| ErrorResponse {
            code: ErrorCode::Internal,
            msg: e.to_string(),
        })?;
        self.update_gossip(out.fingerprint, result.cost);
        // Echo the lease epoch so the coordinator can discard responses
        // from leases it has since superseded, even on a late socket.
        out.epoch = unit_epoch;
        let snapshot = encode_snapshot(&out).map_err(|e| ErrorResponse {
            code: ErrorCode::Internal,
            msg: e.to_string(),
        })?;
        Ok(WorkUnitResponse {
            degradation: DegradationCode::from_exhausted(result.degradation.map(|d| d.reason)),
            snapshot,
        })
    }

    /// Accept a neighbor-replication push: re-certify the answer against
    /// the shipped problem, then hand it to the plan cache's validating
    /// replicated-insert path (which canonicalizes and re-derives the
    /// canonical lex-min independently). A push that fails certification
    /// is a protocol-level `Malformed`; a push the cache *refuses*
    /// (repair-enumeration limit) is a successful `stored: false` — the
    /// replica stays cold for that problem, never wrong.
    fn handle_replicate(&self, req: &ReplicateRequest) -> Result<ReplicateResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let as_result = SearchResult {
            uov: req.uov.clone(),
            cost: req.cost,
            stats: SearchStats::default(),
            degradation: None,
            checkpoint_error: None,
        };
        if let Err(e) = certify(&req.stencil, &req.objective.as_objective(), &as_result) {
            return Err(ErrorResponse {
                code: ErrorCode::Malformed,
                msg: format!("replicated plan failed certification: {e}"),
            });
        }
        let stored = self
            .cache
            .insert_replicated(&req.stencil, &req.objective, &req.uov, req.cost);
        if stored {
            if req.repair {
                self.stats
                    .anti_entropy_repairs
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.update_gossip(
                fingerprint(&req.stencil, &req.objective.as_objective()),
                req.cost,
            );
        }
        Ok(ReplicateResponse { stored })
    }
}

fn is_idle_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serve one connection until EOF, protocol failure, idle expiry, or
/// drain. Never panics outward; the caller wraps it in `catch_unwind`
/// anyway for defence in depth. Health and stats probes are answered even
/// during a drain, so orchestrators can watch a replica all the way down.
fn handle_conn(stream: &mut AnyStream, state: &ServerState, slot: &WorkerSlot) {
    // A short read timeout doubles as the shutdown/idle poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut idle: u32 = 0;
    loop {
        slot.beat(state.now_ms());
        match read_frame(stream) {
            Ok(None) => break,
            Ok(Some((kind::REQ_PLAN, payload))) => {
                idle = 0;
                if state.shutdown.load(Ordering::SeqCst) {
                    state
                        .stats
                        .rejected_shutdown
                        .fetch_add(1, Ordering::Relaxed);
                    let err = ErrorResponse {
                        code: ErrorCode::ShuttingDown,
                        msg: "server is draining".into(),
                    };
                    let _ = write_frame(stream, kind::RESP_ERROR, &err.encode());
                    break;
                }
                match PlanRequest::decode(&payload) {
                    Ok(req) => {
                        // Register the request with the watchdog before
                        // the (potentially long) search, clear it after.
                        let cancel = Arc::new(AtomicBool::new(false));
                        slot.begin_request(state.now_ms(), Arc::clone(&cancel));
                        let outcome = state.handle_plan(&req, cancel);
                        slot.end_request();
                        slot.beat(state.now_ms());
                        match outcome {
                            Ok(resp) => {
                                if write_frame(stream, kind::RESP_PLAN, &resp.encode()).is_err() {
                                    break;
                                }
                                state.stats.responses.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => {
                                if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        // The frame itself was intact (CRC passed), so the
                        // stream stays at a frame boundary: report and
                        // keep the connection.
                        state.stats.protocol_error(&e);
                        let err = ErrorResponse {
                            code: ErrorCode::Malformed,
                            msg: e.to_string(),
                        };
                        if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(Some((kind::REQ_WORKUNIT, payload))) => {
                idle = 0;
                if state.shutdown.load(Ordering::SeqCst) {
                    state
                        .stats
                        .rejected_shutdown
                        .fetch_add(1, Ordering::Relaxed);
                    let err = ErrorResponse {
                        code: ErrorCode::ShuttingDown,
                        msg: "server is draining".into(),
                    };
                    let _ = write_frame(stream, kind::RESP_ERROR, &err.encode());
                    break;
                }
                match WorkUnitRequest::decode(&payload) {
                    Ok(req) => {
                        let cancel = Arc::new(AtomicBool::new(false));
                        slot.begin_request(state.now_ms(), Arc::clone(&cancel));
                        let outcome = state.handle_workunit(&req, cancel);
                        slot.end_request();
                        slot.beat(state.now_ms());
                        match outcome {
                            Ok(resp) => {
                                if write_frame(stream, kind::RESP_WORKUNIT, &resp.encode()).is_err()
                                {
                                    break;
                                }
                                state.stats.responses.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => {
                                if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        state.stats.protocol_error(&e);
                        let err = ErrorResponse {
                            code: ErrorCode::Malformed,
                            msg: e.to_string(),
                        };
                        if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(Some((kind::REQ_REPLICATE, payload))) => {
                idle = 0;
                if state.shutdown.load(Ordering::SeqCst) {
                    state
                        .stats
                        .rejected_shutdown
                        .fetch_add(1, Ordering::Relaxed);
                    let err = ErrorResponse {
                        code: ErrorCode::ShuttingDown,
                        msg: "server is draining".into(),
                    };
                    let _ = write_frame(stream, kind::RESP_ERROR, &err.encode());
                    break;
                }
                match ReplicateRequest::decode(&payload) {
                    Ok(req) => match state.handle_replicate(&req) {
                        Ok(resp) => {
                            if write_frame(stream, kind::RESP_REPLICATE, &resp.encode()).is_err() {
                                break;
                            }
                            state.stats.responses.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                                break;
                            }
                        }
                    },
                    Err(e) => {
                        state.stats.protocol_error(&e);
                        let err = ErrorResponse {
                            code: ErrorCode::Malformed,
                            msg: e.to_string(),
                        };
                        if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(Some((kind::REQ_HEALTH, _))) => {
                idle = 0;
                let health = state.health();
                if write_frame(stream, kind::RESP_HEALTH, &health.encode()).is_err() {
                    break;
                }
            }
            Ok(Some((kind::REQ_STATS, _))) => {
                idle = 0;
                let stats = StatsResponse {
                    server: state.stats.snapshot(),
                    cache: state.cache.stats(),
                    bound: state.gossip_bound(),
                };
                if write_frame(stream, kind::RESP_STATS, &stats.encode()).is_err() {
                    break;
                }
            }
            Ok(Some((kind::REQ_SHUTDOWN, _))) => {
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(stream, kind::RESP_SHUTDOWN_ACK, &[]);
                break;
            }
            Ok(Some((other, _))) => {
                state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let err = ErrorResponse {
                    code: ErrorCode::Unsupported,
                    msg: format!("unknown frame kind {other}"),
                };
                if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                    break;
                }
            }
            Err(ServiceError::Io(e)) if is_idle_timeout(&e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                idle += 1;
                if idle > state.config.idle_ticks {
                    break;
                }
            }
            Err(ServiceError::Io(_)) => break,
            Err(e) => {
                // Bad magic, wrong version, oversized prefix, CRC
                // mismatch, torn frame: the stream position is no longer
                // trustworthy, so answer (best-effort) and drop. The
                // reply distinguishes transit damage (`Corrupted`, safe
                // to resend verbatim) from version skew (`Unsupported`).
                state.stats.protocol_error(&e);
                let code = match e {
                    ServiceError::UnsupportedVersion(_) => ErrorCode::Unsupported,
                    ServiceError::CrcMismatch
                    | ServiceError::BadMagic
                    | ServiceError::ConnectionClosed => ErrorCode::Corrupted,
                    _ => ErrorCode::Malformed,
                };
                let err = ErrorResponse {
                    code,
                    msg: e.to_string(),
                };
                let _ = write_frame(stream, kind::RESP_ERROR, &err.encode());
                break;
            }
        }
    }
    stream.close();
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    endpoint: String,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
    /// Shared with the watchdog, which replaces dead handles in place.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound endpoint — for TCP this resolves an `:0` request
    /// to the assigned port (`"127.0.0.1:43817"`), for Unix sockets it is
    /// the `unix:<path>` string.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Begin a graceful drain: stop accepting, finish in-flight work,
    /// answer new frames with `ShuttingDown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun (via [`Self::shutdown`] or a client's
    /// `REQ_SHUTDOWN` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Current traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.state.stats.snapshot()
    }

    /// Current plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Current health/readiness report, as `REQ_HEALTH` would answer it.
    pub fn health(&self) -> HealthResponse {
        self.state.health()
    }

    /// Wait for the drain to finish: the accept loop, the watchdog, and
    /// every worker exit, in-flight connections included. On a graceful
    /// drain the plan cache is persisted to the configured warm-cache
    /// path (atomically; best-effort — a full disk loses warmth, not
    /// correctness).
    pub fn join(self) -> ServerStats {
        self.join_inner(true)
    }

    /// Like [`ServerHandle::join`] but *without* persisting the warm
    /// cache: the shutdown behaves like a crash for cache-warmth
    /// purposes. Chaos tests use this to model a killed replica while
    /// still reclaiming its threads and port.
    pub fn join_abrupt(self) -> ServerStats {
        self.join_inner(false)
    }

    fn join_inner(mut self, save_warm: bool) -> ServerStats {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.watchdog.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut ws = self.workers.lock().unwrap_or_else(|p| p.into_inner());
            ws.drain(..).collect()
        };
        for w in handles {
            let _ = w.join();
        }
        if save_warm {
            if let Some(path) = &self.state.config.warm_cache {
                let _ = self.state.cache.save(path);
            }
        }
        self.state.stats.snapshot()
    }
}

/// Bind `endpoint` (a TCP address like `"127.0.0.1:0"`, or
/// `"unix:<path>"`) and serve planning requests until shutdown.
///
/// # Errors
///
/// [`ServiceError::Io`] if the endpoint cannot be bound.
pub fn serve(endpoint: &str, config: ServerConfig) -> Result<ServerHandle, ServiceError> {
    let workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);
    let (listener, bound) = AnyListener::bind(endpoint)?;
    listener.set_nonblocking(true)?;

    let state = Arc::new(ServerState {
        cache: PlanCache::new(config.cache_capacity.max(1)),
        shutdown: AtomicBool::new(false),
        stats: Counters::default(),
        queue_len: AtomicU64::new(0),
        workers_alive: AtomicU64::new(0),
        slots: (0..workers)
            .map(|_| Arc::new(WorkerSlot::default()))
            .collect(),
        started: Instant::now(),
        gossip: Mutex::new(None),
        leases: Mutex::new(HashMap::new()),
        config,
    });

    // A warm start: restore the previous drain's plans. A refused
    // snapshot starts cold — never a boot failure — but the *reason* is
    // typed, logged, and counted so operators can tell disk damage
    // (delete the file) from a rollback (roll forward to recover it).
    if let Some(path) = &state.config.warm_cache {
        if let Err(e) = state.cache.load(path) {
            match e {
                WarmCacheError::UnsupportedVersion(_) => {
                    state
                        .stats
                        .warm_load_version
                        .fetch_add(1, Ordering::Relaxed);
                }
                WarmCacheError::Io(_) | WarmCacheError::BadMagic | WarmCacheError::Corrupt(_) => {
                    state
                        .stats
                        .warm_load_corrupt
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            eprintln!("uov-service: warm cache not restored ({e}); starting cold");
        }
    }

    let (tx, rx) = sync_channel::<AnyStream>(queue_depth);
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        worker_handles.push(spawn_worker(i, &rx, &state)?);
    }
    let worker_handles = Arc::new(Mutex::new(worker_handles));

    let accept_state = Arc::clone(&state);
    let accept_thread = thread::Builder::new()
        .name("uov-service-accept".into())
        .spawn(move || accept_loop(&listener, tx, &accept_state))
        .map_err(ServiceError::Io)?;

    let watchdog_state = Arc::clone(&state);
    let watchdog_workers = Arc::clone(&worker_handles);
    let watchdog_rx = Arc::clone(&rx);
    let watchdog = thread::Builder::new()
        .name("uov-service-watchdog".into())
        .spawn(move || watchdog_loop(&watchdog_state, &watchdog_workers, &watchdog_rx))
        .map_err(ServiceError::Io)?;

    Ok(ServerHandle {
        endpoint: bound,
        state,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
        watchdog: Some(watchdog),
    })
}

fn spawn_worker(
    index: usize,
    rx: &Arc<Mutex<Receiver<AnyStream>>>,
    state: &Arc<ServerState>,
) -> Result<JoinHandle<()>, ServiceError> {
    let rx = Arc::clone(rx);
    let state = Arc::clone(state);
    thread::Builder::new()
        .name(format!("uov-service-worker-{index}"))
        .spawn(move || worker_loop(index, &rx, &state))
        .map_err(ServiceError::Io)
}

/// Poll the worker pool: cancel requests stuck past the wedge timeout
/// (degrading them to certified legal answers via their budgets) and
/// respawn worker threads that died outright. Exits once the drain flag
/// is up — the pool is winding down then anyway.
fn watchdog_loop(
    state: &Arc<ServerState>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    rx: &Arc<Mutex<Receiver<AnyStream>>>,
) {
    let wedge_ms = state.config.wedge_timeout.as_millis() as u64;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(Duration::from_millis(20));

        if wedge_ms > 0 {
            let now = state.now_ms();
            for slot in &state.slots {
                let busy = slot.busy.lock().unwrap_or_else(|p| p.into_inner());
                if let (Some(since), Some(cancel)) = (busy.since_ms, busy.cancel.as_ref()) {
                    if now.saturating_sub(since) > wedge_ms && !cancel.swap(true, Ordering::SeqCst)
                    {
                        state.stats.watchdog_cancels.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        // A worker thread that is gone (its panic isolation itself failed,
        // or it was killed by the OS) is replaced in place so the pool
        // never shrinks below its configured size.
        let mut ws = workers.lock().unwrap_or_else(|p| p.into_inner());
        for (i, handle) in ws.iter_mut().enumerate() {
            if handle.is_finished() && !state.shutdown.load(Ordering::SeqCst) {
                if let Ok(fresh) = spawn_worker(i, rx, state) {
                    let dead = std::mem::replace(handle, fresh);
                    let _ = dead.join();
                    state.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn accept_loop(
    listener: &AnyListener,
    tx: std::sync::mpsc::SyncSender<AnyStream>,
    state: &ServerState,
) {
    // Connections the queue refused, kept just long enough to answer
    // `Overloaded` without blocking the accept path.
    let mut to_reject: VecDeque<AnyStream> = VecDeque::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        while let Some(mut conn) = to_reject.pop_front() {
            state
                .stats
                .rejected_overloaded
                .fetch_add(1, Ordering::Relaxed);
            let err = ErrorResponse {
                code: ErrorCode::Overloaded,
                msg: "request queue is full".into(),
            };
            let _ = conn.set_nonblocking(false);
            let _ = write_frame(&mut conn, kind::RESP_ERROR, &err.encode());
            conn.close();
        }
        match listener.accept() {
            Ok(conn) => {
                let _ = conn.set_nonblocking(false);
                match tx.try_send(conn) {
                    Ok(()) => {
                        state.stats.connections.fetch_add(1, Ordering::Relaxed);
                        state.queue_len.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(conn)) => to_reject.push_back(conn),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if is_idle_timeout(&e) => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping `tx` lets workers drain the queue and then exit.
}

fn worker_loop(index: usize, rx: &Mutex<Receiver<AnyStream>>, state: &ServerState) {
    state.workers_alive.fetch_add(1, Ordering::Relaxed);
    // Readiness must drop even if this loop unwinds or is replaced.
    struct Alive<'a>(&'a AtomicU64);
    impl Drop for Alive<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _alive = Alive(&state.workers_alive);
    let slot = Arc::clone(&state.slots[index % state.slots.len().max(1)]);
    loop {
        slot.beat(state.now_ms());
        let conn = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.recv()
        };
        let mut conn = match conn {
            Ok(c) => c,
            Err(_) => break, // accept loop gone and queue drained
        };
        state.queue_len.fetch_sub(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_conn(&mut conn, state, &slot)));
        // A panic can escape mid-request: clear the watchdog registration
        // so a dead request's cancel token is never tripped later.
        slot.end_request();
        if outcome.is_err() {
            state.stats.panics.fetch_add(1, Ordering::Relaxed);
            conn.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::CacheOutcome;
    use uov_isg::{ivec, RectDomain};

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    fn start() -> ServerHandle {
        serve("127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_plan_over_tcp() {
        let server = start();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let resp = client
            .plan(&PlanRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            })
            .unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        assert_eq!(resp.cost, 2);
        assert_eq!(resp.degradation, DegradationCode::None);
        assert_eq!(resp.cache, CacheOutcome::Miss);
        assert_ne!(resp.certificate_hash, 0);
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.protocol_errors, 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache_with_identical_certificates() {
        let server = start();
        let req = PlanRequest {
            stencil: fig1(),
            objective: ObjectiveSpec::KnownBounds(RectDomain::grid(6, 6)),
            deadline_ms: 0,
            flags: 0,
        };
        let mut client = Client::connect(server.endpoint()).unwrap();
        let cold = client.plan(&req).unwrap();
        let warm = client.plan(&req).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(cold.uov, warm.uov);
        assert_eq!(cold.cost, warm.cost);
        assert_eq!(cold.certificate_hash, warm.certificate_hash);
        assert_eq!(server.cache_stats().hits, 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let server = start();
        let req = PlanRequest {
            stencil: fig1(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: FLAG_NO_CACHE,
        };
        let mut client = Client::connect(server.endpoint()).unwrap();
        let a = client.plan(&req).unwrap();
        let b = client.plan(&req).unwrap();
        assert_eq!(a.cache, CacheOutcome::Miss);
        assert_eq!(b.cache, CacheOutcome::Miss);
        assert_eq!((a.uov, a.cost), (b.uov.clone(), b.cost));
        server.shutdown();
        server.join();
    }

    #[test]
    fn client_shutdown_drains_the_server() {
        let server = start();
        let endpoint = server.endpoint().to_string();
        let mut client = Client::connect(&endpoint).unwrap();
        client.shutdown_server().unwrap();
        let stats = server.join();
        // The drain completed; a fresh connection must now fail.
        assert!(
            Client::connect(&endpoint).is_err() || {
                // The OS may still accept into the dead listener's backlog;
                // a plan over such a connection must then fail.
                let mut c = Client::connect(&endpoint).unwrap();
                c.plan(&PlanRequest {
                    stencil: fig1(),
                    objective: ObjectiveSpec::ShortestVector,
                    deadline_ms: 0,
                    flags: 0,
                })
                .is_err()
            }
        );
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn replicated_entries_store_after_recertification_and_serve_hits() {
        let server = start();
        let direct = find_best_uov(
            &fig1(),
            ObjectiveSpec::ShortestVector.as_objective(),
            &SearchConfig::default(),
        )
        .unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();

        let resp = client
            .replicate(&ReplicateRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                uov: direct.uov.clone(),
                cost: direct.cost,
                repair: false,
            })
            .unwrap();
        assert!(resp.stored);

        // A push whose cost does not re-certify is refused with a typed
        // error — a lying peer cannot poison this cache.
        let err = client
            .replicate(&ReplicateRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                uov: direct.uov.clone(),
                cost: direct.cost + 7,
                repair: false,
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Rejected {
                    code: ErrorCode::Malformed,
                    ..
                }
            ),
            "{err:?}"
        );

        // The replicated entry serves a byte-identical warm hit, and the
        // hit is attributed to replication.
        let plan = client
            .plan(&PlanRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            })
            .unwrap();
        assert_eq!(plan.cache, CacheOutcome::Hit);
        assert_eq!(plan.uov, direct.uov);
        assert_eq!(plan.cost, direct.cost);

        // Repair-flagged stores count as anti-entropy repairs.
        let rep = client
            .replicate(&ReplicateRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                uov: direct.uov.clone(),
                cost: direct.cost,
                repair: true,
            })
            .unwrap();
        assert!(rep.stored);

        let cache = server.cache_stats();
        assert_eq!(cache.replicated_entries, 2);
        assert_eq!(cache.replica_hits, 1);
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.anti_entropy_repairs, 1);
    }

    #[test]
    fn stale_work_unit_epochs_are_fenced() {
        let server = start();
        let stencil = fig1();
        let objective = ObjectiveSpec::ShortestVector;
        // A legal mid-search snapshot produced by the engine itself.
        let prefix = SearchConfig {
            budget: Budget::unlimited().with_max_nodes(2),
            threads: 1,
            ..SearchConfig::default()
        };
        let (_, mut snap) = search_unit(None, &stencil, objective.as_objective(), &prefix).unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let send = |client: &mut Client, snap: &uov_core::checkpoint::Snapshot| {
            client.workunit(&WorkUnitRequest {
                stencil: stencil.clone(),
                objective: objective.clone(),
                deadline_ms: 0,
                node_budget: 4,
                bound_hint: None,
                snapshot: encode_snapshot(snap).unwrap(),
            })
        };

        snap.epoch = 5;
        let first = send(&mut client, &snap).unwrap();
        let out = decode_snapshot(&first.snapshot).unwrap();
        assert_eq!(out.epoch, 5, "the lease epoch must be echoed");

        // An equal epoch is an idempotent resend of the same lease.
        send(&mut client, &snap).unwrap();

        // A lower epoch is a superseded lease: fenced with StaleEpoch.
        snap.epoch = 3;
        let err = send(&mut client, &snap).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Rejected {
                    code: ErrorCode::StaleEpoch,
                    ..
                }
            ),
            "{err:?}"
        );

        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.stale_epoch_rejections, 1);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("uov-service-test-{}.sock", std::process::id()));
        let endpoint = format!("unix:{}", path.display());
        let server = serve(&endpoint, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let resp = client
            .plan(&PlanRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            })
            .unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        server.shutdown();
        server.join();
        let _ = std::fs::remove_file(&path);
    }
}
