//! The planning server: a fixed worker pool behind a bounded accept
//! queue, speaking the framed protocol of [`crate::proto`].
//!
//! Admission control is explicit and typed. The accept loop never blocks
//! on a slow worker: connections land in a bounded queue, and when the
//! queue is full the connection is answered with one `Overloaded` error
//! frame and closed — load-shedding at the door instead of unbounded
//! buffering. Each worker isolates connection handling behind
//! `catch_unwind`, so a panic poisons one connection, not the pool.
//!
//! Shutdown is a drain, not a kill: the shutdown flag stops the accept
//! loop, in-flight requests run to completion, frames arriving after the
//! flag are answered `ShuttingDown`, and [`ServerHandle::join`] returns
//! once every worker has exited.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use uov_core::certify::certify;
use uov_core::search::{find_best_uov, SearchConfig, SearchStats};
use uov_core::{Budget, SearchResult};
use uov_isg::Stencil;

use crate::error::{ErrorCode, ServiceError};
use crate::plan_cache::{CacheStats, PlanCache, Planned, DEFAULT_CACHE_CAPACITY};
use crate::proto::{
    kind, read_frame, write_frame, DegradationCode, ErrorResponse, ObjectiveSpec, PlanRequest,
    PlanResponse, FLAG_NO_CACHE,
};

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections (and running searches).
    pub workers: usize,
    /// Bounded connection queue depth between accept and the workers.
    /// A full queue rejects new connections with `Overloaded`.
    pub queue_depth: usize,
    /// Branch-and-bound threads per search (`0`/`1` = sequential).
    pub search_threads: usize,
    /// Distinct canonical plans retained by the cache.
    pub cache_capacity: usize,
    /// Consecutive ~100 ms idle polls tolerated on a connection before it
    /// is dropped (half-open peer protection). Default ≈ 30 s.
    pub idle_ticks: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            search_threads: 1,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            idle_ticks: 300,
        }
    }
}

/// A snapshot of the server's monotone traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted into the queue.
    pub connections: u64,
    /// Connections rejected at the door with `Overloaded`.
    pub rejected_overloaded: u64,
    /// Plan requests admitted to a worker.
    pub requests: u64,
    /// Plan responses successfully written.
    pub responses: u64,
    /// Frames rejected for protocol violations (bad magic, CRC, torn
    /// frames, malformed payloads).
    pub protocol_errors: u64,
    /// Requests answered `ShuttingDown` during the drain.
    pub rejected_shutdown: u64,
    /// Connection handlers that panicked (isolated; the worker survived).
    pub panics: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    rejected_overloaded: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
    rejected_shutdown: AtomicU64,
    panics: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

// ------------------------------------------------------------- transports

/// A listening socket: TCP, or a Unix domain socket for `unix:<path>`
/// endpoints.
enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted (or dialed) connection.
pub(crate) enum AnyStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyListener {
    fn bind(endpoint: &str) -> io::Result<(Self, String)> {
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix:") {
            // A stale socket file from a crashed server blocks rebinding.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            return Ok((AnyListener::Unix(l), format!("unix:{path}")));
        }
        #[cfg(not(unix))]
        if endpoint.starts_with("unix:") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        let l = TcpListener::bind(endpoint)?;
        let local = l.local_addr()?;
        Ok((AnyListener::Tcp(l), local.to_string()))
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(AnyStream::Tcp(s))
            }
            #[cfg(unix)]
            AnyListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(AnyStream::Unix(s))
            }
        }
    }
}

impl AnyStream {
    pub(crate) fn connect(endpoint: &str) -> io::Result<Self> {
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix:") {
            return Ok(AnyStream::Unix(UnixStream::connect(path)?));
        }
        #[cfg(not(unix))]
        if endpoint.starts_with("unix:") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        Ok(AnyStream::Tcp(TcpStream::connect(endpoint)?))
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn close(&self) {
        match self {
            AnyStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            AnyStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

// ----------------------------------------------------------------- server

struct ServerState {
    config: ServerConfig,
    cache: PlanCache,
    shutdown: AtomicBool,
    stats: Counters,
}

impl ServerState {
    /// Run one plan request through the cache (or around it, for
    /// `FLAG_NO_CACHE`) and certify the answer server-side.
    fn handle_plan(&self, req: &PlanRequest) -> Result<PlanResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let budget = if req.deadline_ms > 0 {
            Budget::unlimited().with_deadline(Duration::from_millis(u64::from(req.deadline_ms)))
        } else {
            Budget::unlimited()
        };
        let config = SearchConfig {
            budget,
            threads: self.config.search_threads,
            ..SearchConfig::default()
        };
        let solve = |s: &Stencil, o: &ObjectiveSpec| {
            find_best_uov(s, o.as_objective(), &config).map_err(|e| e.to_string())
        };
        let planned: Planned = if req.flags & FLAG_NO_CACHE != 0 {
            self.cache.direct(&req.stencil, &req.objective, &solve)
        } else {
            self.cache.plan(&req.stencil, &req.objective, solve)
        }
        .map_err(|msg| ErrorResponse {
            code: ErrorCode::Internal,
            msg,
        })?;

        // Re-certify every answer against the *request's* problem. The
        // certificate hash deliberately excludes search statistics, so a
        // cache hit certifies to exactly the hash a cold solve yields.
        let as_result = SearchResult {
            uov: planned.uov.clone(),
            cost: planned.cost,
            stats: SearchStats::default(),
            degradation: planned.degradation,
            checkpoint_error: None,
        };
        let cert =
            certify(&req.stencil, &req.objective.as_objective(), &as_result).map_err(|e| {
                ErrorResponse {
                    code: ErrorCode::Internal,
                    msg: format!("certification failed: {e}"),
                }
            })?;
        Ok(PlanResponse {
            uov: planned.uov,
            cost: planned.cost,
            certificate_hash: cert.transcript_hash,
            degradation: DegradationCode::from_exhausted(planned.degradation.map(|d| d.reason)),
            cache: planned.cache,
        })
    }
}

fn is_idle_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serve one connection until EOF, protocol failure, idle expiry, or
/// drain. Never panics outward; the caller wraps it in `catch_unwind`
/// anyway for defence in depth.
fn handle_conn(stream: &mut AnyStream, state: &ServerState) {
    // A short read timeout doubles as the shutdown/idle poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut idle: u32 = 0;
    loop {
        match read_frame(stream) {
            Ok(None) => break,
            Ok(Some((kind::REQ_PLAN, payload))) => {
                idle = 0;
                if state.shutdown.load(Ordering::SeqCst) {
                    state
                        .stats
                        .rejected_shutdown
                        .fetch_add(1, Ordering::Relaxed);
                    let err = ErrorResponse {
                        code: ErrorCode::ShuttingDown,
                        msg: "server is draining".into(),
                    };
                    let _ = write_frame(stream, kind::RESP_ERROR, &err.encode());
                    break;
                }
                match PlanRequest::decode(&payload) {
                    Ok(req) => match state.handle_plan(&req) {
                        Ok(resp) => {
                            if write_frame(stream, kind::RESP_PLAN, &resp.encode()).is_err() {
                                break;
                            }
                            state.stats.responses.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(err) => {
                            if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                                break;
                            }
                        }
                    },
                    Err(e) => {
                        // The frame itself was intact (CRC passed), so the
                        // stream stays at a frame boundary: report and
                        // keep the connection.
                        state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let err = ErrorResponse {
                            code: ErrorCode::Malformed,
                            msg: e.to_string(),
                        };
                        if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(Some((kind::REQ_SHUTDOWN, _))) => {
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(stream, kind::RESP_SHUTDOWN_ACK, &[]);
                break;
            }
            Ok(Some((other, _))) => {
                state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let err = ErrorResponse {
                    code: ErrorCode::Unsupported,
                    msg: format!("unknown frame kind {other}"),
                };
                if write_frame(stream, kind::RESP_ERROR, &err.encode()).is_err() {
                    break;
                }
            }
            Err(ServiceError::Io(e)) if is_idle_timeout(&e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                idle += 1;
                if idle > state.config.idle_ticks {
                    break;
                }
            }
            Err(ServiceError::Io(_)) => break,
            Err(e) => {
                // Bad magic, wrong version, oversized prefix, CRC
                // mismatch, torn frame: the stream position is no longer
                // trustworthy, so answer (best-effort) and drop.
                state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let code = match e {
                    ServiceError::UnsupportedVersion(_) => ErrorCode::Unsupported,
                    _ => ErrorCode::Malformed,
                };
                let err = ErrorResponse {
                    code,
                    msg: e.to_string(),
                };
                let _ = write_frame(stream, kind::RESP_ERROR, &err.encode());
                break;
            }
        }
    }
    stream.close();
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    endpoint: String,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound endpoint — for TCP this resolves an `:0` request
    /// to the assigned port (`"127.0.0.1:43817"`), for Unix sockets it is
    /// the `unix:<path>` string.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Begin a graceful drain: stop accepting, finish in-flight work,
    /// answer new frames with `ShuttingDown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun (via [`Self::shutdown`] or a client's
    /// `REQ_SHUTDOWN` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Current traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.state.stats.snapshot()
    }

    /// Current plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Wait for the drain to finish: the accept loop and every worker
    /// exit, in-flight connections included.
    pub fn join(mut self) -> ServerStats {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.state.stats.snapshot()
    }
}

/// Bind `endpoint` (a TCP address like `"127.0.0.1:0"`, or
/// `"unix:<path>"`) and serve planning requests until shutdown.
///
/// # Errors
///
/// [`ServiceError::Io`] if the endpoint cannot be bound.
pub fn serve(endpoint: &str, config: ServerConfig) -> Result<ServerHandle, ServiceError> {
    let workers = config.workers.max(1);
    let queue_depth = config.queue_depth.max(1);
    let (listener, bound) = AnyListener::bind(endpoint)?;
    listener.set_nonblocking(true)?;

    let state = Arc::new(ServerState {
        cache: PlanCache::new(config.cache_capacity.max(1)),
        config,
        shutdown: AtomicBool::new(false),
        stats: Counters::default(),
    });

    let (tx, rx) = sync_channel::<AnyStream>(queue_depth);
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let handle = thread::Builder::new()
            .name(format!("uov-service-worker-{i}"))
            .spawn(move || worker_loop(&rx, &state))
            .map_err(ServiceError::Io)?;
        worker_handles.push(handle);
    }

    let accept_state = Arc::clone(&state);
    let accept_thread = thread::Builder::new()
        .name("uov-service-accept".into())
        .spawn(move || accept_loop(&listener, tx, &accept_state))
        .map_err(ServiceError::Io)?;

    Ok(ServerHandle {
        endpoint: bound,
        state,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
    })
}

fn accept_loop(
    listener: &AnyListener,
    tx: std::sync::mpsc::SyncSender<AnyStream>,
    state: &ServerState,
) {
    // Connections the queue refused, kept just long enough to answer
    // `Overloaded` without blocking the accept path.
    let mut to_reject: VecDeque<AnyStream> = VecDeque::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        while let Some(mut conn) = to_reject.pop_front() {
            state
                .stats
                .rejected_overloaded
                .fetch_add(1, Ordering::Relaxed);
            let err = ErrorResponse {
                code: ErrorCode::Overloaded,
                msg: "request queue is full".into(),
            };
            let _ = conn.set_nonblocking(false);
            let _ = write_frame(&mut conn, kind::RESP_ERROR, &err.encode());
            conn.close();
        }
        match listener.accept() {
            Ok(conn) => {
                let _ = conn.set_nonblocking(false);
                match tx.try_send(conn) {
                    Ok(()) => {
                        state.stats.connections.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(conn)) => to_reject.push_back(conn),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if is_idle_timeout(&e) => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping `tx` lets workers drain the queue and then exit.
}

fn worker_loop(rx: &Mutex<Receiver<AnyStream>>, state: &ServerState) {
    loop {
        let conn = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.recv()
        };
        let mut conn = match conn {
            Ok(c) => c,
            Err(_) => break, // accept loop gone and queue drained
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_conn(&mut conn, state)));
        if outcome.is_err() {
            state.stats.panics.fetch_add(1, Ordering::Relaxed);
            conn.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::CacheOutcome;
    use uov_isg::{ivec, RectDomain};

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    fn start() -> ServerHandle {
        serve("127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_plan_over_tcp() {
        let server = start();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let resp = client
            .plan(&PlanRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            })
            .unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        assert_eq!(resp.cost, 2);
        assert_eq!(resp.degradation, DegradationCode::None);
        assert_eq!(resp.cache, CacheOutcome::Miss);
        assert_ne!(resp.certificate_hash, 0);
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.protocol_errors, 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache_with_identical_certificates() {
        let server = start();
        let req = PlanRequest {
            stencil: fig1(),
            objective: ObjectiveSpec::KnownBounds(RectDomain::grid(6, 6)),
            deadline_ms: 0,
            flags: 0,
        };
        let mut client = Client::connect(server.endpoint()).unwrap();
        let cold = client.plan(&req).unwrap();
        let warm = client.plan(&req).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(cold.uov, warm.uov);
        assert_eq!(cold.cost, warm.cost);
        assert_eq!(cold.certificate_hash, warm.certificate_hash);
        assert_eq!(server.cache_stats().hits, 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let server = start();
        let req = PlanRequest {
            stencil: fig1(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: FLAG_NO_CACHE,
        };
        let mut client = Client::connect(server.endpoint()).unwrap();
        let a = client.plan(&req).unwrap();
        let b = client.plan(&req).unwrap();
        assert_eq!(a.cache, CacheOutcome::Miss);
        assert_eq!(b.cache, CacheOutcome::Miss);
        assert_eq!((a.uov, a.cost), (b.uov.clone(), b.cost));
        server.shutdown();
        server.join();
    }

    #[test]
    fn client_shutdown_drains_the_server() {
        let server = start();
        let endpoint = server.endpoint().to_string();
        let mut client = Client::connect(&endpoint).unwrap();
        client.shutdown_server().unwrap();
        let stats = server.join();
        // The drain completed; a fresh connection must now fail.
        assert!(
            Client::connect(&endpoint).is_err() || {
                // The OS may still accept into the dead listener's backlog;
                // a plan over such a connection must then fail.
                let mut c = Client::connect(&endpoint).unwrap();
                c.plan(&PlanRequest {
                    stencil: fig1(),
                    objective: ObjectiveSpec::ShortestVector,
                    deadline_ms: 0,
                    flags: 0,
                })
                .is_err()
            }
        );
        assert_eq!(stats.panics, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("uov-service-test-{}.sock", std::process::id()));
        let endpoint = format!("unix:{}", path.display());
        let server = serve(&endpoint, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let resp = client
            .plan(&PlanRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            })
            .unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        server.shutdown();
        server.join();
        let _ = std::fs::remove_file(&path);
    }
}
