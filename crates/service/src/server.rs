//! The planning server: a nonblocking readiness loop (epoll on Linux,
//! `poll(2)` on other Unixes, a timed scan elsewhere) feeding a bounded
//! compute pool, speaking the framed protocol of [`crate::proto`].
//!
//! One event thread owns every socket. Connections are per-connection
//! state machines: bytes accumulate in a read buffer and frames are
//! parsed incrementally, so a thousand idle or slow connections cost no
//! threads and a slow-loris sender (one byte per second) is reaped by
//! the read deadline like any other stalled peer. Parsed compute frames
//! are admitted — or shed — on the event thread and executed on a fixed
//! pool of worker threads, with per-tenant weighted-fair dequeue so one
//! hog tenant cannot starve compliant ones.
//!
//! Admission control is explicit, typed, and tiered. Tier 1: a tenant
//! over its token-bucket rate or in-flight cap is shed with
//! `Overloaded` (`shed_over_quota`). Tier 2: once the compute queue
//! reaches [`ServerConfig::degrade_watermark`], in-budget plan requests
//! are served through the certified always-legal `Σvᵢ` fast path
//! (`degraded_under_pressure`, never cached) instead of queuing a full
//! search. Tier 3: a full queue rejects with `Overloaded`
//! (`rejected_overloaded`). Compliant traffic is only dropped after
//! both shedding tiers.
//!
//! Shutdown is a drain, not a kill: the drain flag stops the accept
//! path, in-flight searches run to completion, queued-but-unstarted
//! work and frames arriving after the flag are answered `ShuttingDown`,
//! and [`ServerHandle::join`] returns once the event thread and every
//! worker have exited. Health and stats probes are answered inline on
//! the event thread — even mid-drain, and even while every worker is
//! busy or wedged.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uov_core::certify::certify;
use uov_core::checkpoint::{decode_snapshot, encode_snapshot};
use uov_core::search::{
    find_best_uov, initial_uov, search_unit, try_cost_of, SearchConfig, SearchStats,
};
use uov_core::wire::crc32;
use uov_core::{fingerprint, Budget, SearchResult};
use uov_isg::Stencil;

use crate::error::{ErrorCode, ServiceError};
use crate::plan_cache::{CacheStats, PlanCache, Planned, WarmCacheError, DEFAULT_CACHE_CAPACITY};
use crate::proto::{
    encode_frame, kind, BatchRequest, BatchResponse, BoundGossip, CacheOutcome, DegradationCode,
    ErrorResponse, HealthResponse, ObjectiveSpec, PlanRequest, PlanResponse, ReplicateRequest,
    ReplicateResponse, StatsResponse, TenantGauge, WorkUnitRequest, WorkUnitResponse,
    FLAG_NO_CACHE, HEADER_LEN, HEADER_LEN_TENANT, MAGIC, MAX_BATCH_ENTRIES, MAX_PAYLOAD, VERSION,
    VERSION_TENANT,
};

/// Admission quota for one tenant: a token bucket for sustained rate, a
/// concurrency cap, and a weighted-fair-dequeue share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Sustained admission rate, in requests per second (a batch of N
    /// entries charges N tokens). `0` means no sustained refill — only
    /// the initial `burst` is ever admitted.
    pub tokens_per_sec: u64,
    /// Bucket capacity: how many requests may arrive at once before the
    /// rate limit bites. `0` sheds everything from this tenant.
    pub burst: u64,
    /// Maximum frames from this tenant admitted but not yet answered.
    pub max_inflight: u64,
    /// Weighted-fair-dequeue share: a tenant with weight `w` may take
    /// `w` consecutive items from the compute queue before the next
    /// tenant's turn. Minimum effective weight is 1.
    pub weight: u32,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            tokens_per_sec: 10_000,
            burst: 10_000,
            max_inflight: 1024,
            weight: 1,
        }
    }
}

/// Per-tenant admission control for [`ServerConfig::quotas`]. Tenants
/// not listed in `tenants` fall back to `default`.
#[derive(Debug, Clone, Default)]
pub struct QuotaConfig {
    /// Quota applied to tenants without an explicit entry.
    pub default: TenantQuota,
    /// Explicit per-tenant overrides, keyed by the tenant id carried in
    /// version-2 `UOVS` frame headers (version-1 frames are tenant 0).
    pub tenants: HashMap<u32, TenantQuota>,
}

impl QuotaConfig {
    fn for_tenant(&self, tenant: u32) -> &TenantQuota {
        self.tenants.get(&tenant).unwrap_or(&self.default)
    }
}

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Compute-pool threads running searches (the event thread that owns
    /// the sockets is separate and never runs a search).
    pub workers: usize,
    /// Bounded compute-queue depth between admission and the workers.
    /// A full queue sheds further requests with `Overloaded`.
    pub queue_depth: usize,
    /// Branch-and-bound threads per search (`0`/`1` = sequential).
    pub search_threads: usize,
    /// Distinct canonical plans retained by the cache.
    pub cache_capacity: usize,
    /// Read deadline in ~100 ms ticks: a connection that completes no
    /// frame for this long (idle, half-open, or slow-loris) is dropped.
    /// Default ≈ 30 s. Connections with a response in flight or output
    /// still buffered are never reaped.
    pub idle_ticks: u32,
    /// Warm-cache snapshot path. When set, the plan cache is restored
    /// from this file on startup (a missing or corrupt snapshot starts
    /// cold, never fails the boot) and persisted to it atomically on a
    /// graceful drain, so a bounced replica keeps its hot set.
    pub warm_cache: Option<PathBuf>,
    /// How long a worker may stay busy on a single request before the
    /// watchdog trips its budget's cancellation token, degrading the
    /// search to the best certified legal answer found so far.
    /// `Duration::ZERO` (the default) disables wedge detection —
    /// legitimate unbounded searches are never cut.
    pub wedge_timeout: Duration,
    /// Per-tenant admission quotas (token-bucket rate, in-flight cap,
    /// weighted-fair share). `None` (the default) disables quota
    /// enforcement entirely; the weighted-fair dequeue still applies
    /// with uniform weight 1.
    pub quotas: Option<QuotaConfig>,
    /// Compute-queue length at which in-budget plan requests stop
    /// queuing full searches and are served through the certified
    /// always-legal `Σvᵢ` fast path instead (`DegradationCode::
    /// Pressure`, never cached). `0` (the default) disables the tier.
    pub degrade_watermark: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            search_threads: 1,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            idle_ticks: 300,
            warm_cache: None,
            wedge_timeout: Duration::ZERO,
            quotas: None,
            degrade_watermark: 0,
        }
    }
}

/// A snapshot of the server's monotone traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted by the event loop.
    pub connections: u64,
    /// Requests shed with `Overloaded` because the compute queue was
    /// full (load-shedding tier 3).
    pub rejected_overloaded: u64,
    /// Plan requests admitted to a worker.
    pub requests: u64,
    /// Response frames fully written back to a client.
    pub responses: u64,
    /// Frames rejected for protocol violations (bad magic, CRC, torn
    /// frames, malformed payloads).
    pub protocol_errors: u64,
    /// Requests answered `ShuttingDown` during the drain.
    pub rejected_shutdown: u64,
    /// Worker executions that panicked (isolated; the pool survived).
    pub panics: u64,
    /// Frames whose CRC32 did not match their contents (bit damage in
    /// transit). A subset of `protocol_errors`.
    pub crc_failures: u64,
    /// Frames not starting with the protocol magic. A subset of
    /// `protocol_errors`.
    pub bad_magic: u64,
    /// Frames declaring an unsupported protocol version. A subset of
    /// `protocol_errors`.
    pub bad_version: u64,
    /// Frames whose declared payload exceeded [`crate::proto::MAX_PAYLOAD`]
    /// (rejected before allocation). A subset of `protocol_errors`.
    pub oversized_frames: u64,
    /// Wedged requests whose budgets the watchdog cancelled.
    pub watchdog_cancels: u64,
    /// Worker threads the watchdog found dead and respawned.
    pub worker_restarts: u64,
    /// Distributed-search work units executed (`REQ_WORKUNIT`).
    pub workunits: u64,
    /// Warm-cache snapshots refused at startup because the file was
    /// unreadable or damaged (bad magic, torn section, CRC mismatch).
    pub warm_load_corrupt: u64,
    /// Warm-cache snapshots refused at startup because a newer server
    /// wrote them — a rollback signature, not disk damage.
    pub warm_load_version: u64,
    /// Work units rejected because their fencing epoch was superseded by
    /// a later lease for the same problem (`StaleEpoch`) — zombie or
    /// replayed completions that must not reach a merge.
    pub stale_epoch_rejections: u64,
    /// Replication pushes flagged as anti-entropy repairs that were
    /// re-certified and stored (a peer healing this replica's cache
    /// after it restarted).
    pub anti_entropy_repairs: u64,
    /// Requests shed with `Overloaded` because their tenant exceeded its
    /// admission quota — rate tokens or in-flight cap (tier 1).
    pub shed_over_quota: u64,
    /// In-budget plan requests served through the certified `Σvᵢ` fast
    /// path because the compute queue reached the degrade watermark
    /// (tier 2; such answers are never cached).
    pub degraded_under_pressure: u64,
    /// `REQ_BATCH` frames received (before admission).
    pub batch_frames: u64,
    /// Connections reaped by the idle/slow-loris read deadline.
    pub idle_timeouts: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    rejected_overloaded: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
    rejected_shutdown: AtomicU64,
    panics: AtomicU64,
    crc_failures: AtomicU64,
    bad_magic: AtomicU64,
    bad_version: AtomicU64,
    oversized_frames: AtomicU64,
    watchdog_cancels: AtomicU64,
    worker_restarts: AtomicU64,
    workunits: AtomicU64,
    warm_load_corrupt: AtomicU64,
    warm_load_version: AtomicU64,
    stale_epoch_rejections: AtomicU64,
    anti_entropy_repairs: AtomicU64,
    shed_over_quota: AtomicU64,
    degraded_under_pressure: AtomicU64,
    batch_frames: AtomicU64,
    idle_timeouts: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            crc_failures: self.crc_failures.load(Ordering::Relaxed),
            bad_magic: self.bad_magic.load(Ordering::Relaxed),
            bad_version: self.bad_version.load(Ordering::Relaxed),
            oversized_frames: self.oversized_frames.load(Ordering::Relaxed),
            watchdog_cancels: self.watchdog_cancels.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            workunits: self.workunits.load(Ordering::Relaxed),
            warm_load_corrupt: self.warm_load_corrupt.load(Ordering::Relaxed),
            warm_load_version: self.warm_load_version.load(Ordering::Relaxed),
            stale_epoch_rejections: self.stale_epoch_rejections.load(Ordering::Relaxed),
            anti_entropy_repairs: self.anti_entropy_repairs.load(Ordering::Relaxed),
            shed_over_quota: self.shed_over_quota.load(Ordering::Relaxed),
            degraded_under_pressure: self.degraded_under_pressure.load(Ordering::Relaxed),
            batch_frames: self.batch_frames.load(Ordering::Relaxed),
            idle_timeouts: self.idle_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Count one protocol failure, both in the aggregate and in the
    /// per-class counter chaos tests assert on.
    fn protocol_error(&self, e: &ServiceError) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        match e {
            ServiceError::CrcMismatch => {
                self.crc_failures.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::BadMagic => {
                self.bad_magic.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::UnsupportedVersion(_) => {
                self.bad_version.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::FrameTooLarge(_) => {
                self.oversized_frames.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

// ------------------------------------------------------------- transports

/// A listening socket: TCP, or a Unix domain socket for `unix:<path>`
/// endpoints.
enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted (or dialed) connection.
pub(crate) enum AnyStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyListener {
    fn bind(endpoint: &str) -> io::Result<(Self, String)> {
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix:") {
            // A stale socket file from a crashed server blocks rebinding.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            return Ok((AnyListener::Unix(l), format!("unix:{path}")));
        }
        #[cfg(not(unix))]
        if endpoint.starts_with("unix:") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        let l = TcpListener::bind(endpoint)?;
        let local = l.local_addr()?;
        Ok((AnyListener::Tcp(l), local.to_string()))
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(AnyStream::Tcp(s))
            }
            #[cfg(unix)]
            AnyListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(AnyStream::Unix(s))
            }
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        match self {
            AnyListener::Tcp(l) => l.as_raw_fd(),
            AnyListener::Unix(l) => l.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> i32 {
        -1
    }
}

impl AnyStream {
    pub(crate) fn connect(endpoint: &str) -> io::Result<Self> {
        #[cfg(unix)]
        if let Some(path) = endpoint.strip_prefix("unix:") {
            return Ok(AnyStream::Unix(UnixStream::connect(path)?));
        }
        #[cfg(not(unix))]
        if endpoint.starts_with("unix:") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        Ok(AnyStream::Tcp(TcpStream::connect(endpoint)?))
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn close(&self) {
        match self {
            AnyStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            AnyStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        match self {
            AnyStream::Tcp(s) => s.as_raw_fd(),
            AnyStream::Unix(s) => s.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> i32 {
        -1
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

// ------------------------------------------------------------- readiness

/// One readiness report from the poller.
struct PollEvent {
    token: u64,
    readable: bool,
    writable: bool,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Linux: epoll plus a self-pipe for compute-pool wakeups. Raw FFI —
/// std already links libc, so no new dependency.
#[cfg(target_os = "linux")]
mod poller {
    use super::{PollEvent, TOKEN_WAKE};
    use std::io;
    use std::os::raw::{c_int, c_void};

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    pub(crate) struct Poller {
        epfd: c_int,
        wake_rd: c_int,
    }

    /// The write end of the self-pipe; cloned into every worker so a
    /// finished computation can interrupt `epoll_wait` immediately.
    pub(crate) struct Notifier {
        wake_wr: c_int,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<(Poller, Notifier)> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let mut fds: [c_int; 2] = [0; 2];
            if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
                let e = io::Error::last_os_error();
                unsafe { close(epfd) };
                return Err(e);
            }
            let p = Poller {
                epfd,
                wake_rd: fds[0],
            };
            p.ctl(EPOLL_CTL_ADD, fds[0], TOKEN_WAKE, EPOLLIN)?;
            Ok((p, Notifier { wake_wr: fds[1] }))
        }

        fn ctl(&self, op: c_int, fd: c_int, token: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn mask(readable: bool, writable: bool) -> u32 {
            let mut m = 0;
            if readable {
                m |= EPOLLIN;
            }
            if writable {
                m |= EPOLLOUT;
            }
            m
        }

        pub(crate) fn add(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, Self::mask(readable, writable))
        }

        pub(crate) fn set(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, Self::mask(readable, writable))
        }

        pub(crate) fn del(&self, fd: i32) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        pub(crate) fn wait(&self, timeout_ms: i32) -> Vec<PollEvent> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = loop {
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                };
                if n >= 0 {
                    break n as usize;
                }
                if io::Error::last_os_error().kind() != io::ErrorKind::Interrupted {
                    break 0;
                }
            };
            buf[..n]
                .iter()
                .map(|ev| {
                    let bits = ev.events;
                    PollEvent {
                        token: ev.data,
                        readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                        writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    }
                })
                .collect()
        }

        pub(crate) fn drain_wake(&self) {
            let mut sink = [0u8; 256];
            loop {
                let n =
                    unsafe { read(self.wake_rd, sink.as_mut_ptr().cast::<c_void>(), sink.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_rd);
                close(self.epfd);
            }
        }
    }

    impl Notifier {
        pub(crate) fn notify(&self) {
            let byte = 1u8;
            unsafe {
                let _ = write(self.wake_wr, (&raw const byte).cast::<c_void>(), 1);
            }
        }
    }

    impl Drop for Notifier {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_wr);
            }
        }
    }
}

/// Other Unixes: `poll(2)` over a registry rebuilt per wait, plus a
/// self-pipe. Slower than epoll but identical semantics.
#[cfg(all(unix, not(target_os = "linux")))]
mod poller {
    use super::{PollEvent, TOKEN_WAKE};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::sync::Mutex;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    pub(crate) struct Poller {
        registry: Mutex<Vec<(c_int, u64, bool, bool)>>,
        wake_rd: c_int,
    }

    pub(crate) struct Notifier {
        wake_wr: c_int,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<(Poller, Notifier)> {
            let mut fds: [c_int; 2] = [0; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok((
                Poller {
                    registry: Mutex::new(Vec::new()),
                    wake_rd: fds[0],
                },
                Notifier { wake_wr: fds[1] },
            ))
        }

        pub(crate) fn add(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap_or_else(|p| p.into_inner());
            reg.push((fd, token, readable, writable));
            Ok(())
        }

        pub(crate) fn set(
            &self,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap_or_else(|p| p.into_inner());
            for slot in reg.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, readable, writable);
                    return Ok(());
                }
            }
            reg.push((fd, token, readable, writable));
            Ok(())
        }

        pub(crate) fn del(&self, fd: i32) {
            let mut reg = self.registry.lock().unwrap_or_else(|p| p.into_inner());
            reg.retain(|slot| slot.0 != fd);
        }

        pub(crate) fn wait(&self, timeout_ms: i32) -> Vec<PollEvent> {
            let entries: Vec<(c_int, u64, bool, bool)> = {
                let reg = self.registry.lock().unwrap_or_else(|p| p.into_inner());
                reg.clone()
            };
            let mut fds: Vec<PollFd> = Vec::with_capacity(entries.len() + 1);
            fds.push(PollFd {
                fd: self.wake_rd,
                events: POLLIN,
                revents: 0,
            });
            for &(fd, _, readable, writable) in &entries {
                let mut events = 0;
                if readable {
                    events |= POLLIN;
                }
                if writable {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n <= 0 {
                return Vec::new();
            }
            let mut out = Vec::new();
            if fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                out.push(PollEvent {
                    token: TOKEN_WAKE,
                    readable: true,
                    writable: false,
                });
            }
            for (slot, &(_, token, _, _)) in fds[1..].iter().zip(entries.iter()) {
                let r = slot.revents;
                if r != 0 {
                    out.push(PollEvent {
                        token,
                        readable: r & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: r & (POLLOUT | POLLERR | POLLHUP) != 0,
                    });
                }
            }
            out
        }

        pub(crate) fn drain_wake(&self) {
            let mut sink = [0u8; 256];
            unsafe {
                let _ = read(self.wake_rd, sink.as_mut_ptr().cast::<c_void>(), sink.len());
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_rd);
            }
        }
    }

    impl Notifier {
        pub(crate) fn notify(&self) {
            let byte = 1u8;
            unsafe {
                let _ = write(self.wake_wr, (&raw const byte).cast::<c_void>(), 1);
            }
        }
    }

    impl Drop for Notifier {
        fn drop(&mut self) {
            unsafe {
                close(self.wake_wr);
            }
        }
    }
}

/// Non-Unix fallback: a timed scan. Every registered token is reported
/// ready each tick; spurious readiness is harmless on nonblocking
/// sockets (reads/writes just return `WouldBlock`).
#[cfg(not(unix))]
mod poller {
    use super::PollEvent;
    use std::io;
    use std::sync::Mutex;

    pub(crate) struct Poller {
        tokens: Mutex<Vec<u64>>,
    }

    pub(crate) struct Notifier;

    impl Poller {
        pub(crate) fn new() -> io::Result<(Poller, Notifier)> {
            Ok((
                Poller {
                    tokens: Mutex::new(Vec::new()),
                },
                Notifier,
            ))
        }

        pub(crate) fn add(
            &self,
            _fd: i32,
            token: u64,
            _readable: bool,
            _writable: bool,
        ) -> io::Result<()> {
            let mut reg = self.tokens.lock().unwrap_or_else(|p| p.into_inner());
            if !reg.contains(&token) {
                reg.push(token);
            }
            Ok(())
        }

        pub(crate) fn set(
            &self,
            _fd: i32,
            token: u64,
            _readable: bool,
            _writable: bool,
        ) -> io::Result<()> {
            self.add(_fd, token, _readable, _writable)
        }

        pub(crate) fn del(&self, _fd: i32) {
            // Tokens are cheap; stale ones simply stop matching a
            // connection and are ignored by the event loop.
        }

        pub(crate) fn wait(&self, timeout_ms: i32) -> Vec<PollEvent> {
            std::thread::sleep(std::time::Duration::from_millis(
                (timeout_ms.max(1) as u64).min(10),
            ));
            let reg = self.tokens.lock().unwrap_or_else(|p| p.into_inner());
            reg.iter()
                .map(|&token| PollEvent {
                    token,
                    readable: true,
                    writable: true,
                })
                .collect()
        }

        pub(crate) fn drain_wake(&self) {}
    }

    impl Notifier {
        pub(crate) fn notify(&self) {}
    }
}

// ------------------------------------------------------------- scheduler

/// One admitted compute frame, queued for a worker.
struct WorkItem {
    token: u64,
    tenant: u32,
    kind: u8,
    payload: Vec<u8>,
    /// Serve through the certified `Σvᵢ` pressure fast path instead of a
    /// full search (load-shedding tier 2).
    degrade: bool,
    weight: u32,
}

/// A finished computation, handed back to the event thread for writing.
struct Completion {
    token: u64,
    kind: u8,
    payload: Vec<u8>,
    counts_response: bool,
    close: bool,
}

#[derive(Default)]
struct SchedInner {
    queues: HashMap<u32, VecDeque<WorkItem>>,
    /// Round-robin order of tenants with queued work. Invariant: a
    /// tenant is present here iff its queue exists and is non-empty.
    order: VecDeque<u32>,
    /// Consecutive items already taken from the front tenant this turn.
    deficit: u32,
    closed: bool,
}

/// Weighted-fair compute queue: tenants with queued work take turns, and
/// a tenant with weight `w` takes `w` consecutive items per turn. A hog
/// tenant with a thousand queued frames still yields the pool to a
/// compliant tenant after at most `w` dequeues.
struct Scheduler {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            inner: Mutex::new(SchedInner::default()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        let tenant = item.tenant;
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let was_empty = {
            let q = inner.queues.entry(tenant).or_default();
            let was = q.is_empty();
            q.push_back(item);
            was
        };
        if was_empty {
            inner.order.push_back(tenant);
        }
        drop(inner);
        self.cv.notify_one();
    }

    /// Blocking weighted-fair dequeue; `None` once closed and drained.
    fn pop(&self) -> Option<WorkItem> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(&tenant) = inner.order.front() {
                let item = inner.queues.get_mut(&tenant).and_then(|q| q.pop_front());
                let Some(item) = item else {
                    // Defensive: a stale order entry is dropped, never
                    // served.
                    inner.queues.remove(&tenant);
                    inner.order.pop_front();
                    inner.deficit = 0;
                    continue;
                };
                let now_empty = inner.queues.get(&tenant).is_none_or(|q| q.is_empty());
                inner.deficit += 1;
                if now_empty {
                    inner.queues.remove(&tenant);
                    inner.order.pop_front();
                    inner.deficit = 0;
                } else if inner.deficit >= item.weight.max(1) {
                    inner.order.rotate_left(1);
                    inner.deficit = 0;
                }
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }
}

// ----------------------------------------------------------------- server

/// What one worker is doing right now, read and written under one lock so
/// the watchdog can never cancel a request that registered after its
/// busy-time check (the check and the trip are atomic w.r.t. registration).
#[derive(Default)]
struct BusyState {
    /// Milliseconds (since server start) when the current request began;
    /// `None` while idle.
    since_ms: Option<u64>,
    /// The current request's budget cancellation token.
    cancel: Option<Arc<AtomicBool>>,
}

/// Per-worker liveness bookkeeping for the watchdog.
#[derive(Default)]
struct WorkerSlot {
    /// Milliseconds (since server start) of the worker's last sign of
    /// life — updated on every dequeue and request boundary.
    heartbeat_ms: AtomicU64,
    /// The in-flight request, if any.
    busy: Mutex<BusyState>,
}

impl WorkerSlot {
    fn beat(&self, now_ms: u64) {
        self.heartbeat_ms.store(now_ms, Ordering::Relaxed);
    }

    fn begin_request(&self, now_ms: u64, cancel: Arc<AtomicBool>) {
        let mut busy = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        busy.since_ms = Some(now_ms);
        busy.cancel = Some(cancel);
    }

    fn end_request(&self) {
        let mut busy = self.busy.lock().unwrap_or_else(|p| p.into_inner());
        busy.since_ms = None;
        busy.cancel = None;
    }
}

struct ServerState {
    config: ServerConfig,
    cache: PlanCache,
    shutdown: AtomicBool,
    stats: Counters,
    /// Work items sitting in the compute queue right now.
    queue_len: AtomicU64,
    /// Worker threads currently running their loop.
    workers_alive: AtomicU64,
    /// One slot per worker index, shared with the watchdog.
    slots: Vec<Arc<WorkerSlot>>,
    /// Server start, the epoch for all slot timestamps.
    started: Instant,
    /// The best incumbent bound this replica has proven, as
    /// `(problem fingerprint, saturated cost)`. Piggybacked on stats
    /// frames so mesh coordinators can tighten pruning on sibling
    /// replicas. Staleness is sound: the value is always the cost of a
    /// genuine UOV, so it can only ever *over*-estimate the optimum.
    gossip: Mutex<Option<(u64, u64)>>,
    /// The highest work-unit fencing epoch seen per problem fingerprint.
    /// A unit whose snapshot carries a *lower* epoch than the recorded
    /// fence was superseded by a re-dispatch and is rejected with
    /// `StaleEpoch` before any work runs; an equal epoch is the same
    /// lease resent (idempotent) and is allowed.
    leases: Mutex<HashMap<u64, u64>>,
    /// Frames admitted but not yet answered, per tenant — the in-flight
    /// gauge behind the quota cap and the `REQ_STATS` tenant rows.
    tenant_inflight: Mutex<HashMap<u32, u64>>,
}

impl ServerState {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn gauge_add(&self, tenant: u32) {
        let mut g = self
            .tenant_inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *g.entry(tenant).or_insert(0) += 1;
    }

    fn gauge_sub(&self, tenant: u32) {
        let mut g = self
            .tenant_inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if let Some(v) = g.get_mut(&tenant) {
            *v = v.saturating_sub(1);
            if *v == 0 {
                g.remove(&tenant);
            }
        }
    }

    fn gauge_of(&self, tenant: u32) -> u64 {
        let g = self
            .tenant_inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        g.get(&tenant).copied().unwrap_or(0)
    }

    /// Record a proven incumbent bound for gossip. Costs that do not fit
    /// in the wire's `u64` (or the reserved `u64::MAX`) are dropped — a
    /// missing hint is always sound. For a repeated fingerprint only an
    /// improvement overwrites; a different problem always takes the slot
    /// (most-recent-problem wins, which is what a coordinator polling
    /// mid-search wants).
    fn update_gossip(&self, fp: u64, cost: u128) {
        let Ok(cost) = u64::try_from(cost) else {
            return;
        };
        if cost == u64::MAX || fp == 0 {
            return;
        }
        let mut slot = self.gossip.lock().unwrap_or_else(|p| p.into_inner());
        match *slot {
            Some((f, c)) if f == fp && c <= cost => {}
            _ => *slot = Some((fp, cost)),
        }
    }

    /// The current gossip bound, for stats frames.
    fn gossip_bound(&self) -> Option<BoundGossip> {
        let slot = self.gossip.lock().unwrap_or_else(|p| p.into_inner());
        slot.map(|(fingerprint, cost)| BoundGossip { fingerprint, cost })
    }

    /// The readiness signal served by `REQ_HEALTH`.
    fn health(&self) -> HealthResponse {
        let draining = self.shutdown.load(Ordering::SeqCst);
        let workers_alive = self.workers_alive.load(Ordering::Relaxed) as u32;
        let queue_len = self.queue_len.load(Ordering::Relaxed) as u32;
        let queue_depth = self.config.queue_depth.max(1) as u32;
        HealthResponse {
            ready: !draining && workers_alive > 0 && queue_len < queue_depth,
            draining,
            workers_alive,
            queue_len,
            queue_depth,
        }
    }

    /// The full stats frame, including per-tenant in-flight gauges
    /// (sorted by tenant id for a deterministic wire image).
    fn stats_response(&self) -> StatsResponse {
        let mut tenants: Vec<TenantGauge> = {
            let g = self
                .tenant_inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            g.iter()
                .map(|(&tenant, &inflight)| TenantGauge { tenant, inflight })
                .collect()
        };
        tenants.sort_by_key(|t| t.tenant);
        StatsResponse {
            server: self.stats.snapshot(),
            cache: self.cache.stats(),
            bound: self.gossip_bound(),
            tenants,
        }
    }

    /// Run one plan request through the cache (or around it, for
    /// `FLAG_NO_CACHE`) and certify the answer server-side. The `cancel`
    /// token is wired into the search budget so the watchdog can degrade
    /// a wedged request to a certified legal answer.
    fn handle_plan(
        &self,
        req: &PlanRequest,
        cancel: Arc<AtomicBool>,
    ) -> Result<PlanResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let budget = if req.deadline_ms > 0 {
            Budget::unlimited().with_deadline(Duration::from_millis(u64::from(req.deadline_ms)))
        } else {
            Budget::unlimited()
        }
        .with_cancel_token(cancel);
        let config = SearchConfig {
            budget,
            threads: self.config.search_threads,
            ..SearchConfig::default()
        };
        let solve = |s: &Stencil, o: &ObjectiveSpec| {
            find_best_uov(s, o.as_objective(), &config).map_err(|e| e.to_string())
        };
        let planned: Planned = if req.flags & FLAG_NO_CACHE != 0 {
            self.cache.direct(&req.stencil, &req.objective, &solve)
        } else {
            self.cache.plan(&req.stencil, &req.objective, solve)
        }
        .map_err(|msg| ErrorResponse {
            code: ErrorCode::Internal,
            msg,
        })?;

        // Every served plan is a genuine UOV, so its cost is a sound
        // upper bound worth gossiping (degraded answers included: they
        // are legal, just possibly not optimal).
        self.update_gossip(
            fingerprint(&req.stencil, &req.objective.as_objective()),
            planned.cost,
        );

        // Re-certify every answer against the *request's* problem. The
        // certificate hash deliberately excludes search statistics, so a
        // cache hit certifies to exactly the hash a cold solve yields.
        let as_result = SearchResult {
            uov: planned.uov.clone(),
            cost: planned.cost,
            stats: SearchStats::default(),
            degradation: planned.degradation,
            checkpoint_error: None,
        };
        let cert =
            certify(&req.stencil, &req.objective.as_objective(), &as_result).map_err(|e| {
                ErrorResponse {
                    code: ErrorCode::Internal,
                    msg: format!("certification failed: {e}"),
                }
            })?;
        Ok(PlanResponse {
            uov: planned.uov,
            cost: planned.cost,
            certificate_hash: cert.transcript_hash,
            degradation: DegradationCode::from_exhausted(planned.degradation.map(|d| d.reason)),
            cache: planned.cache,
        })
    }

    /// Serve one plan request through the always-legal `Σvᵢ` fast path
    /// (load-shedding tier 2). No search runs: the sum of the dependence
    /// vectors is a universal occupancy vector for *any* stencil (the
    /// paper's fallback), so the answer is computed, costed, and
    /// certified in microseconds. The response is marked
    /// `DegradationCode::Pressure` and is never cached — a later
    /// uncontended request must get the real optimum.
    fn handle_plan_pressure(&self, req: &PlanRequest) -> Result<PlanResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats
            .degraded_under_pressure
            .fetch_add(1, Ordering::Relaxed);
        let objective = req.objective.as_objective();
        let uov = initial_uov(&req.stencil);
        let cost = try_cost_of(&objective, &uov).map_err(|e| ErrorResponse {
            code: ErrorCode::Internal,
            msg: format!("pressure fast path: {e}"),
        })?;
        let as_result = SearchResult {
            uov: uov.clone(),
            cost,
            stats: SearchStats::default(),
            degradation: None,
            checkpoint_error: None,
        };
        let cert = certify(&req.stencil, &objective, &as_result).map_err(|e| ErrorResponse {
            code: ErrorCode::Internal,
            msg: format!("certification failed: {e}"),
        })?;
        self.update_gossip(fingerprint(&req.stencil, &objective), cost);
        Ok(PlanResponse {
            uov,
            cost,
            certificate_hash: cert.transcript_hash,
            degradation: DegradationCode::Pressure,
            cache: CacheOutcome::Miss,
        })
    }

    /// Execute one distributed-search work unit: resume the shipped
    /// `UOVCKPT1` snapshot under this request's budget and ship the final
    /// engine state back. The coordinator owns correctness (merging,
    /// re-frontiering, certification); this side only guarantees that
    /// whatever it returns is a faithful engine snapshot of *this*
    /// problem, which `SeedState::from_snapshot` enforced on the way in
    /// and the snapshot capture enforces on the way out.
    fn handle_workunit(
        &self,
        req: &WorkUnitRequest,
        cancel: Arc<AtomicBool>,
    ) -> Result<WorkUnitResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.workunits.fetch_add(1, Ordering::Relaxed);
        let snap = decode_snapshot(&req.snapshot).map_err(|e| ErrorResponse {
            code: ErrorCode::Malformed,
            msg: format!("work-unit snapshot: {e}"),
        })?;
        // Lease fencing: a superseded epoch is a zombie or replay and is
        // rejected before any search runs. Epoch 0 (unleased) bypasses
        // the fence for single-coordinator callers and old coordinators.
        let unit_epoch = snap.epoch;
        if unit_epoch > 0 {
            let mut leases = self.leases.lock().unwrap_or_else(|p| p.into_inner());
            let fence = leases.entry(snap.fingerprint).or_insert(0);
            if unit_epoch < *fence {
                let fence = *fence;
                drop(leases);
                self.stats
                    .stale_epoch_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ErrorResponse {
                    code: ErrorCode::StaleEpoch,
                    msg: format!("work-unit epoch {unit_epoch} superseded by {fence}"),
                });
            }
            *fence = unit_epoch;
        }
        let mut budget = Budget::unlimited();
        if req.deadline_ms > 0 {
            budget = budget.with_deadline(Duration::from_millis(u64::from(req.deadline_ms)));
        }
        if req.node_budget > 0 {
            budget = budget.with_max_nodes(req.node_budget);
        }
        let config = SearchConfig {
            budget: budget.with_cancel_token(cancel),
            threads: self.config.search_threads,
            bound_hint: req.bound_hint,
            ..SearchConfig::default()
        };
        let (result, mut out) = search_unit(
            Some(snap),
            &req.stencil,
            req.objective.as_objective(),
            &config,
        )
        .map_err(|e| ErrorResponse {
            code: ErrorCode::Internal,
            msg: e.to_string(),
        })?;
        self.update_gossip(out.fingerprint, result.cost);
        // Echo the lease epoch so the coordinator can discard responses
        // from leases it has since superseded, even on a late socket.
        out.epoch = unit_epoch;
        let snapshot = encode_snapshot(&out).map_err(|e| ErrorResponse {
            code: ErrorCode::Internal,
            msg: e.to_string(),
        })?;
        Ok(WorkUnitResponse {
            degradation: DegradationCode::from_exhausted(result.degradation.map(|d| d.reason)),
            snapshot,
        })
    }

    /// Accept a neighbor-replication push: re-certify the answer against
    /// the shipped problem, then hand it to the plan cache's validating
    /// replicated-insert path (which canonicalizes and re-derives the
    /// canonical lex-min independently). A push that fails certification
    /// is a protocol-level `Malformed`; a push the cache *refuses*
    /// (repair-enumeration limit) is a successful `stored: false` — the
    /// replica stays cold for that problem, never wrong.
    fn handle_replicate(&self, req: &ReplicateRequest) -> Result<ReplicateResponse, ErrorResponse> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let as_result = SearchResult {
            uov: req.uov.clone(),
            cost: req.cost,
            stats: SearchStats::default(),
            degradation: None,
            checkpoint_error: None,
        };
        if let Err(e) = certify(&req.stencil, &req.objective.as_objective(), &as_result) {
            return Err(ErrorResponse {
                code: ErrorCode::Malformed,
                msg: format!("replicated plan failed certification: {e}"),
            });
        }
        let stored = self
            .cache
            .insert_replicated(&req.stencil, &req.objective, &req.uov, req.cost);
        if stored {
            if req.repair {
                self.stats
                    .anti_entropy_repairs
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.update_gossip(
                fingerprint(&req.stencil, &req.objective.as_objective()),
                req.cost,
            );
        }
        Ok(ReplicateResponse { stored })
    }
}

// -------------------------------------------------------- frame parsing

/// One complete inbound frame: `(kind, tenant, payload, bytes consumed)`.
type ParsedFrame = (u8, u32, Vec<u8>, usize);

/// Incrementally parse one frame from the front of `buf`, zero-copy up
/// to the final payload extraction. `Ok(None)` means "need more bytes";
/// `Ok(Some((kind, tenant, payload, consumed)))` is one complete,
/// CRC-verified frame; `Err` means the stream is no longer at a
/// trustable frame boundary. An oversized declared length is rejected
/// from the header alone — before the payload arrives and before any
/// allocation.
fn parse_frame(buf: &[u8]) -> Result<Option<ParsedFrame>, ServiceError> {
    if buf.len() < 7 {
        return Ok(None);
    }
    if &buf[..4] != MAGIC {
        return Err(ServiceError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    let header_len = match version {
        VERSION => HEADER_LEN,
        VERSION_TENANT => HEADER_LEN_TENANT,
        other => return Err(ServiceError::UnsupportedVersion(other)),
    };
    if buf.len() < header_len {
        return Ok(None);
    }
    let frame_kind = buf[6];
    let tenant = if version == VERSION_TENANT {
        u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]])
    } else {
        0
    };
    let len = u32::from_le_bytes([
        buf[header_len - 4],
        buf[header_len - 3],
        buf[header_len - 2],
        buf[header_len - 1],
    ]);
    if len > MAX_PAYLOAD {
        return Err(ServiceError::FrameTooLarge(len));
    }
    let body_end = header_len + len as usize;
    let total = body_end + 4;
    if buf.len() < total {
        return Ok(None);
    }
    let expect = u32::from_le_bytes([
        buf[total - 4],
        buf[total - 3],
        buf[total - 2],
        buf[total - 1],
    ]);
    if crc32(&buf[..body_end]) != expect {
        return Err(ServiceError::CrcMismatch);
    }
    Ok(Some((
        frame_kind,
        tenant,
        buf[header_len..body_end].to_vec(),
        total,
    )))
}

// ------------------------------------------------------------ event loop

/// One response (or error) frame queued for write, with a resume offset
/// for partial writes.
struct WriteBuf {
    bytes: Vec<u8>,
    off: usize,
    /// Count this frame in `responses` once fully written (plan/workunit/
    /// replicate/batch answers do; errors and probes don't).
    counts_response: bool,
}

/// Per-connection state machine owned by the event thread.
struct Conn {
    stream: AnyStream,
    token: u64,
    /// Unparsed input. Bounded: reads stop once a full max-size frame
    /// could be buffered, so a flooding peer cannot balloon memory.
    rbuf: Vec<u8>,
    wqueue: VecDeque<WriteBuf>,
    /// Parsed frames not yet dispatched, as `(kind, tenant, payload)`.
    pending: VecDeque<(u8, u32, Vec<u8>)>,
    /// A compute frame from this connection is on a worker. One frame in
    /// flight per connection keeps responses in request order.
    inflight: bool,
    /// A fatal protocol error to report — deferred until in-flight work
    /// has been answered, so a valid frame's response is flushed before
    /// the error reply and close.
    poisoned: Option<(ErrorCode, String)>,
    /// Close once the write queue drains.
    closing: bool,
    eof: bool,
    dead: bool,
    /// `now_ms` of the last *completed* frame, response write progress,
    /// or completion. A slow-loris peer trickling header bytes never
    /// resets it, so the idle deadline reaps it on schedule.
    progress_ms: u64,
    reg_read: bool,
    reg_write: bool,
}

/// Token-bucket balance for one tenant, in nano-tokens so fractional
/// refill per millisecond tick is exact.
struct Bucket {
    nanos: u128,
    last_ms: u64,
}

const NANO: u128 = 1_000_000_000;

/// Debit `charge` tokens from `tenant`'s bucket, refilling for elapsed
/// time first. Buckets start full (a fresh tenant gets its burst).
fn take_tokens(
    buckets: &mut HashMap<u32, Bucket>,
    tenant: u32,
    quota: &TenantQuota,
    charge: u64,
    now_ms: u64,
) -> bool {
    let cap = u128::from(quota.burst) * NANO;
    let b = buckets.entry(tenant).or_insert(Bucket {
        nanos: cap,
        last_ms: now_ms,
    });
    let elapsed = now_ms.saturating_sub(b.last_ms);
    b.last_ms = now_ms;
    b.nanos =
        (b.nanos + u128::from(elapsed) * u128::from(quota.tokens_per_sec) * 1_000_000).min(cap);
    let need = u128::from(charge) * NANO;
    if b.nanos >= need {
        b.nanos -= need;
        true
    } else {
        false
    }
}

/// The rate-token charge a batch frame declares: its entry count. `None`
/// for counts the decoder will reject anyway (zero, hostile, or a
/// truncated prefix) — those skip quota accounting and fail as
/// `Malformed` on the worker.
fn batch_charge(payload: &[u8]) -> Option<u64> {
    if payload.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
    if n == 0 || n > MAX_BATCH_ENTRIES {
        return None;
    }
    Some(u64::from(n))
}

fn enqueue_frame(conn: &mut Conn, frame_kind: u8, payload: &[u8], counts_response: bool) {
    conn.wqueue.push_back(WriteBuf {
        bytes: encode_frame(frame_kind, payload),
        off: 0,
        counts_response,
    });
}

/// Drain the socket into `rbuf` until `WouldBlock`, EOF, or the buffer
/// bound. Never parses — that is `service_conn`'s job.
fn read_conn(conn: &mut Conn) {
    if conn.poisoned.is_some() || conn.closing || conn.eof || conn.dead {
        return;
    }
    let mut tmp = [0u8; 16384];
    loop {
        if conn.rbuf.len() >= MAX_PAYLOAD as usize + HEADER_LEN_TENANT + 8 {
            break;
        }
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Reset mid-stream: nothing to answer, nobody listening.
                conn.dead = true;
                break;
            }
        }
    }
}

/// Write queued frames until `WouldBlock` or the queue drains.
fn flush_conn(conn: &mut Conn, state: &ServerState) {
    if conn.dead {
        return;
    }
    while let Some(front) = conn.wqueue.front_mut() {
        match conn.stream.write(&front.bytes[front.off..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                front.off += n;
                conn.progress_ms = state.now_ms();
                if front.off >= front.bytes.len() {
                    if front.counts_response {
                        state.stats.responses.fetch_add(1, Ordering::Relaxed);
                    }
                    conn.wqueue.pop_front();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Admit, shed, or answer one parsed frame. Probes (health/stats) and
/// shutdown are answered inline on the event thread — even mid-drain,
/// even with every worker wedged. Compute frames pass the three-tier
/// admission gate and land on the weighted-fair queue.
fn dispatch_frame(
    conn: &mut Conn,
    frame_kind: u8,
    tenant: u32,
    payload: Vec<u8>,
    state: &ServerState,
    sched: &Scheduler,
    buckets: &mut HashMap<u32, Bucket>,
) {
    match frame_kind {
        kind::REQ_HEALTH => {
            enqueue_frame(conn, kind::RESP_HEALTH, &state.health().encode(), false);
        }
        kind::REQ_STATS => {
            enqueue_frame(
                conn,
                kind::RESP_STATS,
                &state.stats_response().encode(),
                false,
            );
        }
        kind::REQ_SHUTDOWN => {
            state.shutdown.store(true, Ordering::SeqCst);
            enqueue_frame(conn, kind::RESP_SHUTDOWN_ACK, &[], false);
            conn.closing = true;
        }
        kind::REQ_PLAN | kind::REQ_WORKUNIT | kind::REQ_REPLICATE | kind::REQ_BATCH => {
            if frame_kind == kind::REQ_BATCH {
                state.stats.batch_frames.fetch_add(1, Ordering::Relaxed);
            }
            if state.shutdown.load(Ordering::SeqCst) {
                state
                    .stats
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                let err = ErrorResponse {
                    code: ErrorCode::ShuttingDown,
                    msg: "server is draining".into(),
                };
                enqueue_frame(conn, kind::RESP_ERROR, &err.encode(), false);
                conn.closing = true;
                return;
            }
            // Tier 1: per-tenant quotas. A batch charges one rate token
            // per entry; a hostile count skips quota accounting and is
            // rejected as `Malformed` by the worker's decoder instead.
            let charge = if frame_kind == kind::REQ_BATCH {
                batch_charge(&payload)
            } else {
                Some(1)
            };
            let quota = state.config.quotas.as_ref().map(|q| *q.for_tenant(tenant));
            if let (Some(q), Some(charge)) = (quota, charge) {
                if state.gauge_of(tenant) >= q.max_inflight {
                    state.stats.shed_over_quota.fetch_add(1, Ordering::Relaxed);
                    let err = ErrorResponse {
                        code: ErrorCode::Overloaded,
                        msg: format!("tenant {tenant} is over its in-flight cap"),
                    };
                    enqueue_frame(conn, kind::RESP_ERROR, &err.encode(), false);
                    return;
                }
                if !take_tokens(buckets, tenant, &q, charge, state.now_ms()) {
                    state.stats.shed_over_quota.fetch_add(1, Ordering::Relaxed);
                    let err = ErrorResponse {
                        code: ErrorCode::Overloaded,
                        msg: format!("tenant {tenant} is over its rate quota"),
                    };
                    enqueue_frame(conn, kind::RESP_ERROR, &err.encode(), false);
                    return;
                }
            }
            // Tier 3: a full compute queue sheds whatever remains.
            let qlen = state.queue_len.load(Ordering::Relaxed) as usize;
            if qlen >= state.config.queue_depth.max(1) {
                state
                    .stats
                    .rejected_overloaded
                    .fetch_add(1, Ordering::Relaxed);
                let err = ErrorResponse {
                    code: ErrorCode::Overloaded,
                    msg: "request queue is full".into(),
                };
                enqueue_frame(conn, kind::RESP_ERROR, &err.encode(), false);
                return;
            }
            // Tier 2: between the watermark and the cap, plan-shaped
            // work degrades to the certified Σvᵢ fast path. Work units
            // and replication pushes never degrade — the mesh's
            // byte-identity depends on them running for real.
            let dw = state.config.degrade_watermark;
            let degrade =
                dw > 0 && qlen >= dw && matches!(frame_kind, kind::REQ_PLAN | kind::REQ_BATCH);
            let weight = quota.map_or(1, |q| q.weight);
            state.gauge_add(tenant);
            state.queue_len.fetch_add(1, Ordering::Relaxed);
            sched.push(WorkItem {
                token: conn.token,
                tenant,
                kind: frame_kind,
                payload,
                degrade,
                weight,
            });
            conn.inflight = true;
        }
        other => {
            // The frame itself was intact (CRC passed), so the stream
            // stays at a frame boundary: report and keep the connection.
            state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let err = ErrorResponse {
                code: ErrorCode::Unsupported,
                msg: format!("unknown frame kind {other}"),
            };
            enqueue_frame(conn, kind::RESP_ERROR, &err.encode(), false);
        }
    }
}

/// Advance one connection's state machine: parse buffered bytes into
/// frames, dispatch them in order, finalize poison/EOF once in-flight
/// work has drained, flush output, and resync poller interest.
fn service_conn(
    conn: &mut Conn,
    state: &ServerState,
    sched: &Scheduler,
    poller: &poller::Poller,
    buckets: &mut HashMap<u32, Bucket>,
) {
    if conn.poisoned.is_none() && !conn.closing {
        let mut consumed = 0;
        loop {
            match parse_frame(&conn.rbuf[consumed..]) {
                Ok(Some((frame_kind, tenant, payload, used))) => {
                    consumed += used;
                    conn.progress_ms = state.now_ms();
                    conn.pending.push_back((frame_kind, tenant, payload));
                }
                Ok(None) => break,
                Err(e) => {
                    // Bad magic, wrong version, oversized prefix, CRC
                    // mismatch: the stream position is no longer
                    // trustworthy. Stop reading; the typed reply goes
                    // out once already-admitted work is answered. The
                    // reply distinguishes transit damage (`Corrupted`,
                    // safe to resend verbatim) from version skew
                    // (`Unsupported`).
                    state.stats.protocol_error(&e);
                    let code = match e {
                        ServiceError::UnsupportedVersion(_) => ErrorCode::Unsupported,
                        ServiceError::CrcMismatch
                        | ServiceError::BadMagic
                        | ServiceError::ConnectionClosed => ErrorCode::Corrupted,
                        _ => ErrorCode::Malformed,
                    };
                    conn.poisoned = Some((code, e.to_string()));
                    conn.rbuf.clear();
                    consumed = 0;
                    break;
                }
            }
        }
        if consumed > 0 {
            conn.rbuf.drain(..consumed);
        }
    }
    // EOF with a partial frame still buffered is a torn frame.
    if conn.eof && !conn.rbuf.is_empty() && conn.poisoned.is_none() && !conn.closing {
        let e = ServiceError::ConnectionClosed;
        state.stats.protocol_error(&e);
        conn.poisoned = Some((ErrorCode::Corrupted, e.to_string()));
        conn.rbuf.clear();
    }
    // Dispatch in arrival order, one compute frame in flight at a time
    // (pipelining happens across connections, ordering within one).
    while !conn.inflight && !conn.closing && !conn.dead {
        let Some((frame_kind, tenant, payload)) = conn.pending.pop_front() else {
            break;
        };
        dispatch_frame(conn, frame_kind, tenant, payload, state, sched, buckets);
    }
    // Poison / EOF finalization waits for in-flight work so a valid
    // frame's answer is flushed before the error reply and the close.
    if !conn.inflight && conn.pending.is_empty() && !conn.closing {
        if let Some((code, msg)) = conn.poisoned.take() {
            let err = ErrorResponse { code, msg };
            enqueue_frame(conn, kind::RESP_ERROR, &err.encode(), false);
            conn.closing = true;
        } else if conn.eof {
            conn.closing = true;
        }
    }
    flush_conn(conn, state);
    let want_read = conn.poisoned.is_none() && !conn.closing && !conn.eof && !conn.dead;
    let want_write = !conn.wqueue.is_empty() && !conn.dead;
    if !conn.dead && (want_read != conn.reg_read || want_write != conn.reg_write) {
        conn.reg_read = want_read;
        conn.reg_write = want_write;
        let _ = poller.set(conn.stream.raw_fd(), conn.token, want_read, want_write);
    }
    if conn.closing && conn.wqueue.is_empty() && !conn.inflight {
        conn.dead = true;
    }
}

/// The event thread: owns the listener, every connection, the poller,
/// and the admission buckets. Exits once a drain has begun and the last
/// connection is gone, then closes the scheduler so workers drain and
/// exit.
fn event_loop(
    listener: &AnyListener,
    poller: &poller::Poller,
    state: &Arc<ServerState>,
    sched: &Arc<Scheduler>,
    completions: &Mutex<Vec<Completion>>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut buckets: HashMap<u32, Bucket> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let _ = poller.add(listener.raw_fd(), TOKEN_LISTENER, true, false);
    loop {
        for ev in poller.wait(100) {
            match ev.token {
                TOKEN_WAKE => poller.drain_wake(),
                TOKEN_LISTENER => {
                    if state.shutdown.load(Ordering::SeqCst) {
                        continue;
                    }
                    loop {
                        match listener.accept() {
                            Ok(stream) => {
                                if stream.set_nonblocking(true).is_err() {
                                    stream.close();
                                    continue;
                                }
                                let token = next_token;
                                next_token += 1;
                                state.stats.connections.fetch_add(1, Ordering::Relaxed);
                                if poller.add(stream.raw_fd(), token, true, false).is_err() {
                                    stream.close();
                                    continue;
                                }
                                conns.insert(
                                    token,
                                    Conn {
                                        stream,
                                        token,
                                        rbuf: Vec::new(),
                                        wqueue: VecDeque::new(),
                                        pending: VecDeque::new(),
                                        inflight: false,
                                        poisoned: None,
                                        closing: false,
                                        eof: false,
                                        dead: false,
                                        progress_ms: state.now_ms(),
                                        reg_read: true,
                                        reg_write: false,
                                    },
                                );
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                }
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable {
                            read_conn(conn);
                        }
                        if ev.writable {
                            flush_conn(conn, state);
                        }
                        service_conn(conn, state, sched, poller, &mut buckets);
                    }
                }
            }
        }
        // Completions from the pool: queue the response and resume the
        // connection's dispatch loop.
        let done: Vec<Completion> = {
            let mut guard = completions.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for comp in done {
            if let Some(conn) = conns.get_mut(&comp.token) {
                conn.inflight = false;
                conn.progress_ms = state.now_ms();
                enqueue_frame(conn, comp.kind, &comp.payload, comp.counts_response);
                if comp.close {
                    conn.poisoned = None;
                    conn.closing = true;
                }
                service_conn(conn, state, sched, poller, &mut buckets);
            }
        }
        // Read-deadline and drain reaping. A connection with work in
        // flight is never reaped — its answer is still owed.
        let now = state.now_ms();
        let deadline_ms = u64::from(state.config.idle_ticks) * 100;
        let draining = state.shutdown.load(Ordering::SeqCst);
        for conn in conns.values_mut() {
            if conn.dead || conn.inflight {
                continue;
            }
            let expired = now.saturating_sub(conn.progress_ms) > deadline_ms;
            let quiescent = conn.wqueue.is_empty() && conn.pending.is_empty() && !conn.closing;
            if draining && quiescent {
                conn.dead = true;
            } else if expired && quiescent {
                state.stats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
            } else if expired && !conn.wqueue.is_empty() {
                // The peer stopped reading: a write stalled past the
                // deadline is dropped like a stalled read.
                state.stats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
            }
        }
        conns.retain(|_, conn| {
            if conn.dead {
                poller.del(conn.stream.raw_fd());
                conn.stream.close();
                false
            } else {
                true
            }
        });
        if draining && conns.is_empty() {
            break;
        }
    }
    sched.close();
}

// ------------------------------------------------------------ compute pool

/// Everything a worker thread needs, bundled so the watchdog can respawn
/// a dead worker with one `Arc` clone.
struct WorkerCtx {
    state: Arc<ServerState>,
    sched: Arc<Scheduler>,
    completions: Arc<Mutex<Vec<Completion>>>,
    notifier: Arc<poller::Notifier>,
}

fn malformed(state: &ServerState, e: &ServiceError) -> (u8, Vec<u8>, bool) {
    state.stats.protocol_error(e);
    let err = ErrorResponse {
        code: ErrorCode::Malformed,
        msg: e.to_string(),
    };
    (kind::RESP_ERROR, err.encode(), false)
}

/// Execute one admitted work item, returning the response frame as
/// `(kind, payload, counts_response)`.
fn execute_item(item: &WorkItem, state: &ServerState, slot: &WorkerSlot) -> (u8, Vec<u8>, bool) {
    // Queued-but-unstarted work admitted before the drain flag went up
    // is answered `ShuttingDown`, matching the old pool's behavior.
    if state.shutdown.load(Ordering::SeqCst) {
        state
            .stats
            .rejected_shutdown
            .fetch_add(1, Ordering::Relaxed);
        let err = ErrorResponse {
            code: ErrorCode::ShuttingDown,
            msg: "server is draining".into(),
        };
        return (kind::RESP_ERROR, err.encode(), false);
    }
    match item.kind {
        kind::REQ_PLAN => match PlanRequest::decode(&item.payload) {
            Ok(req) => {
                let outcome = if item.degrade {
                    state.handle_plan_pressure(&req)
                } else {
                    // Register with the watchdog before the (potentially
                    // long) search, clear after.
                    let cancel = Arc::new(AtomicBool::new(false));
                    slot.begin_request(state.now_ms(), Arc::clone(&cancel));
                    let r = state.handle_plan(&req, cancel);
                    slot.end_request();
                    r
                };
                match outcome {
                    Ok(resp) => (kind::RESP_PLAN, resp.encode(), true),
                    Err(err) => (kind::RESP_ERROR, err.encode(), false),
                }
            }
            Err(e) => malformed(state, &e),
        },
        kind::REQ_WORKUNIT => match WorkUnitRequest::decode(&item.payload) {
            Ok(req) => {
                let cancel = Arc::new(AtomicBool::new(false));
                slot.begin_request(state.now_ms(), Arc::clone(&cancel));
                let outcome = state.handle_workunit(&req, cancel);
                slot.end_request();
                match outcome {
                    Ok(resp) => (kind::RESP_WORKUNIT, resp.encode(), true),
                    Err(err) => (kind::RESP_ERROR, err.encode(), false),
                }
            }
            Err(e) => malformed(state, &e),
        },
        kind::REQ_REPLICATE => match ReplicateRequest::decode(&item.payload) {
            Ok(req) => match state.handle_replicate(&req) {
                Ok(resp) => (kind::RESP_REPLICATE, resp.encode(), true),
                Err(err) => (kind::RESP_ERROR, err.encode(), false),
            },
            Err(e) => malformed(state, &e),
        },
        kind::REQ_BATCH => match BatchRequest::decode(&item.payload) {
            Ok(req) => {
                // One watchdog registration and one cancel token cover
                // the whole batch: a wedged batch degrades as a unit,
                // and canonicalization/certification state stays warm
                // across entries of the same program.
                let cancel = Arc::new(AtomicBool::new(false));
                slot.begin_request(state.now_ms(), Arc::clone(&cancel));
                let entries = req
                    .entries
                    .iter()
                    .map(|entry| {
                        if item.degrade {
                            state.handle_plan_pressure(entry)
                        } else {
                            state.handle_plan(entry, Arc::clone(&cancel))
                        }
                    })
                    .collect();
                slot.end_request();
                let resp = BatchResponse { entries };
                (kind::RESP_BATCH, resp.encode(), true)
            }
            Err(e) => malformed(state, &e),
        },
        other => {
            state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let err = ErrorResponse {
                code: ErrorCode::Unsupported,
                msg: format!("unknown frame kind {other}"),
            };
            (kind::RESP_ERROR, err.encode(), false)
        }
    }
}

fn worker_loop(index: usize, ctx: &WorkerCtx) {
    let state = &ctx.state;
    state.workers_alive.fetch_add(1, Ordering::Relaxed);
    // Readiness must drop even if this loop unwinds or is replaced.
    struct Alive<'a>(&'a AtomicU64);
    impl Drop for Alive<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _alive = Alive(&state.workers_alive);
    let slot = Arc::clone(&state.slots[index % state.slots.len().max(1)]);
    while let Some(item) = ctx.sched.pop() {
        state.queue_len.fetch_sub(1, Ordering::Relaxed);
        slot.beat(state.now_ms());
        let outcome = catch_unwind(AssertUnwindSafe(|| execute_item(&item, state, &slot)));
        // A panic can escape mid-request: clear the watchdog registration
        // so a dead request's cancel token is never tripped later.
        slot.end_request();
        slot.beat(state.now_ms());
        state.gauge_sub(item.tenant);
        let comp = match outcome {
            Ok((frame_kind, payload, counts_response)) => Completion {
                token: item.token,
                kind: frame_kind,
                payload,
                counts_response,
                close: false,
            },
            Err(_) => {
                state.stats.panics.fetch_add(1, Ordering::Relaxed);
                let err = ErrorResponse {
                    code: ErrorCode::Internal,
                    msg: "internal panic; request isolated".into(),
                };
                Completion {
                    token: item.token,
                    kind: kind::RESP_ERROR,
                    payload: err.encode(),
                    counts_response: false,
                    close: true,
                }
            }
        };
        {
            let mut guard = ctx.completions.lock().unwrap_or_else(|p| p.into_inner());
            guard.push(comp);
        }
        ctx.notifier.notify();
    }
}

fn spawn_worker(index: usize, ctx: &Arc<WorkerCtx>) -> Result<JoinHandle<()>, ServiceError> {
    let ctx = Arc::clone(ctx);
    thread::Builder::new()
        .name(format!("uov-service-worker-{index}"))
        .spawn(move || worker_loop(index, &ctx))
        .map_err(ServiceError::Io)
}

/// Poll the worker pool: cancel requests stuck past the wedge timeout
/// (degrading them to certified legal answers via their budgets) and
/// respawn worker threads that died outright. Exits once the drain flag
/// is up — the pool is winding down then anyway.
fn watchdog_loop(ctx: &Arc<WorkerCtx>, workers: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let state = &ctx.state;
    let wedge_ms = state.config.wedge_timeout.as_millis() as u64;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(Duration::from_millis(20));

        if wedge_ms > 0 {
            let now = state.now_ms();
            for slot in &state.slots {
                let busy = slot.busy.lock().unwrap_or_else(|p| p.into_inner());
                if let (Some(since), Some(cancel)) = (busy.since_ms, busy.cancel.as_ref()) {
                    if now.saturating_sub(since) > wedge_ms && !cancel.swap(true, Ordering::SeqCst)
                    {
                        state.stats.watchdog_cancels.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        // A worker thread that is gone (its panic isolation itself failed,
        // or it was killed by the OS) is replaced in place so the pool
        // never shrinks below its configured size.
        let mut ws = workers.lock().unwrap_or_else(|p| p.into_inner());
        for (i, handle) in ws.iter_mut().enumerate() {
            if handle.is_finished() && !state.shutdown.load(Ordering::SeqCst) {
                if let Ok(fresh) = spawn_worker(i, ctx) {
                    let dead = std::mem::replace(handle, fresh);
                    let _ = dead.join();
                    state.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    endpoint: String,
    state: Arc<ServerState>,
    event_thread: Option<JoinHandle<()>>,
    /// Shared with the watchdog, which replaces dead handles in place.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound endpoint — for TCP this resolves an `:0` request
    /// to the assigned port (`"127.0.0.1:43817"`), for Unix sockets it is
    /// the `unix:<path>` string.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Begin a graceful drain: stop accepting, finish in-flight work,
    /// answer new frames with `ShuttingDown`.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun (via [`Self::shutdown`] or a client's
    /// `REQ_SHUTDOWN` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Current traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.state.stats.snapshot()
    }

    /// Current plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.cache.stats()
    }

    /// Current health/readiness report, as `REQ_HEALTH` would answer it.
    pub fn health(&self) -> HealthResponse {
        self.state.health()
    }

    /// Wait for the drain to finish: the event loop, the watchdog, and
    /// every worker exit, in-flight connections included. On a graceful
    /// drain the plan cache is persisted to the configured warm-cache
    /// path (atomically; best-effort — a full disk loses warmth, not
    /// correctness).
    pub fn join(self) -> ServerStats {
        self.join_inner(true)
    }

    /// Like [`ServerHandle::join`] but *without* persisting the warm
    /// cache: the shutdown behaves like a crash for cache-warmth
    /// purposes. Chaos tests use this to model a killed replica while
    /// still reclaiming its threads and port.
    pub fn join_abrupt(self) -> ServerStats {
        self.join_inner(false)
    }

    fn join_inner(mut self, save_warm: bool) -> ServerStats {
        // The event thread exits once the drain empties the connection
        // table, closing both the listener and the scheduler — which in
        // turn lets the workers drain the queue and exit.
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.watchdog.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut ws = self.workers.lock().unwrap_or_else(|p| p.into_inner());
            ws.drain(..).collect()
        };
        for w in handles {
            let _ = w.join();
        }
        if save_warm {
            if let Some(path) = &self.state.config.warm_cache {
                let _ = self.state.cache.save(path);
            }
        }
        self.state.stats.snapshot()
    }
}

/// Bind `endpoint` (a TCP address like `"127.0.0.1:0"`, or
/// `"unix:<path>"`) and serve planning requests until shutdown.
///
/// # Errors
///
/// [`ServiceError::Io`] if the endpoint cannot be bound or the readiness
/// poller cannot be created.
pub fn serve(endpoint: &str, config: ServerConfig) -> Result<ServerHandle, ServiceError> {
    let workers = config.workers.max(1);
    let (listener, bound) = AnyListener::bind(endpoint)?;
    listener.set_nonblocking(true)?;

    let state = Arc::new(ServerState {
        cache: PlanCache::new(config.cache_capacity.max(1)),
        shutdown: AtomicBool::new(false),
        stats: Counters::default(),
        queue_len: AtomicU64::new(0),
        workers_alive: AtomicU64::new(0),
        slots: (0..workers)
            .map(|_| Arc::new(WorkerSlot::default()))
            .collect(),
        started: Instant::now(),
        gossip: Mutex::new(None),
        leases: Mutex::new(HashMap::new()),
        tenant_inflight: Mutex::new(HashMap::new()),
        config,
    });

    // A warm start: restore the previous drain's plans. A refused
    // snapshot starts cold — never a boot failure — but the *reason* is
    // typed, logged, and counted so operators can tell disk damage
    // (delete the file) from a rollback (roll forward to recover it).
    if let Some(path) = &state.config.warm_cache {
        if let Err(e) = state.cache.load(path) {
            match e {
                WarmCacheError::UnsupportedVersion(_) => {
                    state
                        .stats
                        .warm_load_version
                        .fetch_add(1, Ordering::Relaxed);
                }
                WarmCacheError::Io(_) | WarmCacheError::BadMagic | WarmCacheError::Corrupt(_) => {
                    state
                        .stats
                        .warm_load_corrupt
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            eprintln!("uov-service: warm cache not restored ({e}); starting cold");
        }
    }

    let (poller, notifier) = poller::Poller::new().map_err(ServiceError::Io)?;
    let sched = Arc::new(Scheduler::new());
    let completions = Arc::new(Mutex::new(Vec::new()));
    let ctx = Arc::new(WorkerCtx {
        state: Arc::clone(&state),
        sched: Arc::clone(&sched),
        completions: Arc::clone(&completions),
        notifier: Arc::new(notifier),
    });

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        worker_handles.push(spawn_worker(i, &ctx)?);
    }
    let worker_handles = Arc::new(Mutex::new(worker_handles));

    let ev_state = Arc::clone(&state);
    let ev_sched = Arc::clone(&sched);
    let ev_completions = Arc::clone(&completions);
    let event_thread = thread::Builder::new()
        .name("uov-service-event".into())
        .spawn(move || event_loop(&listener, &poller, &ev_state, &ev_sched, &ev_completions))
        .map_err(ServiceError::Io)?;

    let watchdog_ctx = Arc::clone(&ctx);
    let watchdog_workers = Arc::clone(&worker_handles);
    let watchdog = thread::Builder::new()
        .name("uov-service-watchdog".into())
        .spawn(move || watchdog_loop(&watchdog_ctx, &watchdog_workers))
        .map_err(ServiceError::Io)?;

    Ok(ServerHandle {
        endpoint: bound,
        state,
        event_thread: Some(event_thread),
        workers: worker_handles,
        watchdog: Some(watchdog),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use uov_core::npc::PartitionInstance;
    use uov_isg::{ivec, RectDomain};

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    /// An effectively unbounded search instance (NP-hard reduction),
    /// used to pin a worker busy for a deadline's worth of time.
    fn wedge() -> Stencil {
        let inst = PartitionInstance::new(vec![5, 5, 4, 3, 2, 1]).unwrap();
        let (stencil, _) = inst.reduce().unwrap();
        stencil
    }

    fn plain(stencil: Stencil) -> PlanRequest {
        PlanRequest {
            stencil,
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        }
    }

    fn start() -> ServerHandle {
        serve("127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    #[test]
    fn round_trip_plan_over_tcp() {
        let server = start();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let resp = client.plan(&plain(fig1())).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        assert_eq!(resp.cost, 2);
        assert_eq!(resp.degradation, DegradationCode::None);
        assert_eq!(resp.cache, CacheOutcome::Miss);
        assert_ne!(resp.certificate_hash, 0);
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.responses, 1);
        assert_eq!(stats.protocol_errors, 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache_with_identical_certificates() {
        let server = start();
        let req = PlanRequest {
            stencil: fig1(),
            objective: ObjectiveSpec::KnownBounds(RectDomain::grid(6, 6)),
            deadline_ms: 0,
            flags: 0,
        };
        let mut client = Client::connect(server.endpoint()).unwrap();
        let cold = client.plan(&req).unwrap();
        let warm = client.plan(&req).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(cold.uov, warm.uov);
        assert_eq!(cold.cost, warm.cost);
        assert_eq!(cold.certificate_hash, warm.certificate_hash);
        assert_eq!(server.cache_stats().hits, 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let server = start();
        let req = PlanRequest {
            stencil: fig1(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: FLAG_NO_CACHE,
        };
        let mut client = Client::connect(server.endpoint()).unwrap();
        let a = client.plan(&req).unwrap();
        let b = client.plan(&req).unwrap();
        assert_eq!(a.cache, CacheOutcome::Miss);
        assert_eq!(b.cache, CacheOutcome::Miss);
        assert_eq!((a.uov, a.cost), (b.uov.clone(), b.cost));
        server.shutdown();
        server.join();
    }

    #[test]
    fn client_shutdown_drains_the_server() {
        let server = start();
        let endpoint = server.endpoint().to_string();
        let mut client = Client::connect(&endpoint).unwrap();
        client.shutdown_server().unwrap();
        let stats = server.join();
        // The drain completed; a fresh connection must now fail.
        assert!(
            Client::connect(&endpoint).is_err() || {
                // The OS may still accept into the dead listener's backlog;
                // a plan over such a connection must then fail.
                let mut c = Client::connect(&endpoint).unwrap();
                c.plan(&plain(fig1())).is_err()
            }
        );
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn replicated_entries_store_after_recertification_and_serve_hits() {
        let server = start();
        let direct = find_best_uov(
            &fig1(),
            ObjectiveSpec::ShortestVector.as_objective(),
            &SearchConfig::default(),
        )
        .unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();

        let resp = client
            .replicate(&ReplicateRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                uov: direct.uov.clone(),
                cost: direct.cost,
                repair: false,
            })
            .unwrap();
        assert!(resp.stored);

        // A push whose cost does not re-certify is refused with a typed
        // error — a lying peer cannot poison this cache.
        let err = client
            .replicate(&ReplicateRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                uov: direct.uov.clone(),
                cost: direct.cost + 7,
                repair: false,
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Rejected {
                    code: ErrorCode::Malformed,
                    ..
                }
            ),
            "{err:?}"
        );

        // The replicated entry serves a byte-identical warm hit, and the
        // hit is attributed to replication.
        let plan = client.plan(&plain(fig1())).unwrap();
        assert_eq!(plan.cache, CacheOutcome::Hit);
        assert_eq!(plan.uov, direct.uov);
        assert_eq!(plan.cost, direct.cost);

        // Repair-flagged stores count as anti-entropy repairs.
        let rep = client
            .replicate(&ReplicateRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                uov: direct.uov.clone(),
                cost: direct.cost,
                repair: true,
            })
            .unwrap();
        assert!(rep.stored);

        let cache = server.cache_stats();
        assert_eq!(cache.replicated_entries, 2);
        assert_eq!(cache.replica_hits, 1);
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.anti_entropy_repairs, 1);
    }

    #[test]
    fn stale_work_unit_epochs_are_fenced() {
        let server = start();
        let stencil = fig1();
        let objective = ObjectiveSpec::ShortestVector;
        // A legal mid-search snapshot produced by the engine itself.
        let prefix = SearchConfig {
            budget: Budget::unlimited().with_max_nodes(2),
            threads: 1,
            ..SearchConfig::default()
        };
        let (_, mut snap) = search_unit(None, &stencil, objective.as_objective(), &prefix).unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let send = |client: &mut Client, snap: &uov_core::checkpoint::Snapshot| {
            client.workunit(&WorkUnitRequest {
                stencil: stencil.clone(),
                objective: objective.clone(),
                deadline_ms: 0,
                node_budget: 4,
                bound_hint: None,
                snapshot: encode_snapshot(snap).unwrap(),
            })
        };

        snap.epoch = 5;
        let first = send(&mut client, &snap).unwrap();
        let out = decode_snapshot(&first.snapshot).unwrap();
        assert_eq!(out.epoch, 5, "the lease epoch must be echoed");

        // An equal epoch is an idempotent resend of the same lease.
        send(&mut client, &snap).unwrap();

        // A lower epoch is a superseded lease: fenced with StaleEpoch.
        snap.epoch = 3;
        let err = send(&mut client, &snap).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Rejected {
                    code: ErrorCode::StaleEpoch,
                    ..
                }
            ),
            "{err:?}"
        );

        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.stale_epoch_rejections, 1);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("uov-service-test-{}.sock", std::process::id()));
        let endpoint = format!("unix:{}", path.display());
        let server = serve(&endpoint, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let resp = client.plan(&plain(fig1())).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        server.shutdown();
        server.join();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn weighted_fair_dequeue_interleaves_tenants() {
        let sched = Scheduler::new();
        let item = |tenant: u32, weight: u32| WorkItem {
            token: 0,
            tenant,
            kind: kind::REQ_PLAN,
            payload: Vec::new(),
            degrade: false,
            weight,
        };
        for _ in 0..4 {
            sched.push(item(1, 1));
        }
        for _ in 0..4 {
            sched.push(item(2, 1));
        }
        let order: Vec<u32> = (0..8).map(|_| sched.pop().unwrap().tenant).collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);

        // A weight-2 tenant takes two consecutive slots per turn.
        for _ in 0..4 {
            sched.push(item(1, 2));
        }
        for _ in 0..2 {
            sched.push(item(2, 1));
        }
        let order: Vec<u32> = (0..6).map(|_| sched.pop().unwrap().tenant).collect();
        assert_eq!(order, vec![1, 1, 2, 1, 1, 2]);
    }

    #[test]
    fn batched_plans_round_trip_with_per_entry_status() {
        let server = start();
        let mut client = Client::connect(server.endpoint()).unwrap();
        let req = BatchRequest {
            entries: vec![
                plain(fig1()),
                PlanRequest {
                    stencil: fig1(),
                    objective: ObjectiveSpec::KnownBounds(RectDomain::grid(6, 6)),
                    deadline_ms: 0,
                    flags: 0,
                },
            ],
        };
        let resp = client.plan_batch(&req).unwrap();
        assert_eq!(resp.entries.len(), 2);
        let first = resp.entries[0].as_ref().unwrap();
        assert_eq!(first.uov, ivec![1, 1]);
        assert_eq!(first.cost, 2);
        assert_ne!(first.certificate_hash, 0);
        assert!(resp.entries[1].is_ok());
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.batch_frames, 1);
        assert_eq!(stats.requests, 2, "each batch entry is one request");
        assert_eq!(stats.responses, 1, "but one response frame");
    }

    #[test]
    fn over_quota_tenants_are_shed_with_typed_overloaded() {
        let mut quotas = QuotaConfig::default();
        quotas.tenants.insert(
            7,
            TenantQuota {
                tokens_per_sec: 0,
                burst: 1,
                max_inflight: 8,
                weight: 1,
            },
        );
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                quotas: Some(quotas),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut hog = Client::connect(server.endpoint()).unwrap();
        hog.set_tenant(7);
        hog.plan(&plain(fig1())).unwrap();
        let err = hog.plan(&plain(fig1())).unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::Rejected {
                    code: ErrorCode::Overloaded,
                    ..
                }
            ),
            "{err:?}"
        );
        // The compliant (default-quota) tenant is untouched.
        let mut compliant = Client::connect(server.endpoint()).unwrap();
        compliant.plan(&plain(fig1())).unwrap();
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.shed_over_quota, 1);
    }

    #[test]
    fn queue_pressure_degrades_to_certified_sum_fast_path() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                degrade_watermark: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let endpoint = server.endpoint().to_string();
        // Occupy the single worker with an effectively unbounded search…
        let ep = endpoint.clone();
        let busy = std::thread::spawn(move || {
            let mut c = Client::connect(&ep).unwrap();
            let _ = c.plan(&PlanRequest {
                stencil: wedge(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 1500,
                flags: 0,
            });
        });
        // …queue one more so the compute queue is non-empty…
        let ep = endpoint.clone();
        let queued = std::thread::spawn(move || {
            let mut c = Client::connect(&ep).unwrap();
            let _ = c.plan(&PlanRequest {
                stencil: fig1(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            });
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.health().queue_len < 1 {
            assert!(Instant::now() < deadline, "queue never filled");
            std::thread::sleep(Duration::from_millis(10));
        }
        // …then a third request must be served through the Σvᵢ path,
        // still certified, never cached.
        let mut c = Client::connect(&endpoint).unwrap();
        let resp = c.plan(&plain(fig1())).unwrap();
        assert_eq!(resp.degradation, DegradationCode::Pressure);
        assert_eq!(resp.cache, CacheOutcome::Miss);
        assert_eq!(resp.uov, ivec![2, 2], "Σvᵢ of fig1");
        assert_ne!(resp.certificate_hash, 0);
        busy.join().unwrap();
        queued.join().unwrap();
        server.shutdown();
        let stats = server.join();
        assert!(stats.degraded_under_pressure >= 1);
    }

    #[test]
    fn tenant_inflight_gauges_are_visible_in_stats() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let ep = server.endpoint().to_string();
        let busy = std::thread::spawn(move || {
            let mut c = Client::connect(&ep).unwrap();
            c.set_tenant(9);
            let _ = c.plan(&PlanRequest {
                stencil: wedge(),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 800,
                flags: 0,
            });
        });
        let mut probe = Client::connect(server.endpoint()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut seen = false;
        while Instant::now() < deadline {
            let stats = probe.stats().unwrap();
            if stats
                .tenants
                .iter()
                .any(|g| g.tenant == 9 && g.inflight >= 1)
            {
                seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(seen, "tenant 9's in-flight gauge never appeared");
        busy.join().unwrap();
        server.shutdown();
        server.join();
    }
}
