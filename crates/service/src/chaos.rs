//! A deterministic chaos harness for the planning fabric.
//!
//! Two pieces:
//!
//! * [`ChaosProxy`] — a TCP proxy that sits between a client and one
//!   replica and injects faults *decided by a seeded generator*, never by
//!   the wall clock: connection resets, half-open stalls, latency
//!   spikes, frame truncation, and payload bit-flips. The fault schedule
//!   for connection `n`, direction `d` is a pure function of
//!   `(seed, n, d)`, so a failing chaos run replays exactly from its
//!   seed.
//! * [`ReplicaSet`] — an in-process orchestrator that starts N replicas,
//!   kills them abruptly (simulated crash: no warm-cache save), drains
//!   them gracefully, and restarts them on their original ports.
//!
//! The proxy is frame-aware: it parses the `UOVS` header to learn each
//! frame's extent, then applies at most one fault per frame. Bit-flips
//! target the payload/CRC region so the receiver's CRC check — not luck —
//! is what catches them; truncation closes the socket mid-frame to
//! exercise torn-read handling; stalls hold the connection silent long
//! past the client's attempt timeout to exercise half-open detection.
//! Bytes that do not parse as a frame header are pumped opaquely so the
//! proxy never deadlocks on garbage.
//!
//! # Network partitions
//!
//! On top of the per-frame fault schedule, a proxy can be **partitioned**
//! ([`ChaosProxy::partition_symmetric`] /
//! [`ChaosProxy::partition_asymmetric`]) and later **healed**
//! ([`ChaosProxy::heal`]). A partition does not drop or damage frames:
//! each pump direction simply *holds* its current frame until the
//! partition heals, modelling TCP retransmission across a cut link —
//! delivery is delayed, order is preserved, nothing is lost. The
//! asymmetric form blocks one direction only; blocking just the
//! server→client direction makes the replica execute a request whose
//! response arrives after the coordinator has given up — the natural way
//! to manufacture a stale work-unit completion.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::error::ServiceError;
use crate::proto::{HEADER_LEN, MAGIC};
use crate::server::{serve, ServerConfig, ServerHandle, ServerStats};

/// Fault rates and timings for a [`ChaosProxy`]. Rates are per-mille
/// (out of 1000) per forwarded frame, evaluated in a fixed order —
/// reset, stall, truncate, flip, delay — against one seeded roll, so at
/// most one fault fires per frame and the schedule is replayable.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the fault schedule. Identical seeds (and identical
    /// connection orders) produce identical fault sequences.
    pub seed: u64,
    /// ‰ chance a frame triggers an immediate connection reset.
    pub reset_per_mille: u32,
    /// ‰ chance a frame triggers a half-open stall: the proxy goes
    /// silent for [`ChaosConfig::stall_ms`], then closes. Pick a stall
    /// far above the client's attempt timeout so the outcome class
    /// (timeout) is deterministic.
    pub stall_per_mille: u32,
    /// ‰ chance a frame is truncated mid-frame and the connection closed.
    pub truncate_per_mille: u32,
    /// ‰ chance one bit of the frame's payload/CRC region is flipped
    /// before forwarding (the receiver's CRC check catches it).
    pub flip_per_mille: u32,
    /// ‰ chance a frame is delayed by [`ChaosConfig::delay_ms`] before
    /// forwarding. Pick a delay far below the client's attempt timeout
    /// so the outcome class (success, slower) is deterministic.
    pub delay_per_mille: u32,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Latency-spike duration in milliseconds.
    pub delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            reset_per_mille: 0,
            stall_per_mille: 0,
            truncate_per_mille: 0,
            flip_per_mille: 0,
            delay_per_mille: 0,
            stall_ms: 5_000,
            delay_ms: 5,
        }
    }
}

/// Counts of what a [`ChaosProxy`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted and paired with an upstream dial.
    pub connections: u64,
    /// Frames forwarded unharmed (including delayed ones).
    pub frames_forwarded: u64,
    /// Connections reset mid-stream.
    pub resets: u64,
    /// Half-open stalls injected.
    pub stalls: u64,
    /// Frames truncated.
    pub truncations: u64,
    /// Frames with a bit flipped.
    pub bit_flips: u64,
    /// Frames delayed.
    pub delays: u64,
    /// Frames held at a partition boundary until it healed (or the
    /// proxy stopped).
    pub partition_holds: u64,
}

#[derive(Default)]
struct ChaosCounters {
    connections: AtomicU64,
    frames_forwarded: AtomicU64,
    resets: AtomicU64,
    stalls: AtomicU64,
    truncations: AtomicU64,
    bit_flips: AtomicU64,
    delays: AtomicU64,
    partition_holds: AtomicU64,
}

impl ChaosCounters {
    fn snapshot(&self) -> ChaosStats {
        ChaosStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_forwarded: self.frames_forwarded.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            partition_holds: self.partition_holds.load(Ordering::Relaxed),
        }
    }
}

/// Which pump directions of one proxy are currently cut. Direction 0 is
/// client→upstream, direction 1 is upstream→client (the same indices the
/// seeded pump RNGs use).
#[derive(Default)]
struct PartitionState {
    to_upstream: AtomicBool,
    to_client: AtomicBool,
}

impl PartitionState {
    fn blocked(&self, dir: u64) -> bool {
        if dir == 0 {
            self.to_upstream.load(Ordering::SeqCst)
        } else {
            self.to_client.load(Ordering::SeqCst)
        }
    }
}

/// splitmix64: turns correlated seeds (`seed ^ small-counter`) into
/// well-mixed xorshift starting states.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(splitmix64(seed).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// What the fault roll decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Forward,
    Reset,
    Stall,
    Truncate,
    Flip,
    Delay,
}

impl ChaosConfig {
    /// Evaluate one roll against the cumulative rate thresholds, in
    /// fixed order so the mapping from roll to fault is stable even when
    /// rates change between experiments.
    fn decide(&self, roll: u64) -> Fault {
        let r = (roll % 1000) as u32;
        let mut edge = self.reset_per_mille;
        if r < edge {
            return Fault::Reset;
        }
        edge += self.stall_per_mille;
        if r < edge {
            return Fault::Stall;
        }
        edge += self.truncate_per_mille;
        if r < edge {
            return Fault::Truncate;
        }
        edge += self.flip_per_mille;
        if r < edge {
            return Fault::Flip;
        }
        edge += self.delay_per_mille;
        if r < edge {
            return Fault::Delay;
        }
        Fault::Forward
    }
}

/// A fault-injecting TCP proxy in front of one replica (module docs).
pub struct ChaosProxy {
    endpoint: String,
    upstream: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    partition: Arc<PartitionState>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral local port, forwarding to
    /// `upstream` with the fault schedule of `cfg`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the local listener cannot be bound.
    pub fn start(upstream: &str, cfg: ChaosConfig) -> Result<Self, ServiceError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let endpoint = listener.local_addr()?.to_string();
        let upstream = Arc::new(Mutex::new(upstream.to_string()));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let partition = Arc::new(PartitionState::default());

        let a_upstream = Arc::clone(&upstream);
        let a_stop = Arc::clone(&stop);
        let a_counters = Arc::clone(&counters);
        let a_partition = Arc::clone(&partition);
        let accept = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || {
                accept_loop(
                    &listener,
                    cfg,
                    &a_upstream,
                    &a_stop,
                    &a_counters,
                    &a_partition,
                );
            })?;

        Ok(ChaosProxy {
            endpoint,
            upstream,
            stop,
            counters,
            partition,
            accept: Some(accept),
        })
    }

    /// The proxy's own address — point clients here.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Retarget *new* connections at a different upstream (established
    /// pumps keep their original peer). Used by kill/restart
    /// orchestration when a replica comes back on a new address.
    pub fn set_upstream(&self, endpoint: &str) {
        if let Ok(mut guard) = self.upstream.lock() {
            *guard = endpoint.to_string();
        }
    }

    /// Snapshot the injection counters.
    pub fn stats(&self) -> ChaosStats {
        self.counters.snapshot()
    }

    /// Cut both directions: the replica behind this proxy is fully
    /// partitioned away. In-flight and future frames are held — delayed,
    /// ordered, never dropped — until [`ChaosProxy::heal`].
    pub fn partition_symmetric(&self) {
        self.partition.to_upstream.store(true, Ordering::SeqCst);
        self.partition.to_client.store(true, Ordering::SeqCst);
    }

    /// Cut chosen directions only. Blocking just `to_client`
    /// (server→client) lets requests through but holds responses: the
    /// replica executes work whose completion surfaces after heal —
    /// exactly how a stale work-unit completion is born.
    pub fn partition_asymmetric(&self, block_to_upstream: bool, block_to_client: bool) {
        self.partition
            .to_upstream
            .store(block_to_upstream, Ordering::SeqCst);
        self.partition
            .to_client
            .store(block_to_client, Ordering::SeqCst);
    }

    /// Heal the partition: held frames resume forwarding in order.
    pub fn heal(&self) {
        self.partition.to_upstream.store(false, Ordering::SeqCst);
        self.partition.to_client.store(false, Ordering::SeqCst);
    }

    /// Stop accepting; existing pumps notice within ~100 ms.
    pub fn stop(mut self) -> ChaosStats {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.counters.snapshot()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    cfg: ChaosConfig,
    upstream: &Arc<Mutex<String>>,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ChaosCounters>,
    partition: &Arc<PartitionState>,
) {
    let mut conn_seq: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => break,
        };
        let target = match upstream.lock() {
            Ok(guard) => guard.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let server = match TcpStream::connect(&target) {
            Ok(s) => s,
            Err(_) => {
                // Upstream down: drop the client — it sees a closed
                // connection, exactly what a dead replica looks like.
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        counters.connections.fetch_add(1, Ordering::Relaxed);
        let seq = conn_seq;
        conn_seq += 1;
        spawn_pump(client, server, cfg, seq, stop, counters, partition);
    }
}

/// Two pump threads, one per direction, each with its own RNG derived
/// from `(seed, connection sequence, direction)`.
#[allow(clippy::too_many_arguments)]
fn spawn_pump(
    client: TcpStream,
    server: TcpStream,
    cfg: ChaosConfig,
    seq: u64,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ChaosCounters>,
    partition: &Arc<PartitionState>,
) {
    let pairs = [
        (client.try_clone(), server.try_clone(), 0u64),
        (server.try_clone(), client.try_clone(), 1u64),
    ];
    for (src, dst, dir) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let rng = XorShift64::new(cfg.seed ^ seq.wrapping_mul(0x517C_C1B7_2722_0A95) ^ dir);
        let t_stop = Arc::clone(stop);
        let t_counters = Arc::clone(counters);
        let t_partition = Arc::clone(partition);
        let _ = thread::Builder::new()
            .name(format!("chaos-pump-{seq}-{dir}"))
            .spawn(move || pump(src, dst, cfg, rng, dir, &t_stop, &t_counters, &t_partition));
    }
}

/// Read one whole frame from `src`. Returns `None` on EOF/error/stop.
/// Bytes that do not start with the protocol magic flip the pump into
/// opaque mode (`Err(prefix)`) — the caller just copies bytes through.
fn read_one_frame(src: &mut TcpStream, stop: &AtomicBool) -> Option<Result<Vec<u8>, Vec<u8>>> {
    let mut header = vec![0u8; HEADER_LEN];
    read_exact_interruptible(src, &mut header, stop)?;
    if &header[..4] != MAGIC {
        return Some(Err(header));
    }
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    // Hostile/oversized lengths: stop parsing, pump opaquely.
    if len > (crate::proto::MAX_PAYLOAD as usize) {
        return Some(Err(header));
    }
    let mut rest = vec![0u8; len + 4];
    read_exact_interruptible(src, &mut rest, stop)?;
    header.extend_from_slice(&rest);
    Some(Ok(header))
}

/// `read_exact` that honours the stop flag via a short read timeout.
fn read_exact_interruptible(src: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> Option<()> {
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match src.read(&mut buf[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Only between frames may we idle forever; mid-frame
                // silence still honours stop on the next iteration.
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    Some(())
}

/// Sleep that wakes early when the proxy stops.
fn sleep_interruptible(ms: u64, stop: &AtomicBool) {
    let mut remaining = ms;
    while remaining > 0 && !stop.load(Ordering::SeqCst) {
        let chunk = remaining.min(50);
        thread::sleep(Duration::from_millis(chunk));
        remaining -= chunk;
    }
}

#[allow(clippy::too_many_arguments)]
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    cfg: ChaosConfig,
    mut rng: XorShift64,
    dir: u64,
    stop: &AtomicBool,
    counters: &ChaosCounters,
    partition: &PartitionState,
) {
    let close_both = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        let frame = match read_one_frame(&mut src, stop) {
            Some(Ok(f)) => f,
            Some(Err(prefix)) => {
                // Unparseable traffic: forward the prefix and then copy
                // bytes opaquely until the stream dies.
                if dst.write_all(&prefix).is_err() {
                    break;
                }
                let mut buf = [0u8; 4096];
                loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match src.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            if dst.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock
                                    | std::io::ErrorKind::TimedOut
                                    | std::io::ErrorKind::Interrupted
                            ) =>
                        {
                            continue
                        }
                        Err(_) => break,
                    }
                }
                break;
            }
            None => break,
        };
        // A partition holds this direction's frame until heal: delayed
        // delivery in order, nothing dropped — TCP retransmission across
        // a cut link. The fault roll still runs afterwards, so a seeded
        // schedule keeps its alignment through a partition window.
        if partition.blocked(dir) {
            counters.partition_holds.fetch_add(1, Ordering::Relaxed);
            while partition.blocked(dir) && !stop.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_millis(5));
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
        }
        match cfg.decide(rng.next()) {
            Fault::Reset => {
                counters.resets.fetch_add(1, Ordering::Relaxed);
                close_both(&src, &dst);
                return;
            }
            Fault::Stall => {
                counters.stalls.fetch_add(1, Ordering::Relaxed);
                sleep_interruptible(cfg.stall_ms, stop);
                close_both(&src, &dst);
                return;
            }
            Fault::Truncate => {
                counters.truncations.fetch_add(1, Ordering::Relaxed);
                let cut = HEADER_LEN + (rng.next() as usize % (frame.len() - HEADER_LEN).max(1));
                let _ = dst.write_all(&frame[..cut]);
                close_both(&src, &dst);
                return;
            }
            Fault::Flip => {
                counters.bit_flips.fetch_add(1, Ordering::Relaxed);
                let mut frame = frame;
                // Target the payload/CRC region; the receiver's CRC
                // check must catch this, not a failed header parse.
                let span = frame.len() - HEADER_LEN;
                let at = HEADER_LEN + (rng.next() as usize % span.max(1));
                let bit = (rng.next() % 8) as u8;
                if at < frame.len() {
                    frame[at] ^= 1 << bit;
                }
                if dst.write_all(&frame).is_err() {
                    break;
                }
            }
            Fault::Delay => {
                counters.delays.fetch_add(1, Ordering::Relaxed);
                sleep_interruptible(cfg.delay_ms, stop);
                if dst.write_all(&frame).is_err() {
                    break;
                }
                counters.frames_forwarded.fetch_add(1, Ordering::Relaxed);
            }
            Fault::Forward => {
                if dst.write_all(&frame).is_err() {
                    break;
                }
                counters.frames_forwarded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    close_both(&src, &dst);
}

/// An in-process set of replicas with kill/drain/restart orchestration.
///
/// Replicas bind ephemeral ports on first start and keep those addresses
/// across restarts (`SO_REUSEADDR` lets a drained port be rebound
/// immediately), so a [`crate::ResilientClient`]'s replica list stays
/// valid through the whole kill/restart schedule.
pub struct ReplicaSet {
    endpoints: Vec<String>,
    handles: Vec<Option<ServerHandle>>,
    config: ServerConfig,
}

impl ReplicaSet {
    /// Start `n` replicas with identical configuration on ephemeral
    /// local ports.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if any replica fails to bind.
    pub fn start(n: usize, config: ServerConfig) -> Result<Self, ServiceError> {
        let mut endpoints = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let handle = serve("127.0.0.1:0", config.clone())?;
            endpoints.push(handle.endpoint().to_string());
            handles.push(Some(handle));
        }
        Ok(ReplicaSet {
            endpoints,
            handles,
            config,
        })
    }

    /// The stable replica addresses, in start order.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Whether replica `i` is currently running.
    pub fn is_up(&self, i: usize) -> bool {
        self.handles.get(i).is_some_and(Option::is_some)
    }

    /// Crash replica `i`: stop it without persisting its warm cache
    /// (crash semantics). No-op if already down. Returns the server's
    /// final stats when it was up.
    pub fn kill(&mut self, i: usize) -> Option<ServerStats> {
        let handle = self.handles.get_mut(i)?.take()?;
        handle.shutdown();
        Some(handle.join_abrupt())
    }

    /// Gracefully drain replica `i`, persisting its warm cache when
    /// configured. No-op if already down.
    pub fn drain(&mut self, i: usize) -> Option<ServerStats> {
        let handle = self.handles.get_mut(i)?.take()?;
        handle.shutdown();
        Some(handle.join())
    }

    /// Restart replica `i` on its original address. No-op when already
    /// up. The kernel can briefly hold a just-freed port, so the bind is
    /// retried for a short window before giving up.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when the original port cannot be rebound.
    pub fn restart(&mut self, i: usize) -> Result<(), ServiceError> {
        if self.is_up(i) {
            return Ok(());
        }
        let endpoint = self.endpoints[i].clone();
        let mut last = None;
        for _ in 0..50 {
            match serve(&endpoint, self.config.clone()) {
                Ok(handle) => {
                    self.handles[i] = Some(handle);
                    return Ok(());
                }
                Err(e) => {
                    last = Some(e);
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last.unwrap_or(ServiceError::ConnectionClosed))
    }

    /// Drain every running replica and return their final stats.
    pub fn shutdown_all(mut self) -> Vec<Option<ServerStats>> {
        (0..self.handles.len()).map(|i| self.drain(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::{ObjectiveSpec, PlanRequest};
    use crate::resilient::{ResilientClient, ResilientConfig};
    use uov_isg::{ivec, Stencil};

    fn fig1_request() -> PlanRequest {
        PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        }
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let proxy = ChaosProxy::start(server.endpoint(), ChaosConfig::default()).unwrap();
        let mut client = Client::connect(proxy.endpoint()).unwrap();
        let resp = client.plan(&fig1_request()).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);
        let stats = proxy.stop();
        assert!(stats.frames_forwarded >= 2, "{stats:?}");
        assert_eq!(stats.resets + stats.truncations + stats.bit_flips, 0);
        server.shutdown();
        server.join();
    }

    #[test]
    fn bit_flips_are_caught_by_crc_and_survived_by_the_fabric() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let proxy = ChaosProxy::start(
            server.endpoint(),
            ChaosConfig {
                flip_per_mille: 400,
                seed: 7,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let endpoints = vec![proxy.endpoint().to_string()];
        let mut fabric = ResilientClient::new(
            &endpoints,
            ResilientConfig {
                attempt_timeout: Duration::from_millis(500),
                max_attempts: 32,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                ..ResilientConfig::default()
            },
        )
        .unwrap();
        for _ in 0..10 {
            let resp = fabric.plan(&fig1_request()).unwrap();
            assert_eq!(resp.uov, ivec![1, 1]);
        }
        let stats = proxy.stop();
        assert!(stats.bit_flips > 0, "chaos never fired: {stats:?}");
        // Request-direction flips must show up in the server's CRC
        // counter (response-direction flips surface client-side).
        server.shutdown();
        let final_stats = server.join();
        assert!(
            final_stats.crc_failures + final_stats.bad_magic > 0 || stats.bit_flips > 0,
            "flips vanished: proxy={stats:?} server={final_stats:?}"
        );
    }

    #[test]
    fn resets_are_survived_by_the_fabric() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let proxy = ChaosProxy::start(
            server.endpoint(),
            ChaosConfig {
                reset_per_mille: 250,
                seed: 21,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let endpoints = vec![proxy.endpoint().to_string()];
        let mut fabric = ResilientClient::new(
            &endpoints,
            ResilientConfig {
                attempt_timeout: Duration::from_millis(500),
                max_attempts: 32,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                failure_threshold: 100,
                ..ResilientConfig::default()
            },
        )
        .unwrap();
        for _ in 0..10 {
            fabric.plan(&fig1_request()).unwrap();
        }
        let stats = proxy.stop();
        assert!(stats.resets > 0, "chaos never fired: {stats:?}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn partitions_hold_frames_and_heal_releases_them() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let proxy = ChaosProxy::start(server.endpoint(), ChaosConfig::default()).unwrap();

        // Partitioned: the request frame is held, so a short-timeout
        // plan fails without the server ever being damaged.
        proxy.partition_symmetric();
        let mut client = Client::connect(proxy.endpoint()).unwrap();
        client
            .set_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        assert!(client.plan(&fig1_request()).is_err());

        // Healed: the held frame is delivered (not dropped), the server
        // answers it, and a fresh request works end to end.
        proxy.heal();
        let mut fresh = Client::connect(proxy.endpoint()).unwrap();
        fresh.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let resp = fresh.plan(&fig1_request()).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);

        let stats = proxy.stop();
        assert!(stats.partition_holds >= 1, "{stats:?}");
        assert_eq!(stats.resets + stats.truncations + stats.bit_flips, 0);
        server.shutdown();
        server.join();
    }

    #[test]
    fn asymmetric_partition_delays_only_the_blocked_direction() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).unwrap();
        let proxy = ChaosProxy::start(server.endpoint(), ChaosConfig::default()).unwrap();

        // Requests flow, responses are held: the server executes the
        // plan but the client times out waiting for it.
        proxy.partition_asymmetric(false, true);
        let mut client = Client::connect(proxy.endpoint()).unwrap();
        client
            .set_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        assert!(client.plan(&fig1_request()).is_err());

        proxy.heal();
        let stats = proxy.stop();
        assert!(stats.partition_holds >= 1, "{stats:?}");
        server.shutdown();
        let final_stats = server.join();
        assert!(
            final_stats.requests >= 1,
            "request never crossed the one-way partition: {final_stats:?}"
        );
    }

    #[test]
    fn identical_seeds_produce_identical_fault_schedules() {
        // Drive the decision function directly: the schedule for a
        // (seed, conn, dir) triple is a pure function.
        let cfg = ChaosConfig {
            reset_per_mille: 50,
            stall_per_mille: 50,
            truncate_per_mille: 50,
            flip_per_mille: 100,
            delay_per_mille: 200,
            ..ChaosConfig::default()
        };
        let schedule = |seed: u64| {
            let mut rng = XorShift64::new(seed ^ 3u64.wrapping_mul(0x517C_C1B7_2722_0A95) ^ 1);
            (0..256).map(|_| cfg.decide(rng.next())).collect::<Vec<_>>()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "seed must matter");
    }

    #[test]
    fn replica_set_kill_and_restart_on_same_port() {
        let mut set = ReplicaSet::start(2, ServerConfig::default()).unwrap();
        let endpoints: Vec<String> = set.endpoints().to_vec();
        assert_eq!(endpoints.len(), 2);

        let mut c0 = Client::connect(&endpoints[0]).unwrap();
        c0.plan(&fig1_request()).unwrap();

        assert!(set.kill(0).is_some());
        assert!(!set.is_up(0));
        assert!(
            Client::connect(&endpoints[0]).is_err() || {
                // A connect may land in the kernel backlog of the dead
                // listener on some platforms; a plan must still fail.
                let mut c = Client::connect(&endpoints[0]).unwrap();
                c.set_timeout(Some(Duration::from_millis(200))).unwrap();
                c.plan(&fig1_request()).is_err()
            }
        );

        set.restart(0).unwrap();
        assert!(set.is_up(0));
        let mut c0 = Client::connect(&endpoints[0]).unwrap();
        let resp = c0.plan(&fig1_request()).unwrap();
        assert_eq!(resp.uov, ivec![1, 1]);

        for stats in set.shutdown_all().into_iter().flatten() {
            assert_eq!(stats.panics, 0);
        }
    }
}
