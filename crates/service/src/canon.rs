//! Coordinate-permutation canonicalization of planning problems.
//!
//! Two requests that differ only by a relabeling of the loop axes are the
//! *same* NP-hard problem: a coordinate permutation `σ` is a lattice
//! automorphism of `ℤᵈ`, so it maps non-negative integer combinations to
//! non-negative integer combinations — `w ∈ cone(V) ⟺ σ(w) ∈ cone(σ(V))`
//! — and therefore preserves DONE/DEAD membership and UOV-ness exactly
//! (paper §3.1 defines all three through the cone). It also preserves
//! both objectives: `‖σ(w)‖² = ‖w‖²`, and the storage classes of a
//! rectangular domain `D` along `w` biject with those of `σ(D)` along
//! `σ(w)` (lines `p + t·w` map to lines `σ(p) + t·σ(w)`).
//!
//! The canonical form of a problem is the lexicographically smallest
//! encoding of `(sorted σ(V), σ(domain))` over all permutations `σ` that
//! keep every stencil vector lexicographically positive (a [`Stencil`]
//! invariant; the identity always qualifies, so the set is never empty).
//! Symmetric and axis-relabeled requests thus collapse onto one cache
//! entry, and the cached canonical answer is mapped back through `σ⁻¹`.
//!
//! One wrinkle: the search's deterministic tie-break `(cost, ‖w‖², lex w)`
//! is *not* permutation-equivariant — `σ⁻¹` of the canonical lex-minimum
//! need not be the original problem's lex-minimum. The mapped-back vector
//! is guaranteed optimal in cost and norm (both invariants), so
//! [`lex_min_equivalent`] repairs the tie-break by enumerating the few
//! integer points on the sphere `‖w‖² = m*` and returning the lex-least
//! one that is a UOV of the required cost — byte-identical to what a
//! direct search returns.

use uov_core::search::{try_cost_of, Objective};
use uov_core::{Budget, DoneOracle};
use uov_isg::{IVec, RectDomain, Stencil};

use crate::proto::ObjectiveSpec;

/// Permutation search is exhaustive (`dim!` candidates), so cap the
/// dimension: beyond this the canonical form degrades to the identity
/// (correct, merely fewer cache collisions between symmetric requests).
pub const MAX_CANON_DIM: usize = 6;

/// Cap on the sphere enumeration of [`lex_min_equivalent`]. The sphere
/// `‖w‖² = m*` is scanned inside the box `[-r, r]ᵈ` with `r = ⌊√m*⌋`;
/// if the box holds more points than this, the caller should fall back
/// to a direct solve instead.
pub const REPAIR_ENUM_LIMIT: u64 = 250_000;

/// A canonicalized problem plus the permutation that produced it.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The canonical stencil (vectors permuted, re-sorted).
    pub stencil: Stencil,
    /// The canonical objective (domain bounds permuted alongside).
    pub objective: ObjectiveSpec,
    /// The applied axis permutation: canonical axis `i` is original axis
    /// `perm[i]`. `perm[i] == i` for all `i` iff the problem was already
    /// canonical.
    pub perm: Vec<usize>,
}

impl Canonical {
    /// Whether the canonicalizing permutation is the identity (the
    /// canonical problem *is* the original problem).
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| p == i)
    }
}

/// Apply a permutation: `out[i] = v[perm[i]]`.
fn apply(perm: &[usize], v: &IVec) -> IVec {
    IVec::from(perm.iter().map(|&p| v[p]).collect::<Vec<i64>>())
}

/// Map an original-coordinates vector into canonical coordinates
/// (`out[i] = v[perm[i]]`) — the inverse of [`map_back`]. Replication
/// uses this to carry an answer computed in a *sender's* coordinates
/// into the receiver's canonical cache slot; norm and cone membership
/// are permutation-invariant, so optimality survives the trip.
pub fn map_to_canonical(v: &IVec, perm: &[usize]) -> IVec {
    apply(perm, v)
}

/// Invert [`apply`]: given a canonical-coordinates vector, recover the
/// original-coordinates one (`out[perm[i]] = w[i]`).
pub fn map_back(w: &IVec, perm: &[usize]) -> IVec {
    let mut out = vec![0i64; w.dim()];
    for (i, &p) in perm.iter().enumerate() {
        out[p] = w[i];
    }
    IVec::from(out)
}

/// All permutations of `0..n`, in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    let mut used = vec![false; n];
    fn rec(
        n: usize,
        cur: &mut Vec<usize>,
        used: &mut Vec<bool>,
        at: usize,
        out: &mut Vec<Vec<usize>>,
    ) {
        if at == n {
            out.push(cur.clone());
            return;
        }
        for k in 0..n {
            if !used[k] {
                used[k] = true;
                cur[at] = k;
                rec(n, cur, used, at + 1, out);
                used[k] = false;
            }
        }
    }
    rec(n, &mut cur, &mut used, 0, &mut out);
    out
}

/// The comparison key of one permuted problem: the sorted vector list,
/// then the domain bounds. Lexicographic minimum over the orbit defines
/// the canonical form.
fn encoding(vectors: &[IVec], objective: &ObjectiveSpec) -> Vec<i64> {
    let mut key = Vec::with_capacity((vectors.len() + 2) * vectors.first().map_or(0, |v| v.dim()));
    for v in vectors {
        key.extend_from_slice(v.as_slice());
    }
    if let ObjectiveSpec::KnownBounds(d) = objective {
        key.extend_from_slice(d.lo().as_slice());
        key.extend_from_slice(d.hi().as_slice());
    }
    key
}

/// One orbit member during canonicalization: its comparison key, the
/// permutation that produced it, and the permuted problem itself.
type OrbitEntry = (Vec<i64>, Vec<usize>, Vec<IVec>, ObjectiveSpec);

/// Canonicalize a problem: minimal `(sorted σ(V), σ(domain))` encoding
/// over all lex-positivity-preserving axis permutations `σ`.
pub fn canonicalize(stencil: &Stencil, objective: &ObjectiveSpec) -> Canonical {
    let dim = stencil.dim();
    let identity: Vec<usize> = (0..dim).collect();
    let fallback = Canonical {
        stencil: stencil.clone(),
        objective: objective.clone(),
        perm: identity.clone(),
    };
    if dim > MAX_CANON_DIM {
        return fallback;
    }
    let mut best: Option<OrbitEntry> = None;
    for perm in permutations(dim) {
        let mut vectors: Vec<IVec> = stencil.iter().map(|v| apply(&perm, v)).collect();
        if !vectors.iter().all(IVec::is_lex_positive) {
            continue;
        }
        vectors.sort();
        vectors.dedup();
        let obj = match objective {
            ObjectiveSpec::ShortestVector => ObjectiveSpec::ShortestVector,
            ObjectiveSpec::KnownBounds(d) => ObjectiveSpec::KnownBounds(RectDomain::new(
                apply(&perm, d.lo()),
                apply(&perm, d.hi()),
            )),
        };
        let key = encoding(&vectors, &obj);
        let better = match &best {
            None => true,
            // The perm is the final tiebreak so the chosen permutation —
            // not just the canonical problem — is deterministic.
            Some((k, p, _, _)) => key < *k || (key == *k && perm < *p),
        };
        if better {
            best = Some((key, perm, vectors, obj));
        }
    }
    match best {
        Some((_, perm, vectors, objective)) => match Stencil::new(vectors) {
            Ok(stencil) => Canonical {
                stencil,
                objective,
                perm,
            },
            // Unreachable (permuted lex-positive vectors form a valid
            // stencil), but degrading to identity is always sound.
            Err(_) => fallback,
        },
        None => fallback,
    }
}

/// `⌊√n⌋` for the repair radius.
fn isqrt(n: i128) -> i64 {
    if n <= 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as i128;
    while x > 0 && x * x > n {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x as i64
}

/// Repair the lex tie-break of a permuted cache hit.
///
/// `candidate` must be a UOV of `stencil` achieving the problem's optimal
/// `(cost, ‖w‖²)` key — which `σ⁻¹` of a cached optimal answer always is,
/// both components being permutation-invariant. This scans the integer
/// points of the sphere `‖w‖² = ‖candidate‖²` in lexicographic order and
/// returns the first (hence lex-least) UOV of cost `cost`: exactly the
/// vector a direct search of the original problem returns under the
/// engine's total order `(cost, ‖w‖², lex w)`.
///
/// Returns `None` when the enumeration would exceed
/// [`REPAIR_ENUM_LIMIT`] or the oracle cannot be built — the caller
/// should fall back to a direct solve.
pub fn lex_min_equivalent(
    stencil: &Stencil,
    objective: &Objective<'_>,
    candidate: &IVec,
    cost: u128,
) -> Option<IVec> {
    let dim = stencil.dim();
    let m_star = candidate.try_norm_sq().ok()?;
    let r = isqrt(m_star);
    let side = 2u64.checked_mul(r as u64)?.checked_add(1)?;
    let mut points = 1u64;
    for _ in 0..dim {
        points = points.checked_mul(side)?;
        if points > REPAIR_ENUM_LIMIT {
            return None;
        }
    }
    let oracle = DoneOracle::try_new(stencil).ok()?;
    let unlimited = Budget::unlimited();
    let mut cur = vec![-r; dim];
    loop {
        let w = IVec::from(cur.clone());
        if w.is_lex_positive()
            && w.try_norm_sq() == Ok(m_star)
            && try_cost_of(objective, &w) == Ok(cost)
            && oracle.is_uov_budgeted(&w, &unlimited).unwrap_or(false)
        {
            // Lexicographic enumeration: the first match is the lex-min.
            return Some(w);
        }
        // Odometer advance, last axis fastest = lex ascending order.
        let mut k = dim;
        loop {
            if k == 0 {
                // The candidate itself is on the sphere, so this is
                // unreachable; returning None keeps the caller safe.
                return None;
            }
            k -= 1;
            if cur[k] < r {
                cur[k] += 1;
                break;
            }
            cur[k] = -r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_core::search::{find_best_uov, SearchConfig};
    use uov_isg::ivec;

    /// A stencil whose canonical form differs from its raw form: swap the
    /// two axes of the asymmetric stencil {(1,0), (2,1)}.
    fn asym() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![2, 1]]).unwrap()
    }

    fn swapped_asym() -> Stencil {
        Stencil::new(vec![ivec![0, 1], ivec![1, 2]]).unwrap()
    }

    #[test]
    fn permuted_stencils_share_a_canonical_form() {
        let a = canonicalize(&asym(), &ObjectiveSpec::ShortestVector);
        let b = canonicalize(&swapped_asym(), &ObjectiveSpec::ShortestVector);
        assert_eq!(a.stencil.vectors(), b.stencil.vectors());
        assert_eq!(a.objective, b.objective);
        // The two requests reach the same form through different perms.
        assert_ne!(a.perm, b.perm);
    }

    #[test]
    fn permuted_domains_permute_alongside() {
        let dom = RectDomain::new(ivec![1, 1], ivec![4, 9]);
        let a = canonicalize(&asym(), &ObjectiveSpec::KnownBounds(dom.clone()));
        let swapped_dom = RectDomain::new(ivec![1, 1], ivec![9, 4]);
        let b = canonicalize(&swapped_asym(), &ObjectiveSpec::KnownBounds(swapped_dom));
        assert_eq!(a.stencil.vectors(), b.stencil.vectors());
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn map_back_inverts_apply() {
        let perm = vec![2usize, 0, 1];
        let v = ivec![7, -3, 5];
        assert_eq!(map_back(&apply(&perm, &v), &perm), v);
        assert_eq!(map_to_canonical(&v, &perm), apply(&perm, &v));
    }

    #[test]
    fn canonical_problem_is_a_fixpoint() {
        for s in [asym(), swapped_asym()] {
            let c = canonicalize(&s, &ObjectiveSpec::ShortestVector);
            let again = canonicalize(&c.stencil, &c.objective);
            assert!(again.is_identity(), "canonicalizing twice must be stable");
            assert_eq!(again.stencil.vectors(), c.stencil.vectors());
        }
    }

    #[test]
    fn high_dimension_degrades_to_identity() {
        let dim = MAX_CANON_DIM + 1;
        let vectors: Vec<IVec> = (0..dim).map(|k| IVec::unit(dim, k)).collect();
        let s = Stencil::new(vectors).unwrap();
        let c = canonicalize(&s, &ObjectiveSpec::ShortestVector);
        assert!(c.is_identity());
    }

    #[test]
    fn uov_membership_is_permutation_invariant() {
        // The soundness claim behind the cache: σ(w) is a UOV of σ(V)
        // exactly when w is a UOV of V.
        let s = asym();
        let c = canonicalize(&s, &ObjectiveSpec::ShortestVector);
        let orig = DoneOracle::new(&s);
        let canon = DoneOracle::new(&c.stencil);
        for i in -3i64..=3 {
            for j in -3i64..=3 {
                let w_orig = map_back(&ivec![i, j], &c.perm);
                assert_eq!(
                    canon.is_uov(&ivec![i, j]),
                    orig.is_uov(&w_orig),
                    "membership diverged at canonical ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn tie_break_repair_matches_direct_search() {
        // Solve the canonical problem, map back, repair — must equal a
        // direct search of the *original* problem byte-for-byte.
        for s in [asym(), swapped_asym()] {
            let c = canonicalize(&s, &ObjectiveSpec::ShortestVector);
            let canon_best = find_best_uov(
                &c.stencil,
                Objective::ShortestVector,
                &SearchConfig::default(),
            )
            .unwrap();
            let mapped = map_back(&canon_best.uov, &c.perm);
            let repaired =
                lex_min_equivalent(&s, &Objective::ShortestVector, &mapped, canon_best.cost)
                    .expect("small norms stay under the enumeration limit");
            let direct =
                find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).unwrap();
            assert_eq!(repaired, direct.uov, "stencil {s:?}");
            assert_eq!(canon_best.cost, direct.cost, "stencil {s:?}");
        }
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0i128..200 {
            let r = isqrt(n) as i128;
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
        assert_eq!(isqrt(1 << 40), 1 << 20);
    }
}
