//! A blocking client for the planning service.

use std::io;
use std::time::Duration;

use crate::error::{ErrorCode, ServiceError};
use crate::proto::{
    kind, read_frame, write_frame_tenant, BatchRequest, BatchResponse, ErrorResponse,
    HealthResponse, PlanRequest, PlanResponse, ReplicateRequest, ReplicateResponse, StatsResponse,
    WorkUnitRequest, WorkUnitResponse,
};
use crate::server::AnyStream;

/// One connection to a planning server. Requests are strictly
/// sequential per connection (the protocol has no request IDs); open
/// more clients for concurrency.
///
/// The client survives server restarts: when a request runs into a
/// stale socket — the EOF or `BrokenPipe` a long-lived connection sees
/// after the server bounced — it transparently redials the endpoint
/// **once** and resends. This is safe because every request is
/// idempotent (planning is a pure function of the request) and the
/// retry happens only when no response frame was received. Persistent
/// failures still surface after the single retry.
pub struct Client {
    stream: AnyStream,
    endpoint: String,
    timeout: Option<Duration>,
    /// Tenant id stamped into request frame headers for the server's
    /// admission quotas. Tenant 0 (the default) keeps the version-1
    /// frame layout byte-for-byte; any other tenant upgrades request
    /// frames to the version-2 tenant header. Responses are always
    /// version 1 either way.
    tenant: u32,
}

impl Client {
    /// Dial a server at a TCP address (`"127.0.0.1:7878"`) or Unix
    /// socket (`"unix:/tmp/uov.sock"`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the endpoint is unreachable.
    pub fn connect(endpoint: &str) -> Result<Self, ServiceError> {
        let stream = AnyStream::connect(endpoint)?;
        Ok(Client {
            stream,
            endpoint: endpoint.to_string(),
            timeout: None,
            tenant: 0,
        })
    }

    /// The endpoint this client dials.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Identify as `tenant` for quota accounting on every subsequent
    /// request. Tenant 0 is the anonymous default and keeps the v1
    /// frame layout on the wire.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// The tenant id stamped into this client's request frames.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Cap how long [`Client::plan`] waits for a response frame.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the socket rejects the option.
    pub fn set_timeout(&mut self, t: Option<Duration>) -> Result<(), ServiceError> {
        self.stream.set_read_timeout(t)?;
        self.timeout = t;
        Ok(())
    }

    /// Whether an error means the socket is stale (half-open remnant of
    /// a bounced server) rather than the server answering slowly or
    /// rejecting the request: only these are worth one reconnect.
    fn is_stale_socket(err: &ServiceError) -> bool {
        match err {
            ServiceError::ConnectionClosed => true,
            ServiceError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotConnected
                    | io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }

    /// Drop the stale socket and dial the endpoint again, restoring the
    /// configured read timeout.
    fn reconnect(&mut self) -> Result<(), ServiceError> {
        let fresh = AnyStream::connect(&self.endpoint)?;
        fresh.set_read_timeout(self.timeout)?;
        self.stream = fresh;
        Ok(())
    }

    /// One request/response exchange, retried once over a fresh
    /// connection when the socket turns out to be stale.
    fn exchange(
        &mut self,
        req_kind: u8,
        payload: &[u8],
    ) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
        match self.exchange_once(req_kind, payload) {
            Err(e) if Self::is_stale_socket(&e) => {
                self.reconnect()?;
                self.exchange_once(req_kind, payload)
            }
            // A clean EOF before any response frame is the other face of
            // a stale socket: the server closed this connection while it
            // sat idle in our pocket. No response was received, so a
            // single resend over a fresh connection is safe.
            Ok(None) => {
                self.reconnect()?;
                self.exchange_once(req_kind, payload)
            }
            other => other,
        }
    }

    fn exchange_once(
        &mut self,
        req_kind: u8,
        payload: &[u8],
    ) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
        write_frame_tenant(&mut self.stream, req_kind, self.tenant, payload)?;
        read_frame(&mut self.stream)
    }

    /// Send one planning request and wait for the answer.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when the server answers with a typed
    /// error frame (overload, malformed, drain, internal failure); the
    /// protocol taxonomy of [`read_frame`] for transport-level failures.
    pub fn plan(&mut self, req: &PlanRequest) -> Result<PlanResponse, ServiceError> {
        match self.exchange(kind::REQ_PLAN, &req.encode())? {
            Some((kind::RESP_PLAN, payload)) => PlanResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected response frame kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Send a multi-plan batch — one frame, one round trip, one answer
    /// per entry — amortizing framing and syscalls across a whole
    /// program's loop nests. Entries succeed or fail independently;
    /// the whole frame is rejected only by admission control (quota,
    /// overload, drain) or a malformed batch envelope. Idempotent like
    /// [`Client::plan`], so the single-reconnect discipline applies.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when the server sheds the whole batch
    /// with a typed error frame; the transport taxonomy of
    /// [`read_frame`] otherwise.
    pub fn plan_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, ServiceError> {
        match self.exchange(kind::REQ_BATCH, &req.encode())? {
            Some((kind::RESP_BATCH, payload)) => BatchResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected batch response frame kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Execute one distributed-search work unit on the server: ship a
    /// `UOVCKPT1` snapshot, get the advanced snapshot back. Idempotent
    /// for the same reason plans are (the unit is a pure function of the
    /// shipped state), so the same single-reconnect discipline applies.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] for typed server errors; the transport
    /// taxonomy of [`read_frame`] otherwise.
    pub fn workunit(&mut self, req: &WorkUnitRequest) -> Result<WorkUnitResponse, ServiceError> {
        match self.exchange(kind::REQ_WORKUNIT, &req.encode())? {
            Some((kind::RESP_WORKUNIT, payload)) => WorkUnitResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected work-unit response kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Push one certified plan-cache entry to this server (neighbor
    /// replication). The server re-certifies the answer before storing
    /// it, so a lying or buggy pusher cannot poison the replica's cache.
    /// Idempotent: replicating the same entry twice stores the same
    /// canonical bytes, so the single-reconnect discipline applies.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] for typed server errors (notably
    /// `Malformed` when re-certification fails); the transport taxonomy
    /// of [`read_frame`] otherwise.
    pub fn replicate(&mut self, req: &ReplicateRequest) -> Result<ReplicateResponse, ServiceError> {
        match self.exchange(kind::REQ_REPLICATE, &req.encode())? {
            Some((kind::RESP_REPLICATE, payload)) => ReplicateResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected replicate response kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Read one pending response frame **without sending anything**,
    /// waiting at most `wait`. This is the drain half of zombie-socket
    /// recovery: after a work-unit attempt times out and the unit is
    /// re-dispatched under a fresh fencing epoch, the old socket may
    /// still deliver the superseded completion later. The coordinator
    /// keeps such sockets and drains them here so the late frame is
    /// observed (and discarded by epoch) instead of leaking.
    ///
    /// Returns `Ok(None)` on clean EOF. A read timeout surfaces as
    /// [`ServiceError::Io`] with kind `WouldBlock`/`TimedOut`.
    ///
    /// # Errors
    ///
    /// The transport taxonomy of [`read_frame`], plus timeout `Io`
    /// errors when nothing arrives within `wait`.
    pub fn recv_pending(&mut self, wait: Duration) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
        self.stream.set_read_timeout(Some(wait))?;
        let got = read_frame(&mut self.stream);
        // Restore the configured timeout even on error paths; a failed
        // restore on an already-dead socket is not worth surfacing.
        let _ = self.stream.set_read_timeout(self.timeout);
        got
    }

    /// Probe the server's liveness and readiness. Answered even while
    /// the server drains.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ServiceError::Malformed`] on an
    /// unexpected response kind.
    pub fn health(&mut self) -> Result<HealthResponse, ServiceError> {
        match self.exchange(kind::REQ_HEALTH, &[])? {
            Some((kind::RESP_HEALTH, payload)) => HealthResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected health response kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Fetch the server's traffic/fault counters and cache counters.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ServiceError::Malformed`] on an
    /// unexpected response kind.
    pub fn stats(&mut self) -> Result<StatsResponse, ServiceError> {
        match self.exchange(kind::REQ_STATS, &[])? {
            Some((kind::RESP_STATS, payload)) => StatsResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected stats response kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Ask the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ServiceError::Malformed`] if the server
    /// answers with anything but a shutdown acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        match self.exchange_once(kind::REQ_SHUTDOWN, &[])? {
            Some((kind::RESP_SHUTDOWN_ACK, _)) => Ok(()),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected shutdown response kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Whether a [`ServiceError`] is the server's overload rejection —
    /// callers usually back off and retry exactly these.
    pub fn is_overloaded(err: &ServiceError) -> bool {
        matches!(
            err,
            ServiceError::Rejected {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}
