//! A blocking client for the planning service.

use std::time::Duration;

use crate::error::{ErrorCode, ServiceError};
use crate::proto::{kind, read_frame, write_frame, ErrorResponse, PlanRequest, PlanResponse};
use crate::server::AnyStream;

/// One connection to a planning server. Requests are strictly
/// sequential per connection (the protocol has no request IDs); open
/// more clients for concurrency.
pub struct Client {
    stream: AnyStream,
}

impl Client {
    /// Dial a server at a TCP address (`"127.0.0.1:7878"`) or Unix
    /// socket (`"unix:/tmp/uov.sock"`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the endpoint is unreachable.
    pub fn connect(endpoint: &str) -> Result<Self, ServiceError> {
        let stream = AnyStream::connect(endpoint)?;
        Ok(Client { stream })
    }

    /// Cap how long [`Client::plan`] waits for a response frame.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if the socket rejects the option.
    pub fn set_timeout(&mut self, t: Option<Duration>) -> Result<(), ServiceError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Send one planning request and wait for the answer.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when the server answers with a typed
    /// error frame (overload, malformed, drain, internal failure); the
    /// protocol taxonomy of [`read_frame`] for transport-level failures.
    pub fn plan(&mut self, req: &PlanRequest) -> Result<PlanResponse, ServiceError> {
        write_frame(&mut self.stream, kind::REQ_PLAN, &req.encode())?;
        match read_frame(&mut self.stream)? {
            Some((kind::RESP_PLAN, payload)) => PlanResponse::decode(&payload),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected response frame kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Ask the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ServiceError::Malformed`] if the server
    /// answers with anything but a shutdown acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        write_frame(&mut self.stream, kind::REQ_SHUTDOWN, &[])?;
        match read_frame(&mut self.stream)? {
            Some((kind::RESP_SHUTDOWN_ACK, _)) => Ok(()),
            Some((kind::RESP_ERROR, payload)) => {
                let err = ErrorResponse::decode(&payload)?;
                Err(ServiceError::Rejected {
                    code: err.code,
                    msg: err.msg,
                })
            }
            Some((other, _)) => Err(ServiceError::Malformed(format!(
                "unexpected shutdown response kind {other}"
            ))),
            None => Err(ServiceError::ConnectionClosed),
        }
    }

    /// Whether a [`ServiceError`] is the server's overload rejection —
    /// callers usually back off and retry exactly these.
    pub fn is_overloaded(err: &ServiceError) -> bool {
        matches!(
            err,
            ServiceError::Rejected {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}
