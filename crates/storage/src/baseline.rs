//! Schedule-*dependent* storage baselines (the paper's §6 comparison
//! point, after Lefebvre & Feautrier).
//!
//! The abstract claims: *"OV-mapped code requires less storage than full
//! array expansion and only slightly more storage than schedule-dependent
//! minimal storage."* This module computes the schedule-dependent side of
//! that inequality for any concrete execution order:
//!
//! * [`max_live`] — the peak number of simultaneously live values, the
//!   storage floor no mapping for *that* schedule can beat (achievable
//!   with per-value renaming, i.e. a fully associative allocator);
//! * [`min_ov_for_schedule`] — the shortest occupancy vector that is
//!   legal for that one schedule, and its storage; the OV-shaped analogue
//!   of Lefebvre–Feautrier's fixed-schedule mapping.
//!
//! Both collapse to tiny numbers for the lexicographic schedule (the
//! paper's Figure 1(c): `m + 2`) and grow as the schedule gets more
//! parallel — while the UOV's storage sits fixed in between, valid for
//! all of them at once.

use uov_isg::{IVec, IterationDomain as _, RectDomain, Stencil};

use crate::legality::check_order;
use crate::mapping::{Layout, OvMap, StorageMap as _};

/// Peak number of simultaneously live values when `order` executes the
/// single-assignment loop over `domain` with dependences `stencil`.
///
/// A value is live from its production until its last in-domain consumer
/// has executed; values with no in-domain consumers never count.
///
/// # Panics
///
/// Panics if `order` reads a value before it is produced (not a
/// topological extension).
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, IterationDomain, RectDomain, Stencil};
/// use uov_storage::baseline::max_live;
///
/// let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
/// let dom = RectDomain::grid(6, 4);
/// let lex: Vec<_> = dom.points().collect();
/// // Row-major execution keeps about one row (m = 4) live.
/// assert!(max_live(&lex, &dom, &s) <= 4 + 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn max_live(order: &[IVec], domain: &RectDomain, stencil: &Stencil) -> usize {
    use std::collections::HashMap;
    let uses_of = |p: &IVec| -> usize {
        stencil
            .iter()
            .filter(|v| domain.contains(&(p + *v)))
            .count()
    };
    let mut pending: HashMap<IVec, usize> = HashMap::new();
    let mut live = 0usize;
    let mut peak = 0usize;
    for q in order {
        // Consume inputs first.
        for v in stencil {
            let p = q - v;
            if !domain.contains(&p) {
                continue;
            }
            let remaining = pending
                .get_mut(&p)
                .unwrap_or_else(|| panic!("value of {p} consumed before production"));
            *remaining -= 1;
            if *remaining == 0 {
                pending.remove(&p);
                live -= 1;
            }
        }
        let uses = uses_of(q);
        if uses > 0 {
            pending.insert(q.clone(), uses);
            live += 1;
            peak = peak.max(live);
        }
    }
    peak
}

/// The shortest occupancy vector legal for this specific `order`, found
/// by trying lex-positive candidates in length order within
/// `[-radius, radius]^d`, plus the storage its mapping allocates.
///
/// Returns `None` if no candidate in the box is legal (radius too small).
/// For a UOV the answer never exceeds the UOV's own cost; for a fixed
/// schedule it is usually *shorter* — that gap is the storage the UOV
/// pays for schedule independence.
pub fn min_ov_for_schedule(
    order: &[IVec],
    domain: &RectDomain,
    stencil: &Stencil,
    radius: i64,
) -> Option<(IVec, usize)> {
    let d = domain.dim();
    let mut candidates: Vec<IVec> = Vec::new();
    let mut cur = vec![-radius; d];
    loop {
        let w = IVec::from(cur.clone());
        if w.is_lex_positive() {
            candidates.push(w);
        }
        let mut k = d;
        loop {
            if k == 0 {
                candidates.sort_by_key(|w| (w.norm_sq(), w.clone()));
                for w in candidates {
                    let map = OvMap::new(domain, w.clone(), Layout::Interleaved);
                    if check_order(order, domain, stencil, &map).is_ok() {
                        return Some((w, map.size()));
                    }
                }
                return None;
            }
            k -= 1;
            if cur[k] < radius {
                cur[k] += 1;
                break;
            }
            cur[k] = -radius;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;
    use uov_schedule::{random_topological_order, LoopSchedule};

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    #[test]
    fn lex_maxlive_is_about_one_row() {
        // The Figure-1(c) claim: a row-major schedule needs ~m+2 cells.
        let dom = RectDomain::grid(10, 6);
        let s = fig1();
        let lex: Vec<IVec> = dom.points().collect();
        let peak = max_live(&lex, &dom, &s);
        assert!(peak <= 6 + 2, "peak {peak} should be ≈ m + 2");
        assert!(peak >= 6, "a full row stays live");
    }

    #[test]
    fn wavefront_needs_more_live_values() {
        // An anti-diagonal schedule keeps a whole wavefront live: strictly
        // more than row-major on a square grid.
        let dom = RectDomain::grid(8, 8);
        let s = fig1();
        let lex: Vec<IVec> = dom.points().collect();
        let wave = LoopSchedule::Wavefront(ivec![1, 1]).order(&dom);
        assert!(max_live(&wave, &dom, &s) >= max_live(&lex, &dom, &s));
    }

    #[test]
    fn fig1_lex_minimum_is_already_the_uov() {
        // A striking consequence of the diagonal dependence: for the Fig-1
        // stencil even the *fixed* row-major schedule admits no OV shorter
        // than the UOV (1,1) — (1,0) and (0,1) both clobber a value whose
        // cross consumer still waits. The storage-optimized m+2 version of
        // Figure 1(c) escapes the bound only by renaming into scalars.
        let dom = RectDomain::new(ivec![0, 0], ivec![7, 5]);
        let s = fig1();
        let lex: Vec<IVec> = dom.points().collect();
        let (ov, cells) = min_ov_for_schedule(&lex, &dom, &s, 3).expect("found");
        assert_eq!(ov, ivec![1, 1]);
        assert_eq!(
            cells,
            OvMap::new(&dom, ivec![1, 1], Layout::Interleaved).size()
        );
    }

    fn no_diag() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).unwrap()
    }

    #[test]
    fn schedule_specific_ov_beats_uov_without_diagonal() {
        // Without the diagonal, row-major admits the one-row OV (1,0)
        // (storage m+1) while the UOV remains (1,1) (storage n+m+1): the
        // premium the UOV pays for universality.
        let dom = RectDomain::new(ivec![0, 0], ivec![7, 5]);
        let s = no_diag();
        let lex: Vec<IVec> = dom.points().collect();
        let (ov, cells) = min_ov_for_schedule(&lex, &dom, &s, 3).expect("found");
        assert_eq!(ov, ivec![1, 0]);
        let uov_cells = OvMap::new(&dom, ivec![1, 1], Layout::Interleaved).size();
        assert!(
            cells < uov_cells,
            "fixed-schedule {cells} vs UOV {uov_cells}"
        );
    }

    #[test]
    fn schedule_specific_ov_breaks_under_other_schedules() {
        let dom = RectDomain::new(ivec![0, 0], ivec![6, 6]);
        let s = no_diag();
        let lex: Vec<IVec> = dom.points().collect();
        let (ov, _) = min_ov_for_schedule(&lex, &dom, &s, 3).expect("found");
        assert_eq!(ov, ivec![1, 0], "lex admits the one-row OV");
        // …which is not universal: adversarial sampling must break it.
        let map = OvMap::new(&dom, ov.clone(), Layout::Interleaved);
        let broken = (0..64).any(|seed| {
            let order = random_topological_order(&dom, &s, seed);
            check_order(&order, &dom, &s, &map).is_err()
        });
        assert!(broken, "{ov} survived every sample yet is not the UOV");
    }

    #[test]
    fn maxlive_lower_bounds_every_ov_storage() {
        let dom = RectDomain::new(ivec![0, 0], ivec![6, 6]);
        let s = fig1();
        for seed in 0..8 {
            let order = random_topological_order(&dom, &s, seed);
            let floor = max_live(&order, &dom, &s);
            if let Some((_, cells)) = min_ov_for_schedule(&order, &dom, &s, 3) {
                assert!(
                    cells >= floor,
                    "OV storage {cells} beat the renaming floor {floor} (seed {seed})"
                );
            }
        }
    }
}
