//! Storage mappings: from iteration points to one-dimensional memory.

use std::fmt;

use uov_isg::num::floor_mod;
use uov_isg::project::try_form_range;
use uov_isg::{IMat, IVec, IterationDomain, RectDomain};

use crate::error::MappingError;

/// A function mapping each iteration of a domain to a storage cell index in
/// `0 .. size()`.
///
/// Implementations must be total on their domain; mapping a point outside
/// the domain may panic or return an arbitrary in-range index.
pub trait StorageMap: fmt::Debug {
    /// The storage cell written by iteration `q`.
    fn map(&self, q: &IVec) -> usize;

    /// Number of storage cells the mapping may return (allocation size).
    fn size(&self) -> usize;

    /// Human-readable description for experiment output.
    fn describe(&self) -> String {
        format!("{self:?}")
    }
}

/// Full array expansion: every iteration gets its own cell, row-major over
/// the domain box — the "natural" storage of the paper's §5.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain};
/// use uov_storage::{NaturalMap, StorageMap};
///
/// let map = NaturalMap::new(&RectDomain::grid(3, 4));
/// assert_eq!(map.size(), 12);
/// assert_eq!(map.map(&ivec![1, 1]), 0);
/// assert_eq!(map.map(&ivec![1, 2]), 1);
/// assert_eq!(map.map(&ivec![2, 1]), 4);
/// ```
#[derive(Debug, Clone)]
pub struct NaturalMap {
    lo: IVec,
    strides: Vec<i64>,
    size: usize,
}

impl NaturalMap {
    /// Row-major expansion over the rectangular domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain has more points than the address space holds.
    /// Use [`NaturalMap::try_new`] on untrusted input.
    pub fn new(domain: &RectDomain) -> Self {
        match Self::try_new(domain) {
            Ok(m) => m,
            Err(e) => panic!("natural mapping construction failed: {e}"),
        }
    }

    /// [`NaturalMap::new`] returning [`MappingError::AllocationTooLarge`]
    /// instead of panicking on oversized domains.
    pub fn try_new(domain: &RectDomain) -> Result<Self, MappingError> {
        let d = domain.dim();
        let mut strides = vec![1i64; d];
        for k in (0..d.saturating_sub(1)).rev() {
            strides[k] = strides[k + 1]
                .checked_mul(domain.extent(k + 1))
                .ok_or(MappingError::AllocationTooLarge)?;
        }
        // The address computation in `map` runs in i64, so the whole
        // allocation must fit there, not merely in usize.
        let size = (0..d)
            .try_fold(1i64, |acc, k| acc.checked_mul(domain.extent(k)))
            .and_then(|n| usize::try_from(n).ok())
            .ok_or(MappingError::AllocationTooLarge)?;
        Ok(NaturalMap {
            lo: domain.lo().clone(),
            strides,
            size,
        })
    }
}

impl StorageMap for NaturalMap {
    fn map(&self, q: &IVec) -> usize {
        let mut idx = 0i64;
        for k in 0..q.dim() {
            idx += (q[k] - self.lo[k]) * self.strides[k];
        }
        match usize::try_from(idx) {
            Ok(a) => a,
            Err(_) => panic!("point {q} below domain lower corner"),
        }
    }

    fn size(&self) -> usize {
        self.size
    }

    fn describe(&self) -> String {
        format!("natural (array expansion, {} cells)", self.size)
    }
}

/// Storage layout for non-prime occupancy vectors (paper §4.2).
///
/// A non-prime OV (component gcd `g > 1`) passes through `g`
/// storage-equivalence classes; the mapping must keep them apart. The two
/// layouts differ only in where the `modterm` places them:
///
/// * [`Layout::Interleaved`] — cells of the `g` classes alternate:
///   `addr = class·g + residue`. The paper's Figure 5 layout; avoids
///   associativity conflicts, but references are not unit-stride.
/// * [`Layout::Blocked`] — each residue class owns a contiguous block:
///   `addr = class + residue·L`. Unit-stride within a sweep; the paper's
///   "two rows stored consecutively" variant.
///
/// For prime OVs (`g = 1`) the layouts coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Alternate cells of the residue classes (`addr = class·g + residue`).
    /// The paper's primary layout, hence the default.
    #[default]
    Interleaved,
    /// Give each residue class a contiguous block (`addr = class + residue·L`).
    Blocked,
}

/// An occupancy-vector storage mapping `SMov(q) = mv·q + shift + modterm`
/// (paper §4), for any dimension.
///
/// Construction reduces the OV with a unimodular `W` such that
/// `W·ov = (g, 0, …, 0)`: rows `1..d` of `W` are linear forms constant
/// along the OV (in 2-D, the paper's mapping vector `(−j, i)`), and the
/// position row `0` feeds the `modterm` residue for non-prime OVs. Shifts
/// are chosen from the domain's extreme points so addresses are exactly
/// `0 .. size`.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain};
/// use uov_storage::{Layout, OvMap, StorageMap};
///
/// // Figure 5: the 5-point stencil's UOV (2,0) with interleaved storage.
/// let domain = RectDomain::new(ivec![0, 0], ivec![9, 7]);
/// let map = OvMap::new(&domain, ivec![2, 0], Layout::Interleaved);
/// assert_eq!(map.size(), 16); // two rows of L = 8
/// // Interleaved: (t, x) ↦ 2x + (t mod 2).
/// assert_eq!(map.map(&ivec![0, 0]), 0);
/// assert_eq!(map.map(&ivec![1, 0]), 1);
/// assert_eq!(map.map(&ivec![0, 1]), 2);
/// assert_eq!(map.map(&ivec![2, 0]), map.map(&ivec![0, 0])); // reuse along ov
/// ```
#[derive(Clone)]
pub struct OvMap {
    ov: IVec,
    g: i64,
    /// Rows 1..d of the reduction: the class-projection forms.
    class_forms: Vec<IVec>,
    /// Row 0: position along the OV (mod g = residue class).
    position_form: IVec,
    /// Per-form minimum over the domain (the paper's `shift`).
    shifts: Vec<i64>,
    /// Per-form span (number of integer values over the domain).
    spans: Vec<i64>,
    layout: Layout,
    size: usize,
}

impl OvMap {
    /// Build the OV mapping for `ov` over `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `ov` is zero, its dimension differs from the domain's, the
    /// allocation overflows the address space, or the coordinates overflow
    /// during lattice reduction. Use [`OvMap::try_new`] on untrusted input.
    pub fn new(domain: &dyn IterationDomain, ov: IVec, layout: Layout) -> Self {
        match Self::try_new(domain, ov, layout) {
            Ok(m) => m,
            Err(MappingError::ZeroVector) => {
                panic!("occupancy vector must be non-zero")
            }
            Err(MappingError::DimMismatch { .. }) => panic!("dimension mismatch"),
            Err(e) => panic!("OV mapping construction failed: {e}"),
        }
    }

    /// [`OvMap::new`] returning [`MappingError`] instead of panicking on a
    /// zero vector, dimension mismatch, coordinate overflow, or an
    /// allocation beyond the address space.
    pub fn try_new(
        domain: &dyn IterationDomain,
        ov: IVec,
        layout: Layout,
    ) -> Result<Self, MappingError> {
        if ov.is_zero() {
            return Err(MappingError::ZeroVector);
        }
        if ov.dim() != domain.dim() {
            return Err(MappingError::DimMismatch {
                domain: domain.dim(),
                vector: ov.dim(),
            });
        }
        let g = ov.try_content()?;
        let w = IMat::try_lattice_reduction(&ov)?;
        let d = ov.dim();
        let mut class_forms = Vec::with_capacity(d - 1);
        let mut shifts = Vec::with_capacity(d - 1);
        let mut spans = Vec::with_capacity(d - 1);
        for r in 1..d {
            let form = w.row(r);
            let (lo, hi) = try_form_range(domain, &form)?;
            let span = hi
                .checked_sub(lo)
                .and_then(|s| s.checked_add(1))
                .ok_or(MappingError::AllocationTooLarge)?;
            class_forms.push(form);
            shifts.push(lo);
            spans.push(span);
        }
        let classes = spans
            .iter()
            .try_fold(1i64, |acc, &s| acc.checked_mul(s))
            .ok_or(MappingError::AllocationTooLarge)?;
        let size = classes
            .checked_mul(g)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or(MappingError::AllocationTooLarge)?;
        Ok(OvMap {
            ov,
            g,
            class_forms,
            position_form: w.row(0),
            shifts,
            spans,
            layout,
            size,
        })
    }

    /// The occupancy vector realised by this mapping.
    pub fn ov(&self) -> &IVec {
        &self.ov
    }

    /// The layout used for non-prime OVs.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The paper's *mapping vector* in 2-D (`(−j, i)` up to sign for a
    /// prime OV `(i, j)`); `None` for other dimensions.
    ///
    /// ```
    /// use uov_isg::{ivec, RectDomain};
    /// use uov_storage::{Layout, OvMap};
    ///
    /// let dom = RectDomain::grid(4, 4);
    /// let map = OvMap::new(&dom, ivec![1, 1], Layout::Interleaved);
    /// let mv = map.mapping_vector_2d().unwrap();
    /// assert_eq!(mv.dot(&ivec![1, 1]), 0); // perpendicular in the lattice sense
    /// ```
    pub fn mapping_vector_2d(&self) -> Option<IVec> {
        if self.ov.dim() == 2 {
            Some(self.class_forms[0].clone())
        } else {
            None
        }
    }

    /// The flattened storage-equivalence class index of `q` (row-major over
    /// the projected box), in `0 .. size/g`.
    fn class_index(&self, q: &IVec) -> i64 {
        let mut idx = 0i64;
        for (k, form) in self.class_forms.iter().enumerate() {
            let c = form.dot(q) - self.shifts[k];
            debug_assert!(
                (0..self.spans[k]).contains(&c),
                "point {q} projects outside the domain box"
            );
            idx = idx * self.spans[k] + c;
        }
        idx
    }

    /// The residue class of `q` along the OV — the paper's `modterm`
    /// input, `0` for prime OVs.
    pub fn residue(&self, q: &IVec) -> i64 {
        floor_mod(self.position_form.dot(q), self.g)
    }
}

impl StorageMap for OvMap {
    fn map(&self, q: &IVec) -> usize {
        let class = self.class_index(q);
        let residue = self.residue(q);
        let addr = match self.layout {
            Layout::Interleaved => class * self.g + residue,
            Layout::Blocked => class + residue * (self.size as i64 / self.g),
        };
        addr as usize
    }

    fn size(&self) -> usize {
        self.size
    }

    fn describe(&self) -> String {
        format!(
            "ov-mapped (ov = {}, {:?}, {} cells)",
            self.ov, self.layout, self.size
        )
    }
}

impl fmt::Debug for OvMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OvMap{{ov: {}, g: {}, layout: {:?}, size: {}}}",
            self.ov, self.g, self.layout, self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;

    #[test]
    fn natural_map_is_bijective_row_major() {
        let dom = RectDomain::new(ivec![0, -1], ivec![2, 1]);
        let map = NaturalMap::new(&dom);
        use uov_isg::IterationDomain as _;
        let mut seen = vec![false; map.size()];
        for p in dom.points() {
            let a = map.map(&p);
            assert!(!seen[a], "address {a} reused by {p}");
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn natural_map_3d() {
        let dom = RectDomain::new(ivec![0, 0, 0], ivec![1, 2, 3]);
        let map = NaturalMap::new(&dom);
        assert_eq!(map.size(), 24);
        assert_eq!(map.map(&ivec![0, 0, 0]), 0);
        assert_eq!(map.map(&ivec![0, 0, 1]), 1);
        assert_eq!(map.map(&ivec![0, 1, 0]), 4);
        assert_eq!(map.map(&ivec![1, 0, 0]), 12);
    }

    #[test]
    fn fig1b_mapping_matches_paper() {
        // SMov(q) = (−1,1)·q + n on the bordered grid, n+m+1 cells.
        let (n, m) = (5i64, 3i64);
        let dom = RectDomain::new(ivec![0, 0], ivec![n, m]);
        let map = OvMap::new(&dom, ivec![1, 1], Layout::Interleaved);
        assert_eq!(map.size() as i64, n + m + 1);
        use uov_isg::IterationDomain as _;
        for q in dom.points() {
            let a = map.map(&q) as i64;
            assert!(
                (0..n + m + 1).contains(&a),
                "address {a} out of range at {q}"
            );
            // Reuse exactly along the OV.
            let r = &q + &ivec![1, 1];
            if dom.contains(&r) {
                assert_eq!(map.map(&r), map.map(&q));
            }
            let s = &q + &ivec![1, 0];
            if dom.contains(&s) {
                assert_ne!(map.map(&s), map.map(&q));
            }
        }
    }

    #[test]
    fn ovmap_addresses_cover_range_exactly() {
        use uov_isg::IterationDomain as _;
        let dom = RectDomain::new(ivec![0, 0], ivec![7, 5]);
        // Prime OVs and axis-aligned non-prime OVs populate every cell of
        // the allocation (requirement 3 of §4.1: consecutive storage).
        for (ov, layout) in [
            (ivec![1, 1], Layout::Interleaved),
            (ivec![2, 0], Layout::Interleaved),
            (ivec![2, 0], Layout::Blocked),
            (ivec![1, -1], Layout::Interleaved),
            (ivec![3, 1], Layout::Interleaved),
        ] {
            let map = OvMap::new(&dom, ov.clone(), layout);
            let mut seen = vec![false; map.size()];
            for p in dom.points() {
                let a = map.map(&p);
                assert!(a < map.size(), "address out of bounds for ov {ov}");
                seen[a] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "unused cells for ov {ov} {layout:?}: {seen:?}"
            );
        }
        // Skewed non-prime OVs leave a few corner cells unused (a corner
        // class holds a single point, so only one of its g residues occurs);
        // the used count still equals the exact occupied-class count.
        for (ov, layout) in [
            (ivec![2, 2], Layout::Blocked),
            (ivec![2, 2], Layout::Interleaved),
        ] {
            let map = OvMap::new(&dom, ov.clone(), layout);
            let mut seen = vec![false; map.size()];
            for p in dom.points() {
                let a = map.map(&p);
                assert!(a < map.size(), "address out of bounds for ov {ov}");
                seen[a] = true;
            }
            let used = seen.iter().filter(|&&s| s).count() as u64;
            assert_eq!(
                used,
                uov_core::objective::storage_class_count_exact(&dom, &ov),
                "occupied cells must match exact class count for {ov}"
            );
        }
    }

    #[test]
    fn reuse_is_exactly_multiples_of_ov() {
        use uov_isg::IterationDomain as _;
        let dom = RectDomain::new(ivec![0, 0], ivec![6, 6]);
        for layout in [Layout::Interleaved, Layout::Blocked] {
            let ov = ivec![2, 1];
            let map = OvMap::new(&dom, ov.clone(), layout);
            let pts: Vec<_> = dom.points().collect();
            for a in &pts {
                for b in &pts {
                    let same = map.map(a) == map.map(b);
                    let diff = a - b;
                    let along = !diff.is_zero() && diff.content() != 0 && {
                        // diff = k·ov for integer k?
                        let k_num = diff[0];
                        let k_den = ov[0];
                        k_den != 0 && k_num % k_den == 0 && &ov * (k_num / k_den) == diff
                    } || diff.is_zero();
                    assert_eq!(same, along, "a={a} b={b} layout={layout:?}");
                }
            }
        }
    }

    #[test]
    fn fig5_interleaved_and_blocked() {
        // UOV (2,0) for the 5-point stencil; t rows of length L = 8.
        let dom = RectDomain::new(ivec![0, 0], ivec![9, 7]);
        let inter = OvMap::new(&dom, ivec![2, 0], Layout::Interleaved);
        let block = OvMap::new(&dom, ivec![2, 0], Layout::Blocked);
        assert_eq!(inter.size(), 16);
        assert_eq!(block.size(), 16);
        // Interleaved: SMov(q) = (0,2)·q + (q0 mod 2).
        assert_eq!(inter.map(&ivec![4, 3]), 6);
        assert_eq!(inter.map(&ivec![5, 3]), 7);
        // Blocked: SMov(q) = (0,1)·q + (q0 mod 2)·L.
        assert_eq!(block.map(&ivec![4, 3]), 3);
        assert_eq!(block.map(&ivec![5, 3]), 3 + 8);
    }

    #[test]
    fn residue_distinguishes_classes_of_non_prime_ov() {
        let dom = RectDomain::new(ivec![0, 0], ivec![5, 5]);
        let map = OvMap::new(&dom, ivec![3, 0], Layout::Interleaved);
        assert_eq!(map.residue(&ivec![0, 2]), 0);
        assert_eq!(map.residue(&ivec![1, 2]), 1);
        assert_eq!(map.residue(&ivec![2, 2]), 2);
        assert_eq!(map.residue(&ivec![3, 2]), 0);
    }

    #[test]
    fn three_dimensional_ovmap() {
        use uov_isg::IterationDomain as _;
        let dom = RectDomain::new(ivec![0, 0, 0], ivec![3, 3, 3]);
        let ov = ivec![1, 1, 1];
        let map = OvMap::new(&dom, ov.clone(), Layout::Interleaved);
        for p in dom.points() {
            let q = &p + &ov;
            if dom.contains(&q) {
                assert_eq!(map.map(&p), map.map(&q));
            }
            let r = &p + &ivec![1, 0, 0];
            if dom.contains(&r) {
                assert_ne!(map.map(&p), map.map(&r));
            }
            assert!(map.map(&p) < map.size());
        }
    }

    #[test]
    fn mapping_vector_2d_is_perpendicular() {
        let dom = RectDomain::grid(5, 5);
        for ov in [ivec![1, 1], ivec![2, 1], ivec![1, -2], ivec![4, 2]] {
            let map = OvMap::new(&dom, ov.clone(), Layout::Interleaved);
            let mv = map.mapping_vector_2d().expect("2-D");
            assert_eq!(mv.dot(&ov), 0, "mv not perpendicular for {ov}");
            assert_eq!(mv.content(), 1, "mv must be primitive for {ov}");
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ov_rejected() {
        let dom = RectDomain::grid(3, 3);
        let _ = OvMap::new(&dom, IVec::zero(2), Layout::Interleaved);
    }

    #[test]
    fn try_new_reports_errors_instead_of_panicking() {
        let dom = RectDomain::grid(3, 3);
        assert_eq!(
            OvMap::try_new(&dom, IVec::zero(2), Layout::Interleaved).unwrap_err(),
            MappingError::ZeroVector
        );
        assert_eq!(
            OvMap::try_new(&dom, ivec![1, 1, 1], Layout::Interleaved).unwrap_err(),
            MappingError::DimMismatch {
                domain: 2,
                vector: 3
            }
        );
        // Adversarial coordinates: the lattice reduction overflows.
        assert!(matches!(
            OvMap::try_new(&dom, ivec![i64::MIN, 0], Layout::Interleaved),
            Err(MappingError::Isg(_))
        ));
        // A domain whose projected span cannot be allocated.
        let huge = RectDomain::new(ivec![0, 0], ivec![i64::MAX - 1, i64::MAX - 1]);
        assert!(matches!(
            OvMap::try_new(&huge, ivec![1, 1], Layout::Interleaved),
            Err(MappingError::AllocationTooLarge)
        ));
        // The happy path agrees with the panicking constructor.
        let a = OvMap::try_new(&dom, ivec![1, 1], Layout::Interleaved).unwrap();
        let b = OvMap::new(&dom, ivec![1, 1], Layout::Interleaved);
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn natural_try_new_rejects_oversized_domain() {
        let huge = RectDomain::new(ivec![0, 0], ivec![i64::MAX - 1, i64::MAX - 1]);
        assert_eq!(
            NaturalMap::try_new(&huge).unwrap_err(),
            MappingError::AllocationTooLarge
        );
        let ok = NaturalMap::try_new(&RectDomain::grid(3, 4)).unwrap();
        assert_eq!(ok.size(), 12);
    }
}

#[cfg(test)]
mod domain_shape_tests {
    //! OvMap over non-rectangular domains: the paper's footnote-6 ISGs.
    use super::*;
    use uov_isg::{ivec, HalfspaceDomain2, Polygon2};

    #[test]
    fn ovmap_on_fig3_polygon() {
        let isg = Polygon2::fig3_isg();
        let map = OvMap::new(&isg, ivec![3, 1], Layout::Interleaved);
        assert_eq!(map.size(), 16, "Figure 3's count for ov (3,1)");
        let mut seen = vec![false; map.size()];
        for p in isg.points() {
            let a = map.map(&p);
            assert!(a < map.size());
            seen[a] = true;
            let q = &p + &ivec![3, 1];
            if isg.contains(&q) {
                assert_eq!(map.map(&p), map.map(&q));
            }
        }
        assert!(seen.iter().all(|&s| s), "every Figure-3 cell is used");
    }

    #[test]
    fn ovmap_on_fig3_polygon_nonprime() {
        let isg = Polygon2::fig3_isg();
        let map = OvMap::new(&isg, ivec![3, 0], Layout::Blocked);
        assert_eq!(map.size(), 27, "Figure 3's count for ov (3,0)");
        for p in isg.points() {
            assert!(map.map(&p) < map.size());
        }
    }

    #[test]
    fn ovmap_on_triangle() {
        let tri = HalfspaceDomain2::lower_triangle(0, 9);
        let map = OvMap::new(&tri, ivec![1, 1], Layout::Interleaved);
        // Anti-diagonal classes of the triangle: span of (−1,1) over the
        // hull {(0,0),(9,0),(9,9)} = 0 − (−9) + 1 = 10.
        assert_eq!(map.size(), 10);
        for p in tri.points() {
            assert!(map.map(&p) < map.size());
        }
    }
}
