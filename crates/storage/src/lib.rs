//! Occupancy-vector storage mappings (paper §4).
//!
//! After an occupancy vector has been chosen, the compiler must produce a
//! *storage mapping*: a function from iteration points to indices in
//! one-dimensional memory such that
//!
//! 1. points `ov` apart share a location,
//! 2. every point maps to an integer location,
//! 3. locations are consecutive (`0 .. size`).
//!
//! The paper derives the 2-D mapping vector `(i, j) → (−j, i)` for prime
//! OVs, adds a `modterm` for non-prime OVs (with *interleaved* or *blocked*
//! layout, §4.2), and counts allocations by projecting the ISG's extreme
//! points (§4.3). [`OvMap`] implements all of that for any dimension via a
//! unimodular lattice reduction that specialises to the paper's formulas in
//! 2-D.
//!
//! The crate also provides the machinery that makes schedule-independence
//! *checkable*: [`legality::check_order`] simulates an arbitrary execution
//! order against a mapping and reports the first liveness conflict, and
//! [`legality::schedule_independent_on_samples`] drives it with adversarial
//! random topological orders.
//!
//! # Example
//!
//! ```
//! use uov_isg::{ivec, IterationDomain, RectDomain};
//! use uov_storage::{OvMap, StorageMap, Layout};
//!
//! // Figure 1(b): UOV (1,1) on the bordered n×m grid needs n+m+1 cells.
//! let (n, m) = (6, 4);
//! let domain = RectDomain::new(ivec![0, 0], ivec![n, m]);
//! let map = OvMap::new(&domain, ivec![1, 1], Layout::Interleaved);
//! assert_eq!(map.size(), (n + m + 1) as usize);
//!
//! // Points one OV apart share storage; neighbours do not.
//! assert_eq!(map.map(&ivec![1, 1]), map.map(&ivec![2, 2]));
//! assert_ne!(map.map(&ivec![1, 1]), map.map(&ivec![1, 2]));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod baseline;
pub mod error;
pub mod legality;
pub mod mapping;

pub use error::MappingError;
pub use legality::{check_order, Conflict};
pub use mapping::{Layout, NaturalMap, OvMap, StorageMap};
