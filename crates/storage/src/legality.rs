//! Liveness-based legality checking of storage mappings.
//!
//! A storage mapping is legal for an execution order when no cell is
//! overwritten while it still holds a value with pending consumers. This
//! module *simulates* an order against a mapping and reports the first
//! violation — the executable semantics behind the paper's claim that a
//! UOV-based mapping "introduces no further dependences other than those
//! implied by true flow dependences".
//!
//! Driven with [`uov_schedule::random_topological_order`], this yields an
//! adversarial test of schedule independence: a *universal* OV must survive
//! every sampled order, while a merely schedule-specific OV fails on some.

use std::fmt;

use uov_isg::{IVec, IterationDomain, RectDomain, Stencil};
use uov_schedule::random_topological_order;

use crate::mapping::StorageMap;

/// A liveness violation found by [`check_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The storage cell at which the violation happened.
    pub location: usize,
    /// The iteration whose still-live value was destroyed (or missing).
    pub producer: IVec,
    /// The iteration that caused the violation.
    pub offender: IVec,
    /// What went wrong.
    pub kind: ConflictKind,
}

/// Classification of a liveness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// `offender` overwrote `producer`'s value before all of its consumers
    /// ran (a premature def-def reuse).
    OverwriteLive,
    /// `offender` read cell expecting `producer`'s value but found another
    /// iteration's value (a use-def violation observed at the read).
    StaleRead,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConflictKind::OverwriteLive => write!(
                f,
                "iteration {} overwrote cell {} while {}'s value was still live",
                self.offender, self.location, self.producer
            ),
            ConflictKind::StaleRead => write!(
                f,
                "iteration {} read cell {} but {}'s value had been clobbered",
                self.offender, self.location, self.producer
            ),
        }
    }
}

/// Simulate `order` executing the single-assignment loop described by
/// `stencil` over `domain`, with every iteration's value stored through
/// `map`. Returns the first conflict, or `Ok(())` if the mapping is legal
/// for this order.
///
/// Model: iteration `q` first reads the values produced at `q − v` for each
/// stencil vector `v` (when in-domain), then writes its own value to
/// `map.map(q)`. A value is live until its last in-domain consumer has
/// read it.
///
/// # Panics
///
/// Panics if `order` contains points outside `domain` or `map` returns an
/// address `≥ map.size()`.
pub fn check_order(
    order: &[IVec],
    domain: &RectDomain,
    stencil: &Stencil,
    map: &dyn StorageMap,
) -> Result<(), Conflict> {
    // Cell → (producer, remaining uses).
    let mut cells: Vec<Option<(IVec, usize)>> = vec![None; map.size()];
    // Producer → number of in-domain consumers, computed on first write.
    let uses_of = |p: &IVec| -> usize {
        stencil
            .iter()
            .filter(|v| domain.contains(&(p + *v)))
            .count()
    };

    for q in order {
        assert!(domain.contains(q), "order contains out-of-domain point {q}");
        // Read phase: consume each in-domain input.
        for v in stencil {
            let p = q - v;
            if !domain.contains(&p) {
                continue; // border input, stored outside the temporary array
            }
            let loc = map.map(&p);
            match &mut cells[loc] {
                Some((holder, remaining)) if *holder == p => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        cells[loc] = None; // value fully consumed: cell free
                    }
                }
                Some((holder, _)) => {
                    return Err(Conflict {
                        location: loc,
                        producer: p,
                        offender: holder.clone(),
                        kind: ConflictKind::StaleRead,
                    });
                }
                None => {
                    // Either p never ran (the order is not a topological
                    // extension) or the cell was reused and freed again;
                    // both surface as a stale read at q.
                    return Err(Conflict {
                        location: loc,
                        producer: p,
                        offender: q.clone(),
                        kind: ConflictKind::StaleRead,
                    });
                }
            }
        }
        // Write phase.
        let loc = map.map(q);
        assert!(loc < map.size(), "mapping returned out-of-range address");
        if let Some((holder, remaining)) = &cells[loc] {
            if *remaining > 0 {
                return Err(Conflict {
                    location: loc,
                    producer: holder.clone(),
                    offender: q.clone(),
                    kind: ConflictKind::OverwriteLive,
                });
            }
        }
        let uses = uses_of(q);
        if uses > 0 {
            cells[loc] = Some((q.clone(), uses));
        } else {
            // Live-out value with no in-loop consumers: the loop epilogue
            // copies it out; for the temporary-storage model it is dead.
            cells[loc] = None;
        }
    }
    Ok(())
}

/// Check a mapping against `samples` random topological orders (seeds
/// `0..samples`) plus the lexicographic order. Returns the first conflict.
///
/// A true UOV mapping must pass for *every* sample; this is the sampled
/// version of the universal quantifier in the UOV definition.
pub fn schedule_independent_on_samples(
    domain: &RectDomain,
    stencil: &Stencil,
    map: &dyn StorageMap,
    samples: u64,
) -> Result<(), Conflict> {
    let lex: Vec<IVec> = domain.points().collect();
    check_order(&lex, domain, stencil, map)?;
    for seed in 0..samples {
        let order = random_topological_order(domain, stencil, seed);
        check_order(&order, domain, stencil, map)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Layout, NaturalMap, OvMap};
    use uov_isg::ivec;
    use uov_schedule::LoopSchedule;

    fn fig1() -> Stencil {
        Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
    }

    fn dom66() -> RectDomain {
        RectDomain::new(ivec![0, 0], ivec![6, 6])
    }

    #[test]
    fn natural_map_never_conflicts() {
        let dom = dom66();
        let s = fig1();
        let map = NaturalMap::new(&dom);
        assert!(schedule_independent_on_samples(&dom, &s, &map, 16).is_ok());
    }

    #[test]
    fn uov_mapping_is_schedule_independent() {
        let dom = dom66();
        let s = fig1();
        for layout in [Layout::Interleaved, Layout::Blocked] {
            let map = OvMap::new(&dom, ivec![1, 1], layout);
            assert!(
                schedule_independent_on_samples(&dom, &s, &map, 32).is_ok(),
                "UOV (1,1) {layout:?} must survive every legal order"
            );
        }
    }

    #[test]
    fn non_universal_ov_fails_under_some_order() {
        // (2,0) is a legal OV for the lexicographic schedule of the Fig-1
        // loop — every consumer of (i−2, j) precedes (i, j) in row-major
        // order — but it is NOT universal: (2,0) − (0,1) = (2,−1) is not in
        // the dependence cone.
        let dom = dom66();
        let s = fig1();
        let map = OvMap::new(&dom, ivec![2, 0], Layout::Interleaved);
        // Lexicographic alone is fine…
        let lex: Vec<IVec> = {
            use uov_isg::IterationDomain as _;
            dom.points().collect()
        };
        assert!(check_order(&lex, &dom, &s, &map).is_ok());
        // …but a column-major (interchanged) order — legal for this stencil
        // — keeps each value live across a whole column sweep and breaks it.
        let interchanged = LoopSchedule::Interchange(vec![1, 0]).order(&dom);
        assert!(check_order(&interchanged, &dom, &s, &map).is_err());
        // Adversarial sampling also finds a violation.
        assert!(
            schedule_independent_on_samples(&dom, &s, &map, 64).is_err(),
            "a non-universal OV should break under adversarial sampling"
        );
        // (1,0) is not legal even for the lexicographic order: (i, j)
        // overwrites (i−1, j) whose diagonal consumer (i, j+1) still waits.
        let row_map = OvMap::new(&dom, ivec![1, 0], Layout::Interleaved);
        assert!(check_order(&lex, &dom, &s, &row_map).is_err());
    }

    #[test]
    fn stencil5_uov_survives_skewed_tiling() {
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap();
        let dom = RectDomain::new(ivec![0, 0], ivec![7, 11]);
        for layout in [Layout::Interleaved, Layout::Blocked] {
            let map = OvMap::new(&dom, ivec![2, 0], layout);
            let order = LoopSchedule::skewed_tiled_2d(2, vec![3, 4]).order(&dom);
            assert!(
                check_order(&order, &dom, &s, &map).is_ok(),
                "UOV (2,0) {layout:?} must survive skewed tiling"
            );
            assert!(schedule_independent_on_samples(&dom, &s, &map, 24).is_ok());
        }
    }

    #[test]
    fn stencil5_single_row_ov_fails() {
        // (1,0) reuses after one time step: fine for strict row-major time
        // stepping, but not universal (a wavefront keeps old rows live).
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .unwrap();
        let dom = RectDomain::new(ivec![0, 0], ivec![7, 11]);
        let map = OvMap::new(&dom, ivec![1, 0], Layout::Interleaved);
        assert!(schedule_independent_on_samples(&dom, &s, &map, 64).is_err());
    }

    #[test]
    fn conflict_reports_are_descriptive() {
        let dom = dom66();
        let s = fig1();
        let map = OvMap::new(&dom, ivec![1, 0], Layout::Interleaved);
        let interchanged = LoopSchedule::Interchange(vec![1, 0]).order(&dom);
        let err = check_order(&interchanged, &dom, &s, &map).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("cell"),
            "message should mention the cell: {msg}"
        );
    }

    #[test]
    fn every_sampled_uov_is_schedule_independent_small() {
        // Cross-validation: every vector the oracle calls a UOV must pass
        // the simulator on every sampled schedule; shorter non-UOVs fail on
        // at least one (checked via the oracle's own complement).
        let s = fig1();
        let dom = RectDomain::new(ivec![0, 0], ivec![4, 4]);
        let oracle = uov_core::DoneOracle::new(&s);
        for w in oracle.uovs_within(3) {
            let map = OvMap::new(&dom, w.clone(), Layout::Interleaved);
            assert!(
                schedule_independent_on_samples(&dom, &s, &map, 8).is_ok(),
                "oracle says {w} is a UOV but the simulator found a conflict"
            );
        }
    }
}
