//! Storage allocation sizing (paper §4.3 and Figure 6).
//!
//! "We apply [the mapping vector] to the extreme points of the ISG,
//! obtaining the number of integer points in this projection. If the OV is
//! non-prime the number of storage-equivalence classes which lie along the
//! OV must be taken into account."

use uov_isg::{IVec, IterationDomain};

/// Number of storage cells an OV mapping allocates over `domain` —
/// identical to the size of [`crate::OvMap`] and to
/// [`uov_core::objective::storage_class_count`], re-exported here under
/// the §4.3 name.
///
/// # Panics
///
/// Panics if `ov` is zero or dimensions disagree.
///
/// # Examples
///
/// ```
/// use uov_isg::{ivec, RectDomain};
/// use uov_storage::alloc::allocation_size;
///
/// // Figure 6: |mv·xp1 − mv·xp2| + 1 = n + m + 1 for ov = (1,1) on the
/// // bordered (n+1)×(m+1) ISG.
/// let (n, m) = (9, 5);
/// let isg = RectDomain::new(ivec![0, 0], ivec![n, m]);
/// assert_eq!(allocation_size(&isg, &ivec![1, 1]), (n + m + 1) as u64);
/// ```
pub fn allocation_size(domain: &dyn IterationDomain, ov: &IVec) -> u64 {
    uov_core::objective::storage_class_count(domain, ov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Layout, OvMap, StorageMap};
    use uov_isg::{ivec, Polygon2, RectDomain};

    #[test]
    fn fig6_allocation() {
        let isg = RectDomain::new(ivec![0, 0], ivec![7, 4]);
        assert_eq!(allocation_size(&isg, &ivec![1, 1]), 12);
    }

    #[test]
    fn allocation_matches_ovmap_size() {
        let rect = RectDomain::new(ivec![0, 0], ivec![9, 6]);
        for ov in [
            ivec![1, 1],
            ivec![2, 0],
            ivec![3, 1],
            ivec![1, -2],
            ivec![2, 2],
        ] {
            let map = OvMap::new(&rect, ov.clone(), Layout::Interleaved);
            assert_eq!(
                map.size() as u64,
                allocation_size(&rect, &ov).max(1),
                "size mismatch for {ov}"
            );
        }
    }

    #[test]
    fn fig3_allocations() {
        let isg = Polygon2::fig3_isg();
        assert_eq!(allocation_size(&isg, &ivec![3, 1]), 16);
        assert_eq!(allocation_size(&isg, &ivec![3, 0]), 27);
    }
}
