//! Typed errors for storage-mapping construction.

use std::fmt;

use uov_isg::IsgError;

/// Error building a storage mapping from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The occupancy vector is zero — it names no reuse direction.
    ZeroVector,
    /// The occupancy vector and the domain disagree on dimensionality.
    DimMismatch {
        /// Dimension of the domain.
        domain: usize,
        /// Dimension of the occupancy vector.
        vector: usize,
    },
    /// The allocation (or an intermediate span product) does not fit in
    /// the address space.
    AllocationTooLarge,
    /// Lattice arithmetic failed (overflow on adversarial coordinates, or
    /// a degenerate/empty domain).
    Isg(IsgError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ZeroVector => {
                write!(f, "occupancy vector must be non-zero")
            }
            MappingError::DimMismatch { domain, vector } => {
                write!(
                    f,
                    "occupancy vector dimension {vector} does not match domain dimension {domain}"
                )
            }
            MappingError::AllocationTooLarge => {
                write!(f, "storage allocation exceeds the addressable range")
            }
            MappingError::Isg(e) => write!(f, "lattice arithmetic failed: {e}"),
        }
    }
}

impl std::error::Error for MappingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MappingError::Isg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsgError> for MappingError {
    fn from(e: IsgError) -> Self {
        MappingError::Isg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(MappingError::ZeroVector.to_string().contains("non-zero"));
        assert!(MappingError::DimMismatch {
            domain: 2,
            vector: 3
        }
        .to_string()
        .contains("3"));
        assert!(MappingError::AllocationTooLarge
            .to_string()
            .contains("allocation"));
        let e: MappingError = IsgError::Overflow("dot product").into();
        assert!(matches!(e, MappingError::Isg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
