//! Property-based tests tying the UOV oracle to executable semantics.
//!
//! These are the tests that make the paper's central claim falsifiable:
//! a vector certified as a UOV by the algebraic oracle must yield a
//! conflict-free storage mapping under *every* sampled legal schedule, and
//! the certified-UOV set must coincide with the set of vectors that are
//! conflict-free under sufficiently adversarial sampling.

use proptest::prelude::*;
use uov_core::DoneOracle;
use uov_isg::{IVec, IterationDomain, RectDomain, Stencil};
use uov_schedule::random_topological_order;
use uov_storage::legality::schedule_independent_on_samples;
use uov_storage::{check_order, Layout, OvMap, StorageMap};

fn lex_positive_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2, 2), 1..4)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn certified_uovs_are_conflict_free_under_sampled_schedules(
        s in stencil_2d(),
        seed in 0u64..1000,
    ) {
        let dom = RectDomain::new(IVec::from([0, 0]), IVec::from([5, 5]));
        let oracle = DoneOracle::new(&s);
        // Test the initial UOV and every certified UOV in a small box.
        let mut candidates = oracle.uovs_within(3);
        candidates.push(s.sum());
        for w in candidates {
            if !oracle.is_uov(&w) {
                continue;
            }
            for layout in [Layout::Interleaved, Layout::Blocked] {
                let map = OvMap::new(&dom, w.clone(), layout);
                let order = random_topological_order(&dom, &s, seed);
                prop_assert!(
                    check_order(&order, &dom, &s, &map).is_ok(),
                    "UOV {} conflicted under seed {} for stencil {:?}",
                    w, seed, s
                );
            }
        }
    }

    #[test]
    fn short_non_uovs_conflict_under_adversarial_sampling(s in stencil_2d()) {
        // For every lex-positive non-UOV w in a small box that is at least
        // reachable storage-wise (w in DONE so some schedule reuses early),
        // adversarial sampling should expose a conflict. We assert the
        // one-sided containment that is actually guaranteed: a vector that
        // never conflicts across many samples *and* is in DONE must be hard
        // to distinguish from a UOV — so we only require that certified
        // UOVs never conflict and count how often non-UOVs are caught.
        let dom = RectDomain::new(IVec::from([0, 0]), IVec::from([5, 5]));
        let oracle = DoneOracle::new(&s);
        let mut caught = 0usize;
        let mut missed = 0usize;
        for i in 0..=3i64 {
            for j in -3..=3i64 {
                let w = IVec::from([i, j]);
                if !w.is_lex_positive() || oracle.is_uov(&w) {
                    continue;
                }
                let map = OvMap::new(&dom, w.clone(), Layout::Interleaved);
                if schedule_independent_on_samples(&dom, &s, &map, 48).is_err() {
                    caught += 1;
                } else {
                    missed += 1;
                    // A non-UOV that survives sampling must at least fail
                    // the algebraic test for a *reason*: some w − v is
                    // outside the cone. Confirm the oracle's verdict.
                    prop_assert!(
                        s.iter().any(|v| !oracle.in_done(&(&w - v))),
                        "oracle verdict inconsistent for {w}"
                    );
                }
            }
        }
        // Sampling is adversarial enough to catch a majority of short
        // non-UOVs; a regression here means the schedule sampler weakened.
        if caught + missed > 0 {
            prop_assert!(
                caught * 2 >= missed,
                "sampler caught {caught} but missed {missed} for {:?}",
                s
            );
        }
    }

    #[test]
    fn ovmap_respects_equivalence_classes(
        s in stencil_2d(),
        qx in 0i64..6, qy in 0i64..6,
        k in 1i64..3,
    ) {
        let dom = RectDomain::new(IVec::from([0, 0]), IVec::from([8, 8]));
        let w = s.sum();
        let map = OvMap::new(&dom, w.clone(), Layout::Interleaved);
        let q = IVec::from([qx, qy]);
        let r = &q + &w.scaled(k);
        if dom.contains(&q) && dom.contains(&r) {
            prop_assert_eq!(map.map(&q), map.map(&r));
        }
    }

    #[test]
    fn ovmap_addresses_in_range(
        s in stencil_2d(),
        layout in prop::sample::select(vec![Layout::Interleaved, Layout::Blocked]),
    ) {
        let dom = RectDomain::new(IVec::from([0, 0]), IVec::from([7, 7]));
        let w = s.sum();
        let map = OvMap::new(&dom, w, layout);
        for p in dom.points() {
            prop_assert!(map.map(&p) < map.size());
        }
    }
}
