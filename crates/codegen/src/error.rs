//! Typed errors for kernel generation, out-of-process compilation, and
//! autotuning. Every failure mode in this crate — including a missing
//! toolchain, a compiler diagnostic, and a hung candidate run — is a value
//! of [`CodegenError`]; nothing in the library path panics.

use std::fmt;
use std::io;

use uov_loopir::EmitError;

/// Any failure in the codegen pipeline.
#[derive(Debug)]
pub enum CodegenError {
    /// Symbolic access lowering failed (non-uniform write, unsupported
    /// mapping dimensionality).
    Emit(EmitError),
    /// Source generation supports 2-deep nests only (the paper's setting).
    UnsupportedDepth(usize),
    /// A `maps` slice did not line up with the nest's statement list.
    MapArity {
        /// Statements in the nest.
        stmts: usize,
        /// Entries supplied.
        maps: usize,
    },
    /// A tile extent was < 1.
    InvalidTile(i64),
    /// Tiling was requested but the plan found no legalising skew factor.
    TilingNotLegalized,
    /// No usable compiler binary was found (and none was configured).
    ToolchainMissing {
        /// The tool looked for (`rustc`, `cc`).
        tool: String,
    },
    /// The compiler ran and rejected the source.
    CompileFailed {
        /// The tool invoked.
        tool: String,
        /// Its exit status, if it exited at all.
        status: Option<i32>,
        /// Trailing stderr for diagnosis.
        stderr: String,
    },
    /// A compile or run exceeded its wall-clock allowance and was killed.
    Timeout {
        /// What was running.
        what: String,
        /// The allowance that expired.
        millis: u64,
    },
    /// A generated binary exited nonzero.
    RunFailed {
        /// Its exit status, if it exited at all.
        status: Option<i32>,
        /// Trailing stderr for diagnosis.
        stderr: String,
    },
    /// A generated binary's stdout did not parse as the expected report.
    BadOutput(String),
    /// Filesystem or process-spawn failure (work dir, source write, exec).
    Io {
        /// What was being done.
        what: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Emit(e) => write!(f, "access lowering failed: {e}"),
            CodegenError::UnsupportedDepth(d) => {
                write!(f, "source generation supports 2-deep nests, got depth {d}")
            }
            CodegenError::MapArity { stmts, maps } => {
                write!(f, "nest has {stmts} statements but {maps} map entries")
            }
            CodegenError::InvalidTile(t) => write!(f, "tile extent must be >= 1, got {t}"),
            CodegenError::TilingNotLegalized => {
                write!(
                    f,
                    "tiling requested but the plan has no legalising skew factor"
                )
            }
            CodegenError::ToolchainMissing { tool } => {
                write!(f, "no `{tool}` binary found on PATH (and none configured)")
            }
            CodegenError::CompileFailed {
                tool,
                status,
                stderr,
            } => write!(
                f,
                "`{tool}` failed (status {status:?}): {}",
                stderr.trim_end()
            ),
            CodegenError::Timeout { what, millis } => {
                write!(f, "{what} exceeded {millis} ms and was killed")
            }
            CodegenError::RunFailed { status, stderr } => write!(
                f,
                "generated binary exited with status {status:?}: {}",
                stderr.trim_end()
            ),
            CodegenError::BadOutput(why) => write!(f, "unparseable kernel output: {why}"),
            CodegenError::Io { what, source } => write!(f, "{what}: {source}"),
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Emit(e) => Some(e),
            CodegenError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<EmitError> for CodegenError {
    fn from(e: EmitError) -> Self {
        CodegenError::Emit(e)
    }
}
