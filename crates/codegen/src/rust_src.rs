//! Emit a complete, self-contained Rust program for a [`KernelSpec`].
//!
//! The generated program is the executable twin of
//! `uov_loopir::interp::run`: every value is computed by the same `f64`
//! expression tree in the same association order, imported halo elements
//! come from the same integer-hash [`input_value`] function, and each
//! statement's produced values are captured *as written* — so a correct
//! storage mapping makes the output bit-identical to the interpreter under
//! every legal schedule.
//!
//! Protocol of the generated binary:
//!
//! ```text
//! kernel [seed] [reps] [print]
//! TIME_NS <total-nanoseconds-for-all-reps>
//! CHECK <16-hex schedule-invariant checksum>
//! OUT <stmt> <lin> <16-hex f64 bits>     (one per point, when print=1)
//! ```
//!
//! [`input_value`]: crate::kernel::input_value

use std::fmt::Write as _;

use uov_loopir::emit::{render_affine, MappedIndex};
use uov_loopir::Expr;

use crate::kernel::{GenSchedule, KernelSpec};

/// Render a [`MappedIndex`] as a Rust `i64` expression over `i`/`j`.
fn index_to_rust(idx: &MappedIndex) -> String {
    match idx {
        MappedIndex::Affine(e) => render_affine(e),
        MappedIndex::Mod {
            base,
            position,
            g,
            scale,
        } => {
            let modterm = format!("({}).rem_euclid({g})", render_affine(position));
            if *scale == 1 {
                format!("({}) + {modterm}", render_affine(base))
            } else {
                format!("({}) + {modterm} * {scale}", render_affine(base))
            }
        }
    }
}

/// Hoist every read of `expr` into a `let r<n> = …;` binding (depth-first,
/// left-to-right — the interpreter's evaluation order) and return the
/// value expression over those bindings.
fn expr_to_rust(expr: &Expr, spec: &KernelSpec, seed_var: &str, binds: &mut Vec<String>) -> String {
    match expr {
        Expr::Const(c) => format!("({c:?}f64)"),
        Expr::Index(k) => format!("({} as f64)", uov_loopir::emit::index_name(*k)),
        Expr::Add(a, b) => format!(
            "({} + {})",
            expr_to_rust(a, spec, seed_var, binds),
            expr_to_rust(b, spec, seed_var, binds)
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            expr_to_rust(a, spec, seed_var, binds),
            expr_to_rust(b, spec, seed_var, binds)
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            expr_to_rust(a, spec, seed_var, binds),
            expr_to_rust(b, spec, seed_var, binds)
        ),
        Expr::Max(a, b) => {
            let a = expr_to_rust(a, spec, seed_var, binds);
            let b = expr_to_rust(b, spec, seed_var, binds);
            format!("({a}).max({b})")
        }
        Expr::Read { array, subscript } => {
            let n = binds.len();
            let e0 = render_affine(&subscript[0]);
            let e1 = render_affine(&subscript[1]);
            let bind = match spec.writer_of(*array) {
                None => format!("let r{n} = inp({seed_var}, {array}, {e0}, {e1});"),
                Some(ws) => {
                    let (wlo, whi) = spec.written_box(ws);
                    let idx = index_to_rust(&spec.index_expr(ws, subscript));
                    format!(
                        "let r{n} = {{ let e0: i64 = {e0}; let e1: i64 = {e1}; \
                         if e0 >= {} && e0 <= {} && e1 >= {} && e1 <= {} \
                         {{ b{ws}[({idx}) as usize] }} else {{ inp({seed_var}, {array}, e0, e1) }} }};",
                        wlo[0], whi[0], wlo[1], whi[1]
                    )
                }
            };
            binds.push(bind);
            format!("r{n}")
        }
    }
}

/// The loop body shared by every schedule: all statements at point
/// `(i, j)`, each value stored through its buffer index, captured, and
/// folded into the schedule-invariant checksum.
fn body(spec: &KernelSpec, indent: &str) -> String {
    let mut out = String::new();
    for (s, stmt) in spec.nest().stmts().iter().enumerate() {
        let mut binds = Vec::new();
        let value = expr_to_rust(&stmt.rhs, spec, "seed", &mut binds);
        for b in &binds {
            let _ = writeln!(out, "{indent}{b}");
        }
        let widx = index_to_rust(&spec.index_expr(s, &stmt.subscript));
        let _ = writeln!(out, "{indent}let v{s}: f64 = {value};");
        let _ = writeln!(out, "{indent}b{s}[({widx}) as usize] = v{s};");
        if spec.capture {
            let cap = render_affine(&spec.capture_index());
            let _ = writeln!(out, "{indent}cap{s}[({cap}) as usize] = v{s}.to_bits();");
        }
        let _ = writeln!(out, "{indent}check ^= mix({s}, i, j, v{s}.to_bits());");
    }
    out
}

/// Generate the complete Rust program for `spec`.
pub fn emit_rust(spec: &KernelSpec) -> String {
    let dom = spec.nest().domain();
    let (lo0, hi0) = (dom.lo()[0], dom.hi()[0]);
    let (lo1, hi1) = (dom.lo()[1], dom.hi()[1]);
    let mut out = String::new();
    let _ = writeln!(out, "// Generated by uov-codegen — do not edit.");
    let _ = writeln!(out, "// kernel: {}", spec.name);
    let _ = writeln!(out, "// schedule: {}", spec.schedule.describe());
    for line in &spec.provenance {
        let _ = writeln!(out, "// {line}");
    }
    let _ = writeln!(
        out,
        "#![allow(unused)]\n\
         \n\
         /// Deterministic input for imported (halo) elements; must match\n\
         /// uov_codegen::kernel::input_value bit for bit.\n\
         fn inp(seed: u64, array: usize, e0: i64, e1: i64) -> f64 {{\n\
         \x20   let mut h = seed ^ (array as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);\n\
         \x20   h = (h ^ (e0 as u64)).wrapping_mul(0x0000_0100_0000_01B3);\n\
         \x20   h ^= h >> 29;\n\
         \x20   h = (h ^ (e1 as u64)).wrapping_mul(0x0000_0100_0000_01B3);\n\
         \x20   h ^= h >> 29;\n\
         \x20   f64::from_bits((h >> 12) | 0x3FF0_0000_0000_0000)\n\
         }}\n\
         \n\
         /// Schedule-invariant checksum mix: XOR-accumulated over points.\n\
         fn mix(s: u64, i: i64, j: i64, bits: u64) -> u64 {{\n\
         \x20   let mut h = s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ bits;\n\
         \x20   h = (h ^ (i as u64)).wrapping_mul(0x0000_0100_0000_01B3);\n\
         \x20   h = (h ^ (j as u64)).wrapping_mul(0x0000_0100_0000_01B3);\n\
         \x20   h ^ (h >> 31)\n\
         }}\n\
         \n\
         fn fdiv(a: i64, b: i64) -> i64 {{\n\
         \x20   let q = a / b;\n\
         \x20   if a % b != 0 && (a < 0) != (b < 0) {{ q - 1 }} else {{ q }}\n\
         }}\n"
    );
    let _ = writeln!(out, "const LO0: i64 = {lo0};\nconst HI0: i64 = {hi0};");
    let _ = writeln!(out, "const LO1: i64 = {lo1};\nconst HI1: i64 = {hi1};\n");
    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(
        out,
        "    let args: Vec<String> = std::env::args().collect();\n\
         \x20   let seed: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);\n\
         \x20   let reps: u32 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1);\n\
         \x20   let print_out = args.get(3).map(|a| a == \"1\").unwrap_or(false);"
    );
    for (s, st) in spec.storage().iter().enumerate() {
        let _ = writeln!(out, "    let mut b{s}: Vec<f64> = vec![0.0; {}];", st.cells);
        if spec.capture {
            let _ = writeln!(
                out,
                "    let mut cap{s}: Vec<u64> = vec![0; {}];",
                spec.points()
            );
        }
    }
    let _ = writeln!(
        out,
        "    let mut check: u64 = 0;\n\
         \x20   let t0 = std::time::Instant::now();\n\
         \x20   for _rep in 0..reps {{\n\
         \x20       check = 0;"
    );
    match &spec.schedule {
        GenSchedule::Lex => {
            let _ = writeln!(
                out,
                "        for i in LO0..=HI0 {{\n\
                 \x20           for j in LO1..=HI1 {{"
            );
            out.push_str(&body(spec, "                "));
            let _ = writeln!(out, "            }}\n        }}");
        }
        GenSchedule::SkewTiled { f, tile } => {
            let (t0, t1) = (tile[0], tile[1]);
            // Tiles live in the image space (u, v) = (i, f·i + j),
            // anchored at the image of the domain's lower corner; loops
            // enumerate lexicographically by (tile u, tile v, u, v) —
            // exactly LoopSchedule::skewed_tiled_2d's order.
            let vmin = (f * lo0).min(f * hi0) + lo1;
            let vmax = (f * lo0).max(f * hi0) + hi1;
            let _ = writeln!(
                out,
                "        let vank: i64 = {f} * LO0 + LO1;\n\
                 \x20       for tu in 0..=((HI0 - LO0) / {t0}) {{\n\
                 \x20           for tv in fdiv({vmin} - vank, {t1})..=fdiv({vmax} - vank, {t1}) {{\n\
                 \x20               let ulo = LO0 + tu * {t0};\n\
                 \x20               let uhi = if ulo + {t0} - 1 < HI0 {{ ulo + {t0} - 1 }} else {{ HI0 }};\n\
                 \x20               for u in ulo..=uhi {{\n\
                 \x20                   let vband = vank + tv * {t1};\n\
                 \x20                   let vlo = if vband > {f} * u + LO1 {{ vband }} else {{ {f} * u + LO1 }};\n\
                 \x20                   let vhi = if vband + {t1} - 1 < {f} * u + HI1 {{ vband + {t1} - 1 }} else {{ {f} * u + HI1 }};\n\
                 \x20                   for v in vlo..=vhi {{\n\
                 \x20                       let i = u;\n\
                 \x20                       let j = v - {f} * u;"
            );
            out.push_str(&body(spec, "                        "));
            let _ = writeln!(
                out,
                "                    }}\n\
                 \x20               }}\n\
                 \x20           }}\n\
                 \x20       }}"
            );
        }
    }
    let _ = writeln!(
        out,
        "    }}\n\
         \x20   let ns: u128 = t0.elapsed().as_nanos();\n\
         \x20   println!(\"TIME_NS {{ns}}\");\n\
         \x20   println!(\"CHECK {{check:016x}}\");"
    );
    if spec.capture {
        let _ = writeln!(out, "    if print_out {{");
        for s in 0..spec.storage().len() {
            let _ = writeln!(
                out,
                "        for (lin, bits) in cap{s}.iter().enumerate() {{\n\
                 \x20           println!(\"OUT {s} {{lin}} {{bits:016x}}\");\n\
                 \x20       }}"
            );
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;
    use uov_loopir::examples;
    use uov_storage::{Layout, OvMap};

    #[test]
    fn emitted_source_has_protocol_and_mapped_index() {
        let nest = examples::stencil5_nest(4, 8);
        let map = OvMap::new(nest.domain(), ivec![2, 0], Layout::Interleaved);
        let spec = super::super::kernel::KernelSpec::new(
            "stencil5",
            &nest,
            &[Some(&map)],
            GenSchedule::SkewTiled { f: 2, tile: [2, 4] },
        )
        .unwrap()
        .with_provenance(vec!["certificate transcript hash 0xdeadbeef".into()]);
        let src = emit_rust(&spec);
        assert!(src.contains("// kernel: stencil5"));
        assert!(src.contains("0xdeadbeef"));
        assert!(src.contains("TIME_NS"));
        assert!(src.contains("rem_euclid(2)"), "modterm expected:\n{src}");
        assert!(src.contains("for tu in"), "tile loops expected");
    }

    #[test]
    fn untiled_natural_emits_plain_loops() {
        let nest = examples::fig1_nest(4, 4);
        let spec =
            super::super::kernel::KernelSpec::new("fig1", &nest, &[], GenSchedule::Lex).unwrap();
        let src = emit_rust(&spec);
        assert!(src.contains("for i in LO0..=HI0"));
        assert!(!src.contains("for tu in"));
    }
}
