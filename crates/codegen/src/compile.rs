//! Out-of-process compilation and execution of generated kernels.
//!
//! Everything here is defensive: toolchains are *discovered*, never
//! assumed; compiles and runs get hard wall-clock allowances and are
//! killed (not waited on) when they exceed them; and every failure mode is
//! a typed [`CodegenError`]. The autotuner builds its degradation ladder
//! on these guarantees — a missing `rustc` must surface as
//! [`CodegenError::ToolchainMissing`], not a panic or a hang.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use crate::error::CodegenError;

/// Locate a tool binary: an explicit override (checked for existence), or
/// the first match on `PATH`.
///
/// # Errors
///
/// [`CodegenError::ToolchainMissing`] when neither yields a file.
pub fn find_tool(name: &str, override_path: Option<&Path>) -> Result<PathBuf, CodegenError> {
    if let Some(p) = override_path {
        if p.is_file() {
            return Ok(p.to_path_buf());
        }
        return Err(CodegenError::ToolchainMissing {
            tool: p.display().to_string(),
        });
    }
    if let Some(paths) = std::env::var_os("PATH") {
        for dir in std::env::split_paths(&paths) {
            let cand = dir.join(name);
            if cand.is_file() {
                return Ok(cand);
            }
        }
    }
    Err(CodegenError::ToolchainMissing {
        tool: name.to_string(),
    })
}

/// Outcome of a bounded subprocess run.
struct Finished {
    status: Option<i32>,
    stdout: String,
    stderr: String,
}

/// Run `cmd` to completion with a hard wall-clock allowance. The child is
/// killed on expiry; reader threads drain stdout/stderr so a chatty child
/// can never deadlock on a full pipe.
fn run_bounded(cmd: &mut Command, what: &str, timeout: Duration) -> Result<Finished, CodegenError> {
    fn io_err(what: String) -> impl FnOnce(std::io::Error) -> CodegenError {
        move |source| CodegenError::Io { what, source }
    }
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(io_err(format!("spawning {what}")))?;
    let drain = |pipe: Option<Box<dyn Read + Send>>| {
        std::thread::spawn(move || {
            let mut buf = String::new();
            if let Some(mut pipe) = pipe {
                let _ = pipe.read_to_string(&mut buf);
            }
            buf
        })
    };
    let out_pipe: Option<Box<dyn Read + Send>> = child
        .stdout
        .take()
        .map(|p| Box::new(p) as Box<dyn Read + Send>);
    let err_pipe: Option<Box<dyn Read + Send>> = child
        .stderr
        .take()
        .map(|p| Box::new(p) as Box<dyn Read + Send>);
    let out_thread = drain(out_pipe);
    let err_thread = drain(err_pipe);
    let deadline = Instant::now() + timeout;
    let status = loop {
        match child
            .try_wait()
            .map_err(io_err(format!("waiting for {what}")))?
        {
            Some(status) => break status.code(),
            None => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    // Join the drains so the threads don't outlive us.
                    let _ = out_thread.join();
                    let _ = err_thread.join();
                    return Err(CodegenError::Timeout {
                        what: what.to_string(),
                        millis: timeout.as_millis() as u64,
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    let stdout = out_thread.join().unwrap_or_default();
    let stderr = err_thread.join().unwrap_or_default();
    Ok(Finished {
        status,
        stdout,
        stderr,
    })
}

/// Truncate compiler/runtime stderr to a diagnosable tail.
fn tail(s: &str) -> String {
    const KEEP: usize = 2000;
    if s.len() <= KEEP {
        s.to_string()
    } else {
        format!("…{}", &s[s.len() - KEEP..])
    }
}

/// Compile a generated Rust source file to a standalone binary.
///
/// # Errors
///
/// [`CodegenError::CompileFailed`] with the compiler's stderr,
/// [`CodegenError::Timeout`], or spawn I/O errors.
pub fn compile_rust(
    rustc: &Path,
    src: &Path,
    out: &Path,
    optimize: bool,
    timeout: Duration,
) -> Result<(), CodegenError> {
    let opt = if optimize { "3" } else { "0" };
    let mut cmd = Command::new(rustc);
    cmd.arg("--edition")
        .arg("2021")
        .arg("-C")
        .arg(format!("opt-level={opt}"))
        .arg(src)
        .arg("-o")
        .arg(out);
    let fin = run_bounded(&mut cmd, "rustc", timeout)?;
    if fin.status != Some(0) {
        return Err(CodegenError::CompileFailed {
            tool: "rustc".to_string(),
            status: fin.status,
            stderr: tail(&fin.stderr),
        });
    }
    Ok(())
}

/// Compile a generated C source file to a standalone binary.
///
/// `-ffp-contract=off` keeps the doubles bit-identical to the Rust and
/// interpreter runs (no FMA contraction of the stencil sums).
///
/// # Errors
///
/// As [`compile_rust`].
pub fn compile_c(
    cc: &Path,
    src: &Path,
    out: &Path,
    optimize: bool,
    timeout: Duration,
) -> Result<(), CodegenError> {
    let opt = if optimize { "-O2" } else { "-O0" };
    let mut cmd = Command::new(cc);
    cmd.arg("-std=c99")
        .arg(opt)
        .arg("-ffp-contract=off")
        .arg(src)
        .arg("-o")
        .arg(out);
    let fin = run_bounded(&mut cmd, "cc", timeout)?;
    if fin.status != Some(0) {
        return Err(CodegenError::CompileFailed {
            tool: "cc".to_string(),
            status: fin.status,
            stderr: tail(&fin.stderr),
        });
    }
    Ok(())
}

/// Parsed output of a generated kernel binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Total nanoseconds for all reps.
    pub time_ns: u128,
    /// The schedule-invariant checksum.
    pub check: u64,
    /// Captured `(statement, row-major point, f64 bits)` triples, present
    /// when the kernel was generated with capture and run with `print`.
    pub outs: Vec<(usize, usize, u64)>,
}

/// Execute a compiled kernel binary under the generated protocol.
///
/// # Errors
///
/// [`CodegenError::RunFailed`] on a nonzero exit, [`CodegenError::Timeout`]
/// if the allowance expires, [`CodegenError::BadOutput`] if stdout does not
/// parse.
pub fn run_kernel(
    bin: &Path,
    seed: u64,
    reps: u32,
    print: bool,
    timeout: Duration,
) -> Result<RunOutput, CodegenError> {
    let mut cmd = Command::new(bin);
    cmd.arg(seed.to_string())
        .arg(reps.to_string())
        .arg(if print { "1" } else { "0" });
    let fin = run_bounded(&mut cmd, "generated kernel", timeout)?;
    if fin.status != Some(0) {
        return Err(CodegenError::RunFailed {
            status: fin.status,
            stderr: tail(&fin.stderr),
        });
    }
    parse_output(&fin.stdout)
}

/// Parse the `TIME_NS`/`CHECK`/`OUT` protocol emitted by generated
/// kernels.
///
/// # Errors
///
/// [`CodegenError::BadOutput`] on any missing or malformed line.
pub fn parse_output(stdout: &str) -> Result<RunOutput, CodegenError> {
    let mut time_ns = None;
    let mut check = None;
    let mut outs = Vec::new();
    for line in stdout.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("TIME_NS") => {
                time_ns = parts.next().and_then(|v| v.parse::<u128>().ok());
                if time_ns.is_none() {
                    return Err(CodegenError::BadOutput(format!("bad TIME_NS line: {line}")));
                }
            }
            Some("CHECK") => {
                check = parts.next().and_then(|v| u64::from_str_radix(v, 16).ok());
                if check.is_none() {
                    return Err(CodegenError::BadOutput(format!("bad CHECK line: {line}")));
                }
            }
            Some("OUT") => {
                let s = parts.next().and_then(|v| v.parse::<usize>().ok());
                let lin = parts.next().and_then(|v| v.parse::<usize>().ok());
                let bits = parts.next().and_then(|v| u64::from_str_radix(v, 16).ok());
                match (s, lin, bits) {
                    (Some(s), Some(lin), Some(bits)) => outs.push((s, lin, bits)),
                    _ => return Err(CodegenError::BadOutput(format!("bad OUT line: {line}"))),
                }
            }
            _ => {}
        }
    }
    match (time_ns, check) {
        (Some(time_ns), Some(check)) => Ok(RunOutput {
            time_ns,
            check,
            outs,
        }),
        _ => Err(CodegenError::BadOutput(
            "missing TIME_NS or CHECK line".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_tool_is_typed() {
        let err = find_tool(
            "definitely-not-a-compiler-xyz",
            Some(Path::new("/nonexistent/rustc")),
        )
        .unwrap_err();
        assert!(matches!(err, CodegenError::ToolchainMissing { .. }));
        let err = find_tool("definitely-not-a-compiler-xyz", None).unwrap_err();
        assert!(matches!(err, CodegenError::ToolchainMissing { .. }));
    }

    #[test]
    fn protocol_parses_and_rejects() {
        let ok = parse_output("TIME_NS 123\nCHECK 00000000000000ff\nOUT 0 7 3ff0000000000000\n")
            .unwrap();
        assert_eq!(ok.time_ns, 123);
        assert_eq!(ok.check, 0xff);
        assert_eq!(ok.outs, vec![(0, 7, 0x3ff0000000000000)]);
        assert!(matches!(
            parse_output("CHECK 00ff\n"),
            Err(CodegenError::BadOutput(_))
        ));
        assert!(matches!(
            parse_output("TIME_NS abc\nCHECK 00ff\n"),
            Err(CodegenError::BadOutput(_))
        ));
    }
}
