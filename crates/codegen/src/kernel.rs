//! The kernel model: what to generate, independent of target language.
//!
//! A [`KernelSpec`] couples a validated 2-deep [`LoopNest`] with a
//! per-statement storage decision (natural dense array, or a UOV-mapped
//! 1-D buffer via [`OvAccess`]) and a [`GenSchedule`]. The Rust and C
//! emitters consume the same spec, so the loop-bound and index algebra is
//! decided here exactly once.

use uov_isg::{IVec, IterationDomain as _};
use uov_loopir::emit::{MappedIndex, OvAccess};
use uov_loopir::{AffineExpr, LoopNest};
use uov_storage::{OvMap, StorageMap as _};

use crate::error::CodegenError;

/// The execution order the generated loops realise.
///
/// Both shapes enumerate iterations in exactly the order of the
/// corresponding `uov_schedule::LoopSchedule` materialisation
/// (`Lexicographic`, and `TransformedTiled` with the 2-D skew
/// `v = f·i + j`), so interpreter-side legality results carry over to the
/// generated code verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenSchedule {
    /// Original program order: lexicographic on `(i, j)`.
    Lex,
    /// Tiling in the image of the skew `u = i, v = f·i + j`; `f = 0` is
    /// plain rectangular tiling. Tiles are anchored at the image of the
    /// domain's lower corner and run in lexicographic `(tile, image)`
    /// order — the same total order as
    /// `LoopSchedule::skewed_tiled_2d(f, tile)`.
    SkewTiled {
        /// The legalising skew factor (0 when rectangular tiling is
        /// already legal).
        f: i64,
        /// Tile extents along the transformed `(u, v)` axes; both ≥ 1.
        tile: [i64; 2],
    },
}

impl GenSchedule {
    /// A short description for provenance comments and reports.
    pub fn describe(&self) -> String {
        match self {
            GenSchedule::Lex => "lexicographic (untiled)".to_string(),
            GenSchedule::SkewTiled { f, tile } => {
                format!("skew f={f}, tile {}x{}", tile[0], tile[1])
            }
        }
    }
}

/// How one statement's array is stored in the generated program.
#[derive(Debug, Clone)]
pub enum StmtAccess {
    /// Full array expansion: a dense row-major buffer over the statement's
    /// written box (`domain + write_offset`).
    Natural {
        /// The uniform write offset `c_w`.
        write_offset: IVec,
    },
    /// The statement's array folded through a UOV mapping.
    Mapped(OvAccess),
}

/// One statement's generation-ready storage decision.
#[derive(Debug, Clone)]
pub struct StmtStorage {
    /// Access lowering for this statement.
    pub access: StmtAccess,
    /// Buffer length in `f64` cells.
    pub cells: usize,
}

/// Everything the emitters need to generate one executable kernel.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name, stamped into the generated source.
    pub name: String,
    nest: LoopNest,
    storage: Vec<StmtStorage>,
    /// The loop order to generate.
    pub schedule: GenSchedule,
    /// Extra provenance comment lines (certificate hashes, plan summary).
    pub provenance: Vec<String>,
    /// Generate per-iteration capture arrays (`OUT` lines) for
    /// differential testing. Off for benchmarking: capture storage is the
    /// natural (expanded) footprint and would defeat the mapping.
    pub capture: bool,
}

impl KernelSpec {
    /// Build a spec for `nest`, folding statement `s`'s array through
    /// `maps[s]` where present (natural storage otherwise).
    ///
    /// # Errors
    ///
    /// [`CodegenError::UnsupportedDepth`] for non-2-deep nests,
    /// [`CodegenError::MapArity`] when `maps` is longer than the statement
    /// list, [`CodegenError::InvalidTile`] for tile extents < 1, and
    /// lowering errors from [`OvAccess::new`]. Statements with non-uniform
    /// write subscripts are rejected even when unmapped — the capture
    /// indexing needs the producer-iteration inverse.
    pub fn new(
        name: impl Into<String>,
        nest: &LoopNest,
        maps: &[Option<&OvMap>],
        schedule: GenSchedule,
    ) -> Result<Self, CodegenError> {
        if nest.depth() != 2 {
            return Err(CodegenError::UnsupportedDepth(nest.depth()));
        }
        if maps.len() > nest.stmts().len() {
            return Err(CodegenError::MapArity {
                stmts: nest.stmts().len(),
                maps: maps.len(),
            });
        }
        if let GenSchedule::SkewTiled { tile, .. } = &schedule {
            if let Some(&bad) = tile.iter().find(|&&t| t < 1) {
                return Err(CodegenError::InvalidTile(bad));
            }
        }
        let mut storage = Vec::with_capacity(nest.stmts().len());
        for (s, stmt) in nest.stmts().iter().enumerate() {
            match maps.get(s).copied().flatten() {
                Some(map) => {
                    let access = OvAccess::new(nest, s, map)?;
                    storage.push(StmtStorage {
                        access: StmtAccess::Mapped(access),
                        cells: map.size(),
                    });
                }
                None => {
                    let mut write_offset = vec![0i64; stmt.subscript.len()];
                    for (pos, e) in stmt.subscript.iter().enumerate() {
                        let Some((_, c)) = e.index_offset() else {
                            return Err(CodegenError::Emit(
                                uov_loopir::EmitError::NonUniformWrite { stmt: s, pos },
                            ));
                        };
                        write_offset[pos] = c;
                    }
                    let cells = usize::try_from(nest.domain().num_points()).unwrap_or(usize::MAX);
                    storage.push(StmtStorage {
                        access: StmtAccess::Natural {
                            write_offset: IVec::from(write_offset),
                        },
                        cells,
                    });
                }
            }
        }
        Ok(KernelSpec {
            name: name.into(),
            nest: nest.clone(),
            storage,
            schedule,
            provenance: Vec::new(),
            capture: true,
        })
    }

    /// Attach provenance comment lines (certificate hashes, plan summary).
    pub fn with_provenance(mut self, lines: Vec<String>) -> Self {
        self.provenance = lines;
        self
    }

    /// Toggle capture arrays (see [`KernelSpec::capture`]).
    pub fn with_capture(mut self, capture: bool) -> Self {
        self.capture = capture;
        self
    }

    /// The nest being generated.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Per-statement storage decisions, indexed by statement.
    pub fn storage(&self) -> &[StmtStorage] {
        &self.storage
    }

    /// The uniform write offset `c_w` of statement `s`.
    pub fn write_offset(&self, s: usize) -> &IVec {
        match &self.storage[s].access {
            StmtAccess::Natural { write_offset } => write_offset,
            StmtAccess::Mapped(acc) => acc.write_offset(),
        }
    }

    /// Lower an access subscript of statement `s` to its buffer index.
    ///
    /// For natural storage this is the row-major linearisation of the
    /// producer iteration over the domain box; for mapped storage it is
    /// the `mv·q + shift (+ modterm)` form.
    pub fn index_expr(&self, s: usize, subscript: &[AffineExpr]) -> MappedIndex {
        match &self.storage[s].access {
            StmtAccess::Mapped(acc) => acc.index_of(subscript),
            StmtAccess::Natural { write_offset } => {
                let dom = self.nest.domain();
                let ext1 = dom.hi()[1] - dom.lo()[1] + 1;
                let depth = subscript[0].depth();
                // lin = (p0 − lo0)·ext1 + (p1 − lo1), p = elem − c_w.
                let p0 = subscript[0].clone() + (-write_offset[0] - dom.lo()[0]);
                let p1 = subscript[1].clone() + (-write_offset[1] - dom.lo()[1]);
                let lin = AffineExpr::constant(depth, 0)
                    .add_scaled(&p0, ext1)
                    .add_scaled(&p1, 1);
                MappedIndex::Affine(lin)
            }
        }
    }

    /// The written region of statement `s` as an inclusive element box:
    /// `(lo + c_w, hi + c_w)`. Reads outside it are imported inputs.
    pub fn written_box(&self, s: usize) -> (IVec, IVec) {
        let dom = self.nest.domain();
        let c = self.write_offset(s);
        let lo: IVec = (0..2).map(|k| dom.lo()[k] + c[k]).collect();
        let hi: IVec = (0..2).map(|k| dom.hi()[k] + c[k]).collect();
        (lo, hi)
    }

    /// The statement whose buffer serves reads of `array`: the *first*
    /// statement writing it (matching the interpreter's `writer_of`), or
    /// `None` when the array is a pure input.
    pub fn writer_of(&self, array: usize) -> Option<usize> {
        self.nest.stmts().iter().position(|s| s.array == array)
    }

    /// Row-major capture index of the iteration `(i, j)` over the domain,
    /// as an affine expression — where each statement's produced value is
    /// recorded for differential comparison.
    pub fn capture_index(&self) -> AffineExpr {
        let dom = self.nest.domain();
        let ext1 = dom.hi()[1] - dom.lo()[1] + 1;
        let i = AffineExpr::index(2, 0) + -dom.lo()[0];
        let j = AffineExpr::index(2, 1) + -dom.lo()[1];
        AffineExpr::constant(2, 0)
            .add_scaled(&i, ext1)
            .add_scaled(&j, 1)
    }

    /// Number of iteration points (capture array length).
    pub fn points(&self) -> usize {
        usize::try_from(self.nest.domain().num_points()).unwrap_or(usize::MAX)
    }
}

/// The deterministic, bit-exact input function shared between the library
/// (interpreter reference runs) and every generated program: imported
/// (halo) elements of `array` get `input_value(seed, array, elem)`.
///
/// The value is always in `[1, 2)` — built from the top bits of an
/// integer hash pasted into an IEEE-754 mantissa — so weighted stencil
/// sums stay far from denormals and the generated C/Rust and the
/// interpreter agree on every bit.
pub fn input_value(seed: u64, array: usize, elem: &IVec) -> f64 {
    let mut h = seed ^ (array as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for k in 0..elem.dim() {
        h = (h ^ (elem[k] as u64)).wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    }
    f64::from_bits((h >> 12) | 0x3FF0_0000_0000_0000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;
    use uov_loopir::examples;
    use uov_storage::Layout;

    #[test]
    fn depth_and_tile_validation() {
        let nest = examples::fig1_nest(4, 4);
        let err = KernelSpec::new(
            "k",
            &nest,
            &[],
            GenSchedule::SkewTiled { f: 0, tile: [2, 0] },
        )
        .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidTile(0)));
    }

    #[test]
    fn natural_index_is_row_major_linearisation() {
        let nest = examples::stencil5_nest(3, 8); // lo (1,0), hi (3,7)
        let spec = KernelSpec::new("k", &nest, &[], GenSchedule::Lex).unwrap();
        let MappedIndex::Affine(lin) = spec.index_expr(0, &nest.stmts()[0].subscript) else {
            panic!("natural storage lowers to affine")
        };
        assert_eq!(lin.eval(&ivec![1, 0]), 0);
        assert_eq!(lin.eval(&ivec![1, 7]), 7);
        assert_eq!(lin.eval(&ivec![2, 0]), 8);
    }

    #[test]
    fn mapped_spec_uses_map_cells() {
        let nest = examples::stencil5_nest(4, 8);
        let map = OvMap::new(nest.domain(), ivec![2, 0], Layout::Interleaved);
        let spec = KernelSpec::new("k", &nest, &[Some(&map)], GenSchedule::Lex).unwrap();
        assert_eq!(spec.storage()[0].cells, 16);
    }

    #[test]
    fn input_value_is_deterministic_and_unit_interval() {
        let a = input_value(7, 0, &ivec![3, -2]);
        let b = input_value(7, 0, &ivec![3, -2]);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((1.0..2.0).contains(&a));
        assert_ne!(
            input_value(7, 0, &ivec![3, -2]).to_bits(),
            input_value(8, 0, &ivec![3, -2]).to_bits()
        );
    }
}
