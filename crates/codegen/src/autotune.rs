//! Tile-size autotuning: memsim-ranked candidate enumeration with
//! wall-clock timing of the top K.
//!
//! The tuner never guesses blindly and never dies loudly. Every legal
//! `(t0, t1)` candidate is first *ranked* by replaying its access stream
//! through a deliberately small [`uov_memsim::Machine`] over a scaled-down
//! proxy domain — cheap, deterministic, and toolchain-free. Only the top K
//! by simulated cycles are then emitted, compiled out-of-process, and
//! wall-clock timed against the untiled baseline. Each rung of the ladder
//! degrades independently:
//!
//! * no `rustc` on the machine → the report still ranks every candidate by
//!   memsim cycles and says so via [`AutotuneReport::degraded`];
//! * one candidate fails to compile, crashes, or hangs → that candidate is
//!   marked ([`CandidateStatus`]) and tuning continues;
//! * a timed candidate whose schedule-invariant checksum disagrees with
//!   the baseline is *disqualified*, not trusted.

use std::path::PathBuf;
use std::time::Duration;

use uov_isg::{IVec, RectDomain};
use uov_loopir::emit::MappedIndex;
use uov_loopir::LoopNest;
use uov_memsim::{CacheConfig, Machine, MachineConfig, TlbConfig};
use uov_schedule::LoopSchedule;
use uov_storage::OvMap;

use crate::compile::{compile_rust, find_tool, run_kernel};
use crate::error::CodegenError;
use crate::kernel::{GenSchedule, KernelSpec};
use crate::rust_src::emit_rust;

/// Knobs for one [`autotune`] run. [`AutotuneConfig::default`] gives a
/// search suitable for the kernel zoo.
#[derive(Debug, Clone)]
pub struct AutotuneConfig {
    /// Candidate tile extents along the outer (`u = i`) axis.
    pub tiles0: Vec<i64>,
    /// Candidate tile extents along the inner (`v = f·i + j`) axis.
    pub tiles1: Vec<i64>,
    /// How many memsim-ranked candidates to compile and wall-clock time.
    pub top_k: usize,
    /// Input seed passed to every generated binary.
    pub seed: u64,
    /// Repetitions per timed run (total time is reported; more reps damp
    /// scheduler noise).
    pub reps: u32,
    /// Explicit `rustc` path; `None` searches `PATH`. Pointing this at a
    /// nonexistent file forces the memsim-only degradation path (used by
    /// fault-injection tests).
    pub rustc: Option<PathBuf>,
    /// Wall-clock allowance per compile.
    pub compile_timeout: Duration,
    /// Wall-clock allowance per kernel run.
    pub run_timeout: Duration,
    /// Where to write sources and binaries; a per-process temp dir when
    /// `None`.
    pub work_dir: Option<PathBuf>,
    /// Per-axis caps on the proxy domain used for memsim ranking.
    pub proxy_extent: [i64; 2],
    /// Build candidates with optimisation (`-C opt-level=3`).
    pub optimize: bool,
    /// Extra provenance lines stamped into every emitted source.
    pub provenance: Vec<String>,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            tiles0: vec![4, 8, 16, 32],
            tiles1: vec![64, 256, 1024, 4096],
            top_k: 3,
            seed: 1,
            reps: 1,
            rustc: None,
            compile_timeout: Duration::from_secs(60),
            run_timeout: Duration::from_secs(120),
            work_dir: None,
            proxy_extent: [16, 2048],
            optimize: true,
            provenance: Vec::new(),
        }
    }
}

/// What happened to one candidate as it climbed the ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateStatus {
    /// Ranked by memsim only (below the top-K cut, or toolchain missing).
    Ranked,
    /// Compiled, ran, checksum matched the baseline; `wall_ns` is valid.
    Timed,
    /// The compiler rejected the generated source.
    CompileFailed(String),
    /// The binary crashed, exited nonzero, or produced a checksum that
    /// disagrees with the untiled baseline.
    RunFailed(String),
    /// The compile or run exceeded its allowance and was killed.
    TimedOut,
}

/// One candidate's full record.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Tile extents `(t0, t1)` along the transformed `(u, v)` axes.
    pub tile: [i64; 2],
    /// Simulated cycles over the proxy domain (the ranking key).
    pub memsim_cycles: u64,
    /// Measured wall-clock nanoseconds for `reps` repetitions, when timed.
    pub wall_ns: Option<u128>,
    /// Ladder outcome.
    pub status: CandidateStatus,
}

/// Why the tuner fell back to memsim-only ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// No usable compiler; the inner string names what was searched for.
    ToolchainMissing(String),
}

/// The deterministic result of one [`autotune`] run.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    /// Kernel name.
    pub kernel: String,
    /// Input seed used for every run.
    pub seed: u64,
    /// Skew factor the tiling was legalised with.
    pub skew_f: i64,
    /// Wall-clock of the untiled (lexicographic) build, when compiled.
    pub baseline_wall_ns: Option<u128>,
    /// All candidates in memsim rank order (best simulated first).
    pub candidates: Vec<CandidateReport>,
    /// Index into `candidates` of the fastest *timed* candidate.
    pub best: Option<usize>,
    /// Set when wall-clock timing was skipped entirely.
    pub degraded: Option<DegradeReason>,
}

impl AutotuneReport {
    /// Baseline wall-clock divided by the best timed candidate's, when
    /// both exist. `> 1.0` means tiling won.
    pub fn best_speedup(&self) -> Option<f64> {
        let base = self.baseline_wall_ns?;
        let best = self.candidates.get(self.best?)?.wall_ns?;
        if best == 0 {
            return None;
        }
        Some(base as f64 / best as f64)
    }
}

/// The deliberately small machine the ranking pass simulates. Full-size
/// cache configs would make every proxy-scale working set resident and
/// rank all tiles equal; this one keeps capacity effects visible at
/// [`AutotuneConfig::proxy_extent`] scale.
fn proxy_machine() -> Machine {
    Machine::new(MachineConfig {
        name: "autotune proxy (sim)".into(),
        l1: CacheConfig {
            size_bytes: 1 << 10,
            line_bytes: 32,
            assoc: 2,
            hit_cycles: 1,
        },
        l2: Some(CacheConfig {
            size_bytes: 8 << 10,
            line_bytes: 32,
            assoc: 4,
            hit_cycles: 8,
        }),
        tlb: TlbConfig {
            entries: 8,
            page_bytes: 1 << 10,
            assoc: 8,
            miss_cycles: 30,
        },
        mem_cycles: 100,
        mem_capacity_bytes: 1 << 30,
        disk_cycles: 1_000_000,
        minor_fault_cycles: 300,
        alu_cycles: 1,
        branch_cycles: 2,
    })
}

/// Evaluate a lowered buffer index at a concrete iteration point.
fn eval_index(idx: &MappedIndex, q: &IVec) -> i64 {
    match idx {
        MappedIndex::Affine(e) => e.eval(q),
        MappedIndex::Mod {
            base,
            position,
            g,
            scale,
        } => base.eval(q) + position.eval(q).rem_euclid(*g) * scale,
    }
}

/// Build the scaled-down twin of `nest` used for ranking: same statements
/// and arrays, domain clamped to `proxy_extent` per axis.
fn proxy_nest(nest: &LoopNest, proxy_extent: [i64; 2]) -> Result<LoopNest, CodegenError> {
    let dom = nest.domain();
    let lo = dom.lo().clone();
    let hi: IVec = (0..2)
        .map(|k| dom.hi()[k].min(lo[k] + proxy_extent[k].max(1) - 1))
        .collect();
    LoopNest::new(
        RectDomain::new(lo, hi),
        nest.arrays().to_vec(),
        nest.stmts().to_vec(),
    )
    .map_err(|e| CodegenError::BadOutput(format!("proxy nest construction failed: {e}")))
}

/// Replay one candidate schedule's access stream through the proxy
/// machine and return the simulated cycle count.
fn rank_candidate(spec: &KernelSpec, f: i64, tile: [i64; 2]) -> u64 {
    let mut machine = proxy_machine();
    // Per-statement buffer base addresses, page-spaced so distinct
    // buffers never alias in cache sets by accident of adjacency.
    let mut bases = Vec::with_capacity(spec.storage().len());
    let mut next: u64 = 1 << 12;
    for st in spec.storage() {
        bases.push(next);
        let bytes = (st.cells as u64).saturating_mul(8);
        next += bytes.div_ceil(1 << 12).saturating_add(1) << 12;
    }
    let boxes: Vec<(IVec, IVec)> = (0..spec.storage().len())
        .map(|s| spec.written_box(s))
        .collect();
    let order = LoopSchedule::skewed_tiled_2d(f, tile.to_vec()).order(spec.nest().domain());
    for q in &order {
        for (s, stmt) in spec.nest().stmts().iter().enumerate() {
            for (array, subscript) in stmt.rhs.reads() {
                let elem: IVec = subscript.iter().map(|e| e.eval(q)).collect();
                match spec.writer_of(array) {
                    Some(ws)
                        if (0..2)
                            .all(|k| elem[k] >= boxes[ws].0[k] && elem[k] <= boxes[ws].1[k]) =>
                    {
                        let addr = eval_index(&spec.index_expr(ws, subscript), q);
                        machine.read(bases[ws].wrapping_add((addr as u64).wrapping_mul(8)));
                    }
                    // Imported input: generated inline by hashing, no
                    // memory traffic — charge the hash arithmetic.
                    _ => machine.alu(4),
                }
            }
            let addr = eval_index(&spec.index_expr(s, &stmt.subscript), q);
            machine.write(bases[s].wrapping_add((addr as u64).wrapping_mul(8)));
            machine.alu(2);
        }
        machine.branch(1);
    }
    machine.cycles()
}

/// Enumerate, rank, and time tile sizes for `nest` under the skew `f`.
///
/// `maps[s]` folds statement `s`'s array through a UOV mapping exactly as
/// in [`KernelSpec::new`]. All generated programs run with capture off —
/// capture arrays have the natural footprint and would defeat the mapping
/// being measured.
///
/// # Errors
///
/// Spec construction errors ([`CodegenError::UnsupportedDepth`] and
/// friends) and I/O failures preparing the work directory. A missing
/// toolchain is *not* an error: the report comes back memsim-ranked with
/// [`AutotuneReport::degraded`] set. Per-candidate compile/run failures
/// are recorded in that candidate's [`CandidateStatus`].
pub fn autotune(
    name: &str,
    nest: &LoopNest,
    maps: &[Option<&OvMap>],
    f: i64,
    cfg: &AutotuneConfig,
) -> Result<AutotuneReport, CodegenError> {
    // Validate shape once up front (depth, arity, lowering).
    let base = KernelSpec::new(name, nest, maps, GenSchedule::Lex)?
        .with_capture(false)
        .with_provenance(cfg.provenance.clone());

    // Rank every candidate on the proxy twin. Candidate tiles are scaled
    // onto the proxy domain by the per-axis shrink ratio (in the skewed
    // `(u, v) = (i, f·i + j)` coordinates): a tile that covers a quarter
    // of the real `v` extent covers a quarter of the proxy's. Without
    // this, tiles larger than the proxy extent all collapse to the same
    // proxy iteration order and rank identically.
    let pnest = proxy_nest(nest, cfg.proxy_extent)?;
    let pmaps: Vec<Option<OvMap>> = maps
        .iter()
        .map(|m| m.map(|m| OvMap::new(pnest.domain(), m.ov().clone(), m.layout())))
        .collect();
    let pmap_refs: Vec<Option<&OvMap>> = pmaps.iter().map(|m| m.as_ref()).collect();
    let skewed_extents = |n: &LoopNest| -> [i64; 2] {
        let d = n.domain();
        let e0 = d.hi()[0] - d.lo()[0] + 1;
        let e1 = d.hi()[1] - d.lo()[1] + 1;
        [e0, f.abs() * (e0 - 1) + e1]
    };
    let rext = skewed_extents(nest);
    let pext = skewed_extents(&pnest);
    let scale_tile = |tile: [i64; 2]| -> [i64; 2] {
        let mut out = [0i64; 2];
        for k in 0..2 {
            out[k] = if rext[k] <= pext[k] {
                tile[k]
            } else {
                ((tile[k] * pext[k]) / rext[k]).max(1)
            };
        }
        out
    };
    let mut candidates = Vec::new();
    for &t0 in &cfg.tiles0 {
        for &t1 in &cfg.tiles1 {
            let tile = [t0, t1];
            let ptile = scale_tile(tile);
            let pspec = KernelSpec::new(
                name,
                &pnest,
                &pmap_refs,
                GenSchedule::SkewTiled { f, tile: ptile },
            )?;
            candidates.push(CandidateReport {
                tile,
                memsim_cycles: rank_candidate(&pspec, f, ptile),
                wall_ns: None,
                status: CandidateStatus::Ranked,
            });
        }
    }
    candidates.sort_by_key(|c| (c.memsim_cycles, c.tile));

    let mut report = AutotuneReport {
        kernel: name.to_string(),
        seed: cfg.seed,
        skew_f: f,
        baseline_wall_ns: None,
        candidates,
        best: None,
        degraded: None,
    };

    // Rung two: wall-clock the top K, if a compiler exists at all.
    let rustc = match find_tool("rustc", cfg.rustc.as_deref()) {
        Ok(p) => p,
        Err(CodegenError::ToolchainMissing { tool }) => {
            report.degraded = Some(DegradeReason::ToolchainMissing(tool));
            return Ok(report);
        }
        Err(e) => return Err(e),
    };
    let dir = match &cfg.work_dir {
        Some(d) => d.clone(),
        None => std::env::temp_dir().join(format!("uov-autotune-{}-{}", name, std::process::id())),
    };
    std::fs::create_dir_all(&dir).map_err(|source| CodegenError::Io {
        what: format!("creating work dir {}", dir.display()),
        source,
    })?;

    // Baseline: untiled, same storage. If even this fails, the whole
    // timing rung is unusable — report it as a degradation-free error.
    let base_src = dir.join("baseline.rs");
    let base_bin = dir.join("baseline");
    std::fs::write(&base_src, emit_rust(&base)).map_err(|source| CodegenError::Io {
        what: format!("writing {}", base_src.display()),
        source,
    })?;
    compile_rust(
        &rustc,
        &base_src,
        &base_bin,
        cfg.optimize,
        cfg.compile_timeout,
    )?;
    let base_run = run_kernel(&base_bin, cfg.seed, cfg.reps, false, cfg.run_timeout)?;
    report.baseline_wall_ns = Some(base_run.time_ns);

    let k = cfg.top_k.min(report.candidates.len());
    for idx in 0..k {
        let tile = report.candidates[idx].tile;
        let mut spec = base.clone();
        spec.schedule = GenSchedule::SkewTiled { f, tile };
        let stem = format!("tile_{}x{}", tile[0], tile[1]);
        let src_path = dir.join(format!("{stem}.rs"));
        let bin_path = dir.join(&stem);
        if let Err(source) = std::fs::write(&src_path, emit_rust(&spec)) {
            report.candidates[idx].status =
                CandidateStatus::CompileFailed(format!("writing {}: {source}", src_path.display()));
            continue;
        }
        match compile_rust(
            &rustc,
            &src_path,
            &bin_path,
            cfg.optimize,
            cfg.compile_timeout,
        ) {
            Ok(()) => {}
            Err(CodegenError::Timeout { .. }) => {
                report.candidates[idx].status = CandidateStatus::TimedOut;
                continue;
            }
            Err(e) => {
                report.candidates[idx].status = CandidateStatus::CompileFailed(e.to_string());
                continue;
            }
        }
        match run_kernel(&bin_path, cfg.seed, cfg.reps, false, cfg.run_timeout) {
            Ok(out) if out.check == base_run.check => {
                report.candidates[idx].wall_ns = Some(out.time_ns);
                report.candidates[idx].status = CandidateStatus::Timed;
            }
            Ok(out) => {
                report.candidates[idx].status = CandidateStatus::RunFailed(format!(
                    "checksum {:016x} disagrees with baseline {:016x}",
                    out.check, base_run.check
                ));
            }
            Err(CodegenError::Timeout { .. }) => {
                report.candidates[idx].status = CandidateStatus::TimedOut;
            }
            Err(e) => {
                report.candidates[idx].status = CandidateStatus::RunFailed(e.to_string());
            }
        }
    }
    report.best = report
        .candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.status == CandidateStatus::Timed)
        .min_by_key(|(_, c)| c.wall_ns.unwrap_or(u128::MAX))
        .map(|(i, _)| i);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uov_isg::ivec;
    use uov_loopir::examples;
    use uov_storage::Layout;

    fn small_stencil() -> (LoopNest, OvMap) {
        let nest = examples::stencil5_nest(6, 32);
        let map = OvMap::new(nest.domain(), ivec![2, 0], Layout::Interleaved);
        (nest, map)
    }

    #[test]
    fn missing_toolchain_degrades_to_memsim_ranking() {
        let (nest, map) = small_stencil();
        let cfg = AutotuneConfig {
            tiles0: vec![2, 4],
            tiles1: vec![8, 16],
            rustc: Some(PathBuf::from("/nonexistent/rustc-xyz")),
            proxy_extent: [6, 32],
            ..AutotuneConfig::default()
        };
        let report = autotune("stencil5", &nest, &[Some(&map)], 2, &cfg).unwrap();
        assert!(matches!(
            report.degraded,
            Some(DegradeReason::ToolchainMissing(_))
        ));
        assert_eq!(report.candidates.len(), 4);
        assert!(report
            .candidates
            .iter()
            .all(|c| c.status == CandidateStatus::Ranked && c.wall_ns.is_none()));
        // Rank order is non-decreasing in simulated cycles.
        assert!(report
            .candidates
            .windows(2)
            .all(|w| w[0].memsim_cycles <= w[1].memsim_cycles));
        assert!(report.baseline_wall_ns.is_none());
        assert!(report.best.is_none());
        assert!(report.best_speedup().is_none());
    }

    #[test]
    fn memsim_ranking_is_deterministic() {
        let (nest, map) = small_stencil();
        let cfg = AutotuneConfig {
            tiles0: vec![2, 4],
            tiles1: vec![8, 32],
            rustc: Some(PathBuf::from("/nonexistent/rustc-xyz")),
            proxy_extent: [6, 32],
            ..AutotuneConfig::default()
        };
        let a = autotune("stencil5", &nest, &[Some(&map)], 2, &cfg).unwrap();
        let b = autotune("stencil5", &nest, &[Some(&map)], 2, &cfg).unwrap();
        let key = |r: &AutotuneReport| -> Vec<([i64; 2], u64)> {
            r.candidates
                .iter()
                .map(|c| (c.tile, c.memsim_cycles))
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn end_to_end_times_top_candidates_when_rustc_present() {
        if find_tool("rustc", None).is_err() {
            eprintln!("skipping: no rustc on PATH");
            return;
        }
        let (nest, map) = small_stencil();
        let dir = std::env::temp_dir().join(format!("uov-autotune-test-{}", std::process::id()));
        let cfg = AutotuneConfig {
            tiles0: vec![2],
            tiles1: vec![8, 16],
            top_k: 2,
            optimize: false,
            proxy_extent: [6, 32],
            work_dir: Some(dir.clone()),
            ..AutotuneConfig::default()
        };
        let report = autotune("stencil5", &nest, &[Some(&map)], 2, &cfg).unwrap();
        assert!(report.degraded.is_none());
        assert!(report.baseline_wall_ns.is_some());
        let timed = report
            .candidates
            .iter()
            .filter(|c| c.status == CandidateStatus::Timed)
            .count();
        assert_eq!(timed, 2, "both top-K candidates should time cleanly");
        assert!(report.best.is_some());
        assert!(report.best_speedup().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
