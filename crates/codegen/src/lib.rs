//! `uov-codegen`: executable tiled-kernel generation from certified
//! UOV storage plans, plus a memsim-guided tile-size autotuner.
//!
//! Where `uov-loopir`'s emitter prints *pseudocode* for inspection, this
//! crate generates *programs*: standalone Rust (and C99) sources whose
//! loops realise a legalised skewed tiling and whose array accesses go
//! through the paper's 1-D `mv·q + shift (+ modterm)` buffer form. The
//! generated programs are bit-identical to the `uov-loopir` interpreter
//! over shared deterministic inputs ([`input_value`]), which is what makes
//! the differential test-suite and the autotuner's checksum cross-checks
//! possible.
//!
//! Pipeline:
//!
//! 1. [`KernelSpec`] — nest + per-statement storage decision + schedule;
//! 2. [`emit_rust`] / [`emit_c`] — render the spec as a source program
//!    speaking the `TIME_NS`/`CHECK`/`OUT` stdout protocol;
//! 3. [`compile`] — out-of-process `rustc`/`cc` with hard timeouts and
//!    typed failures, never a panic or a hang;
//! 4. [`autotune`] — enumerate legal tile sizes, rank all of them on a
//!    scaled-down `uov-memsim` machine, wall-clock the top K, and degrade
//!    to memsim-only ranking when no toolchain exists.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod autotune;
pub mod c_src;
pub mod compile;
pub mod error;
pub mod kernel;
pub mod rust_src;

pub use autotune::{
    autotune, AutotuneConfig, AutotuneReport, CandidateReport, CandidateStatus, DegradeReason,
};
pub use c_src::emit_c;
pub use compile::{compile_c, compile_rust, find_tool, parse_output, run_kernel, RunOutput};
pub use error::CodegenError;
pub use kernel::{input_value, GenSchedule, KernelSpec, StmtAccess, StmtStorage};
pub use rust_src::emit_rust;
