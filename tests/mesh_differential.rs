//! The mesh differential: a search distributed across three shards —
//! with the home shard killed mid-search and its work units
//! re-dispatched — must return the byte-identical `(uov, cost,
//! transcript hash)` triple a direct in-process search yields.
//!
//! The kill is deterministic, not a race: [`MeshClient`] exposes a hook
//! that fires at every merge-round boundary, and the schedule kills the
//! problem's *home* shard at round 0 (guaranteeing that round's unit 0 —
//! which always prefers the home shard — fails its lease and
//! re-dispatches to the next ring successor) and restarts it two rounds
//! later. Tiny local-prefix and per-unit node budgets force enough
//! rounds that the kill/restart cycle actually lands mid-search.
//!
//! Seeds come from `UOV_MESH_SEED` when set (CI loops a fixed list), or
//! a built-in pair otherwise; the seed picks the problem variant, so
//! different seeds route to different home shards. Server-side search
//! thread counts 1 and 8 are both exercised — the distributed answer is
//! schedule-independent on both axes.

use uov::core::certify::certify;
use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::isg::{ivec, IVec, Stencil};
use uov::service::{
    MeshClient, MeshConfig, MeshEvent, ObjectiveSpec, PlanRequest, ReplicaSet, ServerConfig,
};

/// Hard enough that a 4-node local prefix leaves a real frontier to
/// distribute, parameterized so different seeds get different homes.
fn problem(seed: u64) -> Stencil {
    let k = 2 + (seed % 5) as i64;
    Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid stencil")
}

fn local_truth(stencil: &Stencil) -> (IVec, u128, u64) {
    let result = find_best_uov(stencil, Objective::ShortestVector, &SearchConfig::default())
        .expect("local search");
    let cert = certify(stencil, &Objective::ShortestVector, &result).expect("local certification");
    (result.uov.clone(), result.cost, cert.transcript_hash)
}

fn request(stencil: &Stencil) -> PlanRequest {
    PlanRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    }
}

fn seeds() -> Vec<u64> {
    match std::env::var("UOV_MESH_SEED") {
        Ok(s) => vec![s.trim().parse().expect("UOV_MESH_SEED must be a u64")],
        Err(_) => vec![7, 1998],
    }
}

fn mesh_config(seed: u64) -> MeshConfig {
    MeshConfig {
        // Force several merge rounds so the kill lands mid-search.
        local_prefix_nodes: 4,
        unit_node_budget: 12,
        attempt_timeout: std::time::Duration::from_secs(5),
        seed,
        ..MeshConfig::default()
    }
}

/// One full run: distributed search with the home shard killed at round
/// 0 and restarted at round 2. Returns the response plus the mesh's
/// decision log.
fn run_killed_home_schedule(
    seed: u64,
    search_threads: usize,
) -> (uov::service::PlanResponse, Vec<MeshEvent>, u64) {
    let config = ServerConfig {
        workers: 2,
        search_threads,
        ..ServerConfig::default()
    };
    let mut set = ReplicaSet::start(3, config).expect("start replicas");
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let mut mesh = MeshClient::new(&endpoints, mesh_config(seed)).expect("mesh");

    let req = request(&problem(seed));
    let home = mesh.ring().route(MeshClient::routing_key(&req));

    let resp = mesh
        .plan_distributed_hooked(&req, &mut |round| match round {
            0 => {
                set.kill(home).expect("home shard was up");
            }
            2 => {
                set.restart(home).expect("restart home shard");
            }
            _ => {}
        })
        .expect("distributed search must survive the home-shard kill");
    let redispatches = mesh.stats().redispatches;
    let events = mesh.take_events();
    set.shutdown_all();
    (resp, events, redispatches)
}

/// The acceptance differential: for every seed, at server search-thread
/// counts 1 and 8, the distributed answer with a mid-search home-shard
/// kill is byte-identical to the direct in-process answer — and the kill
/// demonstrably caused at least one work-unit re-dispatch.
#[test]
fn mesh_differential_is_byte_identical_to_local_search() {
    for seed in seeds() {
        let (uov, cost, hash) = local_truth(&problem(seed));
        for threads in [1usize, 8] {
            let (resp, events, redispatches) = run_killed_home_schedule(seed, threads);
            assert_eq!(resp.uov, uov, "seed {seed} threads {threads}: UOV diverged");
            assert_eq!(
                resp.cost, cost,
                "seed {seed} threads {threads}: cost diverged"
            );
            assert_eq!(
                resp.certificate_hash, hash,
                "seed {seed} threads {threads}: certificate hash diverged"
            );
            assert!(
                redispatches >= 1,
                "seed {seed} threads {threads}: the home-shard kill caused no re-dispatch — \
                 the schedule is not testing fault tolerance"
            );
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, MeshEvent::RoundMerged { round, .. } if *round >= 1)),
                "seed {seed} threads {threads}: search finished in one round — budgets too \
                 large to exercise the merge fixpoint"
            );
        }
    }
}

/// Two runs of the same seed agree byte-for-byte with each other (and
/// with the direct search, by the test above) — re-dispatch and merge
/// order never leak into the answer.
#[test]
fn mesh_answer_replays_identically_for_a_seed() {
    let seed = seeds()[0];
    let (a, _, _) = run_killed_home_schedule(seed, 1);
    let (b, _, _) = run_killed_home_schedule(seed, 1);
    assert_eq!(a.uov, b.uov);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.certificate_hash, b.certificate_hash);
}

/// Bound gossip is live end-to-end: seed one shard's gossip slot by
/// planning the same problem directly on it, then a distributed run
/// folds that bound into its unit hints.
#[test]
fn gossiped_bounds_reach_the_coordinator() {
    let set = ReplicaSet::start(3, ServerConfig::default()).expect("start replicas");
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let stencil = problem(3);
    let req = request(&stencil);

    // A direct plan on shard 0 seeds its gossip slot with the optimum.
    let mut direct = uov::service::Client::connect(&endpoints[0]).expect("connect");
    direct.plan(&req).expect("direct plan");

    let mut mesh = MeshClient::new(&endpoints, mesh_config(3)).expect("mesh");
    let resp = mesh.plan_distributed(&req).expect("distributed plan");
    let (uov, cost, hash) = local_truth(&stencil);
    assert_eq!(resp.uov, uov);
    assert_eq!(resp.cost, cost);
    assert_eq!(resp.certificate_hash, hash);
    assert!(
        mesh.stats().gossip_hints >= 1,
        "shard 0 held the optimum bound but the coordinator never picked it up: {:?}",
        mesh.stats()
    );
    set.shutdown_all();
}
