//! Differential suite for `uov-codegen`: compiled generated kernels must
//! be **bit-identical** to the `uov-loopir` reference interpreter.
//!
//! For every kernel-zoo entry, four program shapes are generated,
//! compiled with the host `rustc`, executed, and their captured
//! per-iteration values compared word-for-word against an interpreter
//! run over the same deterministic inputs:
//!
//! * natural storage, lexicographic order;
//! * UOV-mapped storage, lexicographic order;
//! * UOV-mapped storage, skew-tiled at three tile sizes;
//! * (stencil5 only) the blocked modterm layout, and the C99 twin when a
//!   C compiler is present.
//!
//! The input seed comes from `UOV_TEST_SEED` so CI can sweep it.
//!
//! A second group fault-injects the ladder: missing toolchain, broken
//! source, and a run that exceeds its allowance must all surface as
//! *typed* [`uov::codegen::CodegenError`] values — never panics.

use std::path::{Path, PathBuf};
use std::time::Duration;

use uov::codegen::{
    autotune, compile_c, compile_rust, emit_c, emit_rust, find_tool, input_value, run_kernel,
    AutotuneConfig, CandidateStatus, CodegenError, DegradeReason, GenSchedule, KernelSpec,
};
use uov::isg::{IVec, IterationDomain as _};
use uov::kernels::zoo;
use uov::loopir::interp;
use uov::storage::{Layout, OvMap};

fn seed_from_env() -> u64 {
    std::env::var("UOV_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_C0DE)
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uov-codegen-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const COMPILE_T: Duration = Duration::from_secs(120);
const RUN_T: Duration = Duration::from_secs(120);

/// Reference bits for `spec`'s nest: interpreter run over natural
/// storage, re-keyed by `(statement, row-major iteration index)` to match
/// the generated programs' capture arrays.
fn reference_bits(spec: &KernelSpec, seed: u64) -> Vec<Vec<u64>> {
    let nest = spec.nest();
    let outputs = interp::run_natural(nest, &|array, elem| input_value(seed, array, elem));
    let dom = nest.domain();
    let ext1 = dom.hi()[1] - dom.lo()[1] + 1;
    let mut bits = vec![vec![0u64; spec.points()]; nest.stmts().len()];
    for q in dom.points() {
        let lin = ((q[0] - dom.lo()[0]) * ext1 + (q[1] - dom.lo()[1])) as usize;
        for s in 0..nest.stmts().len() {
            let elem = nest.write_element(s, &q);
            let v = outputs[&(s, elem)];
            bits[s][lin] = v.to_bits();
        }
    }
    bits
}

/// Compile `spec` (Rust), run it, and assert its captured values equal
/// the interpreter reference bit for bit.
fn assert_rust_matches_reference(spec: &KernelSpec, seed: u64, dir: &Path, tag: &str) -> u64 {
    let rustc = find_tool("rustc", None).expect("differential suite needs rustc on PATH");
    let src = dir.join(format!("{tag}.rs"));
    let bin = dir.join(tag);
    std::fs::write(&src, emit_rust(spec)).unwrap();
    compile_rust(&rustc, &src, &bin, false, COMPILE_T).unwrap();
    let out = run_kernel(&bin, seed, 1, true, RUN_T).unwrap();
    let expect = reference_bits(spec, seed);
    let total: usize = expect.iter().map(|v| v.len()).sum();
    assert_eq!(out.outs.len(), total, "{tag}: capture line count");
    for (s, lin, got) in &out.outs {
        assert_eq!(
            *got, expect[*s][*lin],
            "{tag}: stmt {s} point {lin}: compiled {got:#018x} != interpreter {:#018x}",
            expect[*s][*lin]
        );
    }
    out.check
}

#[test]
fn compiled_zoo_matches_interpreter_at_three_tile_sizes() {
    let seed = seed_from_env();
    let dir = work_dir("zoo");
    for entry in zoo::all_small() {
        let maps = entry.maps(Layout::Interleaved);
        let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();
        let mk = |schedule: GenSchedule| {
            KernelSpec::new(entry.name, &entry.nest, &map_refs, schedule).unwrap()
        };

        // Natural storage, untiled: the baseline shape.
        let natural = KernelSpec::new(entry.name, &entry.nest, &[], GenSchedule::Lex).unwrap();
        let check_nat =
            assert_rust_matches_reference(&natural, seed, &dir, &format!("{}_nat", entry.name));

        // Mapped, untiled.
        let check_lex = assert_rust_matches_reference(
            &mk(GenSchedule::Lex),
            seed,
            &dir,
            &format!("{}_lex", entry.name),
        );
        assert_eq!(
            check_nat, check_lex,
            "{}: schedule-invariant checksum must not depend on storage",
            entry.name
        );

        // Mapped, tiled at three tile sizes.
        for tile in [[2, 4], [3, 8], [5, 16]] {
            let spec = mk(GenSchedule::SkewTiled {
                f: entry.skew_f,
                tile,
            });
            let tag = format!("{}_t{}x{}", entry.name, tile[0], tile[1]);
            let check = assert_rust_matches_reference(&spec, seed, &dir, &tag);
            assert_eq!(check, check_lex, "{tag}: tiled checksum drifted");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blocked_layout_and_c_twin_match_interpreter() {
    let seed = seed_from_env();
    let dir = work_dir("blocked");
    let entry = zoo::stencil5(6, 24); // OV (2,0): g=2 exercises the modterm
    let maps = entry.maps(Layout::Blocked);
    let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();
    let spec = KernelSpec::new(
        entry.name,
        &entry.nest,
        &map_refs,
        GenSchedule::SkewTiled {
            f: entry.skew_f,
            tile: [2, 8],
        },
    )
    .unwrap();
    let check_rust = assert_rust_matches_reference(&spec, seed, &dir, "stencil5_blocked");

    // The C twin, when a C compiler exists. Same reference, same bits.
    let Ok(cc) = find_tool("cc", None).or_else(|_| find_tool("gcc", None)) else {
        eprintln!("skipping C twin: no cc/gcc on PATH");
        let _ = std::fs::remove_dir_all(&dir);
        return;
    };
    let src = dir.join("stencil5_blocked.c");
    let bin = dir.join("stencil5_blocked_c");
    std::fs::write(&src, emit_c(&spec)).unwrap();
    compile_c(&cc, &src, &bin, true, COMPILE_T).unwrap();
    let out = run_kernel(&bin, seed, 1, true, RUN_T).unwrap();
    assert_eq!(out.check, check_rust, "C checksum != Rust checksum");
    let expect = reference_bits(&spec, seed);
    for (s, lin, got) in &out.outs {
        assert_eq!(
            *got, expect[*s][*lin],
            "C: stmt {s} point {lin} differs from interpreter"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeds_change_values_but_not_agreement() {
    // Two different seeds give different data; the compiled kernel tracks
    // the interpreter under both.
    let dir = work_dir("seeds");
    let entry = zoo::fig1(6, 5);
    let maps = entry.maps(Layout::Interleaved);
    let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();
    let spec = KernelSpec::new(entry.name, &entry.nest, &map_refs, GenSchedule::Lex).unwrap();
    let a = assert_rust_matches_reference(&spec, 11, &dir, "fig1_seed11");
    let b = assert_rust_matches_reference(&spec, 12, &dir, "fig1_seed12");
    assert_ne!(a, b, "different seeds must change the checksum");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_toolchain_degrades_autotune_without_panicking() {
    let entry = zoo::stencil5(6, 24);
    let maps = entry.maps(Layout::Interleaved);
    let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();
    let cfg = AutotuneConfig {
        tiles0: vec![2, 4],
        tiles1: vec![8, 16],
        rustc: Some(PathBuf::from("/nonexistent/toolchain/rustc")),
        proxy_extent: [6, 24],
        ..AutotuneConfig::default()
    };
    let report = autotune(entry.name, &entry.nest, &map_refs, entry.skew_f, &cfg)
        .expect("degraded autotune is Ok, not Err");
    assert!(matches!(
        report.degraded,
        Some(DegradeReason::ToolchainMissing(_))
    ));
    assert_eq!(report.candidates.len(), 4);
    assert!(report
        .candidates
        .iter()
        .all(|c| c.status == CandidateStatus::Ranked));
    assert!(report.best.is_none());
}

#[test]
fn broken_source_is_a_typed_compile_failure() {
    let rustc = find_tool("rustc", None).expect("differential suite needs rustc on PATH");
    let dir = work_dir("broken");
    let src = dir.join("broken.rs");
    let bin = dir.join("broken");
    std::fs::write(&src, "fn main() { this is not rust }").unwrap();
    let err = compile_rust(&rustc, &src, &bin, false, COMPILE_T).unwrap_err();
    match err {
        CodegenError::CompileFailed { tool, status, .. } => {
            assert_eq!(tool, "rustc");
            assert_ne!(status, Some(0));
        }
        other => panic!("expected CompileFailed, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overrunning_kernel_is_killed_with_a_typed_timeout() {
    let rustc = find_tool("rustc", None).expect("differential suite needs rustc on PATH");
    let dir = work_dir("timeout");
    let entry = zoo::stencil5(6, 32);
    let maps = entry.maps(Layout::Interleaved);
    let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();
    let spec = KernelSpec::new(entry.name, &entry.nest, &map_refs, GenSchedule::Lex)
        .unwrap()
        .with_capture(false);
    let src = dir.join("spin.rs");
    let bin = dir.join("spin");
    std::fs::write(&src, emit_rust(&spec)).unwrap();
    compile_rust(&rustc, &src, &bin, false, COMPILE_T).unwrap();
    // An unoptimised build doing ~10^10 statement executions cannot finish
    // inside 30 ms; the runner must kill it and type the failure.
    let err = run_kernel(&bin, 1, u32::MAX, false, Duration::from_millis(30)).unwrap_err();
    assert!(
        matches!(err, CodegenError::Timeout { .. }),
        "expected Timeout, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_statuses_render_without_panicking() {
    // Display impls are part of the degradation contract: operators see
    // these strings in reports.
    let e = CodegenError::ToolchainMissing {
        tool: "rustc".into(),
    };
    assert!(e.to_string().contains("rustc"));
    let e = CodegenError::Timeout {
        what: "generated kernel".into(),
        millis: 30,
    };
    assert!(e.to_string().contains("30"));
    let v: IVec = [1, 2].into_iter().collect();
    assert!((1.0..2.0).contains(&input_value(3, 0, &v)));
}
