//! Every concrete, checkable claim the paper makes, as an assertion.
//!
//! Section and figure numbers refer to Strout, Carter, Ferrante, Simon,
//! "Schedule-Independent Storage Mapping for Loops", ASPLOS 1998.

use uov::core::npc::PartitionInstance;
use uov::core::objective::storage_class_count;
use uov::core::search::{find_best_uov, initial_uov, Objective, SearchConfig};
use uov::core::DoneOracle;
use uov::isg::{ivec, IterationDomain, Polygon2, RectDomain, Stencil};
use uov::kernels::{psm, stencil5};
use uov::storage::{Layout, OvMap, StorageMap};

fn fig1_stencil() -> Stencil {
    Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap()
}

fn stencil5_stencil() -> Stencil {
    Stencil::new(vec![
        ivec![1, -2],
        ivec![1, -1],
        ivec![1, 0],
        ivec![1, 1],
        ivec![1, 2],
    ])
    .unwrap()
}

/// §1/Fig 1: "we can reduce the amount of storage … from mn to n+m+1" with
/// UOV (1,1); the storage-optimized version needs m+2.
#[test]
fn fig1_storage_claims() {
    let (n, m) = (20i64, 12i64);
    let oracle = DoneOracle::new(&fig1_stencil());
    assert!(oracle.is_uov(&ivec![1, 1]));
    let bordered = RectDomain::new(ivec![0, 0], ivec![n, m]);
    let map = OvMap::new(&bordered, ivec![1, 1], Layout::Interleaved);
    assert_eq!(map.size() as i64, n + m + 1);
    // The paper's explicit mapping: SMov(q) = (−1,1)·q + n.
    for q in [ivec![0, 0], ivec![5, 3], ivec![n, m]] {
        assert_eq!(map.map(&q) as i64, -q[0] + q[1] + n);
    }
}

/// §3.1: "the set of legal universal occupancy vectors is
/// UOV(V) = {q − p | p ∈ DEAD(V, q)}" — DEAD membership and UOV
/// membership must coincide, and DEAD ⊆ DONE.
#[test]
fn uov_equals_dead_offsets() {
    let oracle = DoneOracle::new(&fig1_stencil());
    let q = ivec![8, 8];
    let dom = RectDomain::grid(8, 8);
    for p in dom.points() {
        let w = &q - &p;
        assert_eq!(oracle.in_dead(&w), oracle.is_uov(&w));
        if oracle.in_dead(&w) {
            assert!(oracle.in_done(&w));
        }
    }
}

/// §3.1 theorem: UOV-membership decides PARTITION through the reduction.
#[test]
fn np_completeness_reduction() {
    // Exhaustive agreement over all multisets from {1..4} of size ≤ 4.
    fn check(values: Vec<i64>) {
        let inst = PartitionInstance::new(values.clone()).unwrap();
        assert_eq!(inst.solve_brute(), inst.solve_via_uov(), "{values:?}");
    }
    for a in 1..=4i64 {
        for b in a..=4 {
            check(vec![a, b]);
            for c in b..=4 {
                check(vec![a, b, c]);
                for d in c..=4 {
                    check(vec![a, b, c, d]);
                }
            }
        }
    }
}

/// §3.2.1: "An initial UOV can be trivially computed by summing the value
/// dependences in the stencil."
#[test]
fn initial_uov_trivially_legal() {
    for s in [
        fig1_stencil(),
        stencil5_stencil(),
        Stencil::new(vec![ivec![3, -2], ivec![1, 4], ivec![2, 0]]).unwrap(),
        Stencil::new(vec![ivec![0, 0, 1], ivec![0, 1, -1], ivec![1, -1, -1]]).unwrap(),
    ] {
        assert!(DoneOracle::new(&s).is_uov(&initial_uov(&s)), "{s:?}");
    }
}

/// §3.2/Fig 3: "ov₂ requires 27 storage locations while ov₁ only requires
/// 16" — and the known-bounds search therefore prefers a longer vector.
#[test]
fn fig3_longer_vector_wins() {
    let isg = Polygon2::fig3_isg();
    assert_eq!(storage_class_count(&isg, &ivec![3, 1]), 16);
    assert_eq!(storage_class_count(&isg, &ivec![3, 0]), 27);
    assert!(ivec![3, 1].norm_sq() > ivec![3, 0].norm_sq());
}

/// Fig 5: "The UOV for our 5-point stencil code intersections two integer
/// points" — (2,0), non-prime, found as the optimum.
#[test]
fn fig5_stencil5_uov() {
    let best = find_best_uov(
        &stencil5_stencil(),
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("stencil is in range");
    assert_eq!(best.uov, ivec![2, 0]);
    assert_eq!(best.uov.content(), 2, "non-prime: the modterm case of §4.2");
}

/// §4.1: the 2-D mapping vector of a prime ov = (i,j) is (−j, i) (up to
/// the sign of the whole form), perpendicular and primitive; §4.2: the
/// Figure-5 interleaved/blocked mappings.
#[test]
fn mapping_vector_requirements() {
    let dom = RectDomain::new(ivec![0, 0], ivec![9, 9]);
    for ov in [ivec![1, 1], ivec![2, 1], ivec![1, -2]] {
        let map = OvMap::new(&dom, ov.clone(), Layout::Interleaved);
        let mv = map.mapping_vector_2d().unwrap();
        assert_eq!(mv.dot(&ov), 0);
        assert_eq!(mv.content(), 1);
    }
    // Fig 5 explicit formulas for ov = (2,0) on rows of length L = 10.
    let inter = OvMap::new(&dom, ivec![2, 0], Layout::Interleaved);
    let block = OvMap::new(&dom, ivec![2, 0], Layout::Blocked);
    for q in dom.points() {
        assert_eq!(inter.map(&q) as i64, 2 * q[1] + q[0].rem_euclid(2));
        assert_eq!(block.map(&q) as i64, q[1] + q[0].rem_euclid(2) * 10);
    }
}

/// Table 1: natural TL, OV-mapped 2L, storage-optimized L+3.
#[test]
fn table1_formulas() {
    for (l, t) in [(100u64, 10u64), (1 << 20, 64)] {
        assert_eq!(
            stencil5::storage_cells(stencil5::Variant::Natural, l, t),
            t * l
        );
        assert_eq!(
            stencil5::storage_cells(stencil5::Variant::OvBlocked, l, t),
            2 * l
        );
        assert_eq!(
            stencil5::storage_cells(stencil5::Variant::StorageOptimized, l, t),
            l + 3
        );
    }
}

/// Table 2: natural n₀n₁+n₀+n₁, OV-mapped 2n₀+2n₁+1, optimized 2n₀+3.
#[test]
fn table2_formulas() {
    for (n0, n1) in [(50u64, 30u64), (1000, 1000)] {
        assert_eq!(
            psm::storage_cells(psm::Variant::Natural, n0, n1),
            n0 * n1 + n0 + n1
        );
        assert_eq!(
            psm::storage_cells(psm::Variant::OvMapped, n0, n1),
            2 * n0 + 2 * n1 + 1
        );
        assert_eq!(
            psm::storage_cells(psm::Variant::StorageOptimized, n0, n1),
            2 * n0 + 3
        );
    }
}

/// §5/Table 2 derivation: the per-statement consumer stencils of the
/// Gotoh recurrence have UOVs (1,1), (1,0), (0,1) whose storage sums to
/// the paper's 2n₀+2n₁+1.
#[test]
fn psm_per_statement_uovs_sum_to_table2() {
    let (n0, n1) = (40i64, 25i64);
    let v_h = Stencil::new(vec![ivec![1, 1], ivec![1, 0], ivec![0, 1]]).unwrap();
    let v_e = Stencil::new(vec![ivec![1, 0]]).unwrap();
    let v_f = Stencil::new(vec![ivec![0, 1]]).unwrap();
    let h_uov = find_best_uov(&v_h, Objective::ShortestVector, &SearchConfig::default())
        .expect("stencil is in range")
        .uov;
    let e_uov = find_best_uov(&v_e, Objective::ShortestVector, &SearchConfig::default())
        .expect("stencil is in range")
        .uov;
    let f_uov = find_best_uov(&v_f, Objective::ShortestVector, &SearchConfig::default())
        .expect("stencil is in range")
        .uov;
    assert_eq!(h_uov, ivec![1, 1]);
    assert_eq!(e_uov, ivec![1, 0]);
    assert_eq!(f_uov, ivec![0, 1]);

    // H over the bordered (n1+1)×(n0+1) grid, E over rows 1..n1 × cols
    // 1..n0 collapsed by (1,0), F symmetric.
    let h_dom = RectDomain::new(ivec![0, 0], ivec![n1, n0]);
    let inner = RectDomain::grid(n1, n0);
    let h_cells = storage_class_count(&h_dom, &h_uov) as i64;
    let e_cells = storage_class_count(&inner, &e_uov) as i64;
    let f_cells = storage_class_count(&inner, &f_uov) as i64;
    assert_eq!(h_cells, n0 + n1 + 1);
    assert_eq!(e_cells, n0);
    assert_eq!(f_cells, n1);
    assert_eq!(
        (h_cells + e_cells + f_cells) as u64,
        psm::storage_cells(psm::Variant::OvMapped, n0 as u64, n1 as u64)
    );
}

/// §6/§7: the UOV "does not restrict the set of legal schedules" — OV
/// dependences lie in the transitive closure of the stencil.
#[test]
fn uov_dependences_in_transitive_closure() {
    for s in [fig1_stencil(), stencil5_stencil()] {
        let oracle = DoneOracle::new(&s);
        for w in oracle.uovs_within(4) {
            // The def-def dependence q → q+w is implied by value flow:
            assert!(oracle.in_done(&w));
            // …and so is every use-def dependence (q−vᵢ) → q+w −:
            // (q + w) − (q − vᵢ) = w + vᵢ ∈ cone.
            for v in &s {
                assert!(oracle.in_done(&(&w + v)));
            }
        }
    }
}
