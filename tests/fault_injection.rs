//! Fault injection: adversarial inputs and starvation budgets against the
//! whole engine. The contract under attack:
//!
//! 1. **No panics.** Malformed or extreme inputs produce `Err`, never a
//!    crash — library crates deny `unwrap`/`expect` outside tests.
//! 2. **Budgets are respected.** The node cap is exact (the counter is a
//!    single atomic shared by all workers); deadline and cancellation
//!    overshoot is bounded by one check interval of node expansions
//!    ([`Budget::CHECK_INTERVAL`]) **per worker**.
//! 3. **Degradation stays legal.** A budget-truncated search still returns
//!    a true UOV (at worst the initial `Σvᵢ`), verified by the exact
//!    oracle after the fact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use uov::core::npc::PartitionInstance;
use uov::core::search::{find_best_uov, initial_uov, Objective, SearchConfig};
use uov::core::{Budget, DoneOracle, Exhausted, SearchError};
use uov::driver::{plan_with, PlanConfig};
use uov::isg::{ivec, IVec, IsgError, RectDomain, Stencil};
use uov::loopir::examples;
use uov::storage::{Layout, MappingError, NaturalMap, OvMap};

fn budgeted(budget: Budget) -> SearchConfig {
    SearchConfig {
        max_visits: None,
        budget,
        threads: 1,
    }
}

fn budgeted_threaded(budget: Budget, threads: usize) -> SearchConfig {
    SearchConfig {
        max_visits: None,
        budget,
        threads,
    }
}

/// PARTITION reductions are the engine's worst case (§3.1: UOV membership
/// is NP-complete). Starve them with a 1 ms deadline: the search must
/// come back immediately with a verified-legal answer, not hang or crash.
#[test]
fn partition_reductions_survive_one_ms_deadline() {
    let instances = [
        vec![3, 1, 1, 2, 2, 1],
        vec![5, 5, 4, 3, 2, 1],
        vec![9, 2, 2, 1],
        vec![13, 11, 9, 7, 2],
    ];
    // (At most 6 values each: the reduction's coordinates grow like 7^m,
    // and the *verification* below uses the exact oracle — itself the
    // NP-hard computation, intractable past m ≈ 6. The deadline, not the
    // instance size, is what this test starves.)
    for values in instances {
        let inst = PartitionInstance::new(values.clone()).expect("positive values");
        let (stencil, _candidate) = inst.reduce().expect("reduction in range");
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(1));
        let res = find_best_uov(&stencil, Objective::ShortestVector, &budgeted(budget))
            .expect("a deadline never turns a valid instance into an error");
        // Degraded or not, the answer must be a true UOV.
        assert!(
            DoneOracle::new(&stencil).is_uov(&res.uov),
            "illegal answer for {values:?}: {}",
            res.uov
        );
        if let Some(d) = &res.degradation {
            assert_eq!(d.reason, Exhausted::Deadline, "{values:?}");
        }
    }
}

/// An already-expired deadline must stop the search within one check
/// interval of node charges — the promised overshoot bound.
#[test]
fn deadline_overshoot_is_bounded_by_one_check_interval() {
    let inst = PartitionInstance::new(vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let res = find_best_uov(&stencil, Objective::ShortestVector, &budgeted(budget))
        .expect("degrades, not errors");
    let d = res.degradation.expect("expired deadline must degrade");
    assert_eq!(d.reason, Exhausted::Deadline);
    assert!(
        d.nodes_at_stop <= Budget::CHECK_INTERVAL,
        "overshoot {} nodes exceeds one check interval",
        d.nodes_at_stop
    );
    assert_eq!(res.uov, initial_uov(&stencil), "no time to improve on Σvᵢ");
}

/// A pre-tripped cancellation token is observed on the very first charge.
#[test]
fn cancellation_token_stops_search_immediately() {
    let inst = PartitionInstance::new(vec![5, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let token = Arc::new(AtomicBool::new(true));
    let budget = Budget::unlimited().with_cancel_token(token.clone());
    let res = find_best_uov(&stencil, Objective::ShortestVector, &budgeted(budget))
        .expect("cancellation degrades, not errors");
    let d = res.degradation.expect("tripped token must degrade");
    assert_eq!(d.reason, Exhausted::Cancelled);
    assert!(d.nodes_at_stop <= Budget::CHECK_INTERVAL);
    assert!(DoneOracle::new(&stencil).is_uov(&res.uov));
    // Un-tripping after the fact changes nothing about the returned record.
    token.store(false, Ordering::Relaxed);
    assert_eq!(d.reason, Exhausted::Cancelled);
}

/// Concurrency stress: the 8-worker parallel search under a 1 ms deadline
/// on the engine's NP-hard worst case. It must come back promptly (no
/// deadlock, no livelock in the termination protocol), respect the
/// per-worker overshoot bound, and return an oracle-verified UOV.
#[test]
fn parallel_search_survives_one_ms_deadline_with_8_threads() {
    let inst = PartitionInstance::new(vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let threads = 8;
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(1));
    let res = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &budgeted_threaded(budget, threads),
    )
    .expect("a deadline never turns a valid instance into an error");
    assert!(
        DoneOracle::new(&stencil).is_uov(&res.uov),
        "degraded parallel answer is not a UOV: {}",
        res.uov
    );
    if let Some(d) = &res.degradation {
        assert_eq!(d.reason, Exhausted::Deadline);
    }
}

/// A pre-tripped cancellation token with 8 workers: each worker observes
/// the token within its own first check interval, so the total overshoot
/// is bounded by one interval *per worker* — the documented bound.
#[test]
fn parallel_cancellation_overshoot_is_bounded_per_worker() {
    let inst = PartitionInstance::new(vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let threads: u64 = 8;
    let token = Arc::new(AtomicBool::new(true));
    let budget = Budget::unlimited().with_cancel_token(token);
    let res = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &budgeted_threaded(budget, threads as usize),
    )
    .expect("cancellation degrades, not errors");
    let d = res.degradation.expect("tripped token must degrade");
    assert_eq!(d.reason, Exhausted::Cancelled);
    assert!(
        d.nodes_at_stop <= Budget::CHECK_INTERVAL * threads,
        "overshoot {} nodes exceeds one check interval per worker",
        d.nodes_at_stop
    );
    assert!(DoneOracle::new(&stencil).is_uov(&res.uov));
    assert_eq!(res.uov, initial_uov(&stencil), "no time to improve on Σvᵢ");
}

/// An expired deadline with 8 workers stops within one check interval per
/// worker and still falls back to the always-legal initial UOV.
#[test]
fn parallel_deadline_overshoot_is_bounded_per_worker() {
    let inst = PartitionInstance::new(vec![13, 11, 9, 7, 2]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let threads: u64 = 8;
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let res = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &budgeted_threaded(budget, threads as usize),
    )
    .expect("degrades, not errors");
    let d = res.degradation.expect("expired deadline must degrade");
    assert_eq!(d.reason, Exhausted::Deadline);
    assert!(
        d.nodes_at_stop <= Budget::CHECK_INTERVAL * threads,
        "overshoot {} nodes exceeds one check interval per worker",
        d.nodes_at_stop
    );
    assert!(DoneOracle::new(&stencil).is_uov(&res.uov));
}

/// Near-`i64::MAX` coordinates: every layer reports overflow as an error
/// value instead of panicking (debug builds) or wrapping (release builds).
#[test]
fn extreme_coordinates_error_instead_of_panicking() {
    let huge = i64::MAX - 1;

    // Stencil construction itself accepts the coordinates…
    let s = Stencil::new(vec![ivec![huge, 0], ivec![huge, huge]]).expect("lex-positive");
    // …but the search's setup arithmetic (Σvᵢ, ‖v‖², functional bounds)
    // overflows and must say so.
    let res = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default());
    assert!(
        matches!(res, Err(SearchError::Isg(IsgError::Overflow { .. }))),
        "expected overflow, got {res:?}"
    );

    // i64::MIN is unnegatable: gcd/content paths must reject it.
    assert!(ivec![i64::MIN, 0].try_content().is_err());

    // A domain too large to address: mapping construction reports it.
    let vast = RectDomain::new(ivec![0, 0], ivec![huge, huge]);
    assert!(matches!(
        NaturalMap::try_new(&vast),
        Err(MappingError::AllocationTooLarge)
    ));
    // An axis-collapsing OV still fits in the address space, but a
    // diagonal one needs ~2·i64::MAX classes — typed error, no wrap.
    assert!(OvMap::try_new(&vast, ivec![1, 0], Layout::Interleaved).is_ok());
    assert!(matches!(
        OvMap::try_new(&vast, ivec![1, 1], Layout::Interleaved),
        Err(MappingError::AllocationTooLarge | MappingError::Isg(_))
    ));
}

/// Degenerate stencils: empty, zero vectors, lex-negative vectors, and
/// dimension mismatches are rejected as typed errors.
#[test]
fn degenerate_stencils_are_rejected_not_crashed() {
    assert!(Stencil::new(vec![]).is_err(), "empty stencil");
    assert!(Stencil::new(vec![ivec![0, 0]]).is_err(), "zero vector");
    assert!(Stencil::new(vec![ivec![-1, 2]]).is_err(), "lex-negative");

    // A single-vector stencil is its own optimal UOV.
    let s = Stencil::new(vec![ivec![1, 0]]).expect("valid");
    let res =
        find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).expect("in range");
    assert_eq!(res.uov, ivec![1, 0]);

    // Mapping with a vector of the wrong dimension: typed error.
    let dom = RectDomain::grid(4, 4);
    assert!(matches!(
        OvMap::try_new(&dom, ivec![1, 0, 0], Layout::Interleaved),
        Err(MappingError::DimMismatch {
            domain: 2,
            vector: 3
        })
    ));
    assert!(matches!(
        OvMap::try_new(&dom, ivec![0, 0], Layout::Interleaved),
        Err(MappingError::ZeroVector)
    ));
}

/// The end-to-end driver under a starvation deadline: the plan still
/// materialises, every statement keeps a legal UOV, and the degradations
/// are reported per statement.
#[test]
fn driver_degrades_gracefully_under_starvation() {
    for nest in [
        examples::fig1_nest(16, 16),
        examples::stencil5_nest(8, 32),
        examples::psm_nest(12, 12),
    ] {
        let config = PlanConfig {
            layout: Layout::Interleaved,
            budget: Budget::unlimited().with_deadline(Duration::ZERO),
            threads: 1,
        };
        let p = plan_with(&nest, &config).expect("starvation must not fail the plan");
        for stmt in p.statements.iter().flatten() {
            assert!(
                DoneOracle::new(&stmt.stencil).is_uov(&stmt.uov),
                "driver kept an illegal UOV under starvation"
            );
            let d = stmt
                .degradation
                .as_ref()
                .expect("zero deadline must degrade");
            assert!(d.nodes_at_stop <= Budget::CHECK_INTERVAL);
        }
    }
}

fn lex_positive_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2, 4), 1..6)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any node cap, any stencil: the search returns (never panics) and
    /// whatever it returns is a true UOV. The node cap is exact, so the
    /// recorded stop point never exceeds cap + 1.
    #[test]
    fn starved_search_is_always_legal(s in stencil_2d(), cap in 1u64..200) {
        let budget = Budget::unlimited().with_max_nodes(cap);
        let res = find_best_uov(&s, Objective::ShortestVector, &budgeted(budget))
            .expect("small coordinates cannot overflow");
        prop_assert!(DoneOracle::new(&s).is_uov(&res.uov));
        if let Some(d) = &res.degradation {
            prop_assert_eq!(d.reason, Exhausted::Nodes);
            prop_assert!(d.nodes_at_stop <= cap + 1, "node cap is exact");
        }
    }

    /// Budgeted and unbudgeted searches agree whenever the budget did not
    /// actually bind — degradation is the *only* way answers may differ.
    #[test]
    fn generous_budget_changes_nothing(s in stencil_2d()) {
        let exact = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())
            .expect("in range");
        let budget = Budget::unlimited()
            .with_deadline(Duration::from_secs(120))
            .with_max_nodes(u64::MAX)
            .with_max_memo_entries(usize::MAX);
        let roomy = find_best_uov(&s, Objective::ShortestVector, &budgeted(budget))
            .expect("in range");
        prop_assert!(roomy.degradation.is_none());
        prop_assert_eq!(exact.cost, roomy.cost);
    }

    /// Memo-capped oracle queries: either a definitive answer or a typed
    /// exhaustion — and the raw query is the one place exhaustion is an
    /// error, because there is no legal fallback for a membership bit.
    #[test]
    fn memo_capped_oracle_never_lies(s in stencil_2d(), w in lex_positive_vec(2, 6)) {
        let oracle = DoneOracle::new(&s);
        let budget = Budget::unlimited().with_max_memo_entries(4);
        match oracle.is_uov_budgeted(&w, &budget) {
            Ok(answer) => prop_assert_eq!(answer, oracle.is_uov(&w), "budget changed the answer"),
            Err(SearchError::Exhausted(reason)) => prop_assert_eq!(reason, Exhausted::Memo),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
