//! Fault injection: adversarial inputs and starvation budgets against the
//! whole engine. The contract under attack:
//!
//! 1. **No panics.** Malformed or extreme inputs produce `Err`, never a
//!    crash — library crates deny `unwrap`/`expect` outside tests.
//! 2. **Budgets are respected.** The node cap is exact (the counter is a
//!    single atomic shared by all workers); deadline and cancellation
//!    overshoot is bounded by one check interval of node expansions
//!    ([`Budget::CHECK_INTERVAL`]) **per worker**.
//! 3. **Degradation stays legal.** A budget-truncated search still returns
//!    a true UOV (at worst the initial `Σvᵢ`), verified by the exact
//!    oracle after the fact.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use uov::core::checkpoint::{read_snapshot, CheckpointConfig, CheckpointError};
use uov::core::npc::PartitionInstance;
use uov::core::search::{find_best_uov, initial_uov, search_resume, Objective, SearchConfig};
use uov::core::{Budget, DoneOracle, Exhausted, SearchError};
use uov::driver::{plan_with, PlanConfig};
use uov::isg::{ivec, IVec, IsgError, RectDomain, Stencil};
use uov::loopir::examples;
use uov::storage::{Layout, MappingError, NaturalMap, OvMap};

fn budgeted(budget: Budget) -> SearchConfig {
    SearchConfig {
        max_visits: None,
        budget,
        threads: 1,
        checkpoint: None,
        bound_hint: None,
    }
}

fn budgeted_threaded(budget: Budget, threads: usize) -> SearchConfig {
    SearchConfig {
        max_visits: None,
        budget,
        threads,
        checkpoint: None,
        bound_hint: None,
    }
}

/// PARTITION reductions are the engine's worst case (§3.1: UOV membership
/// is NP-complete). Starve them with a 1 ms deadline: the search must
/// come back immediately with a verified-legal answer, not hang or crash.
#[test]
fn partition_reductions_survive_one_ms_deadline() {
    let instances = [
        vec![3, 1, 1, 2, 2, 1],
        vec![5, 5, 4, 3, 2, 1],
        vec![9, 2, 2, 1],
        vec![13, 11, 9, 7, 2],
    ];
    // (At most 6 values each: the reduction's coordinates grow like 7^m,
    // and the *verification* below uses the exact oracle — itself the
    // NP-hard computation, intractable past m ≈ 6. The deadline, not the
    // instance size, is what this test starves.)
    for values in instances {
        let inst = PartitionInstance::new(values.clone()).expect("positive values");
        let (stencil, _candidate) = inst.reduce().expect("reduction in range");
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(1));
        let res = find_best_uov(&stencil, Objective::ShortestVector, &budgeted(budget))
            .expect("a deadline never turns a valid instance into an error");
        // Degraded or not, the answer must be a true UOV.
        assert!(
            DoneOracle::new(&stencil).is_uov(&res.uov),
            "illegal answer for {values:?}: {}",
            res.uov
        );
        if let Some(d) = &res.degradation {
            assert_eq!(d.reason, Exhausted::Deadline, "{values:?}");
        }
    }
}

/// An already-expired deadline must stop the search within one check
/// interval of node charges — the promised overshoot bound.
#[test]
fn deadline_overshoot_is_bounded_by_one_check_interval() {
    let inst = PartitionInstance::new(vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let res = find_best_uov(&stencil, Objective::ShortestVector, &budgeted(budget))
        .expect("degrades, not errors");
    let d = res.degradation.expect("expired deadline must degrade");
    assert_eq!(d.reason, Exhausted::Deadline);
    assert!(
        d.nodes_at_stop <= Budget::CHECK_INTERVAL,
        "overshoot {} nodes exceeds one check interval",
        d.nodes_at_stop
    );
    assert_eq!(res.uov, initial_uov(&stencil), "no time to improve on Σvᵢ");
}

/// A pre-tripped cancellation token is observed on the very first charge.
#[test]
fn cancellation_token_stops_search_immediately() {
    let inst = PartitionInstance::new(vec![5, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let token = Arc::new(AtomicBool::new(true));
    let budget = Budget::unlimited().with_cancel_token(token.clone());
    let res = find_best_uov(&stencil, Objective::ShortestVector, &budgeted(budget))
        .expect("cancellation degrades, not errors");
    let d = res.degradation.expect("tripped token must degrade");
    assert_eq!(d.reason, Exhausted::Cancelled);
    assert!(d.nodes_at_stop <= Budget::CHECK_INTERVAL);
    assert!(DoneOracle::new(&stencil).is_uov(&res.uov));
    // Un-tripping after the fact changes nothing about the returned record.
    token.store(false, Ordering::Relaxed);
    assert_eq!(d.reason, Exhausted::Cancelled);
}

/// Concurrency stress: the 8-worker parallel search under a 1 ms deadline
/// on the engine's NP-hard worst case. It must come back promptly (no
/// deadlock, no livelock in the termination protocol), respect the
/// per-worker overshoot bound, and return an oracle-verified UOV.
#[test]
fn parallel_search_survives_one_ms_deadline_with_8_threads() {
    let inst = PartitionInstance::new(vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let threads = 8;
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(1));
    let res = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &budgeted_threaded(budget, threads),
    )
    .expect("a deadline never turns a valid instance into an error");
    assert!(
        DoneOracle::new(&stencil).is_uov(&res.uov),
        "degraded parallel answer is not a UOV: {}",
        res.uov
    );
    if let Some(d) = &res.degradation {
        assert_eq!(d.reason, Exhausted::Deadline);
    }
}

/// A pre-tripped cancellation token with 8 workers: each worker observes
/// the token within its own first check interval, so the total overshoot
/// is bounded by one interval *per worker* — the documented bound.
#[test]
fn parallel_cancellation_overshoot_is_bounded_per_worker() {
    let inst = PartitionInstance::new(vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let threads: u64 = 8;
    let token = Arc::new(AtomicBool::new(true));
    let budget = Budget::unlimited().with_cancel_token(token);
    let res = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &budgeted_threaded(budget, threads as usize),
    )
    .expect("cancellation degrades, not errors");
    let d = res.degradation.expect("tripped token must degrade");
    assert_eq!(d.reason, Exhausted::Cancelled);
    assert!(
        d.nodes_at_stop <= Budget::CHECK_INTERVAL * threads,
        "overshoot {} nodes exceeds one check interval per worker",
        d.nodes_at_stop
    );
    assert!(DoneOracle::new(&stencil).is_uov(&res.uov));
    assert_eq!(res.uov, initial_uov(&stencil), "no time to improve on Σvᵢ");
}

/// An expired deadline with 8 workers stops within one check interval per
/// worker and still falls back to the always-legal initial UOV.
#[test]
fn parallel_deadline_overshoot_is_bounded_per_worker() {
    let inst = PartitionInstance::new(vec![13, 11, 9, 7, 2]).expect("positive");
    let (stencil, _) = inst.reduce().expect("in range");
    let threads: u64 = 8;
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let res = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &budgeted_threaded(budget, threads as usize),
    )
    .expect("degrades, not errors");
    let d = res.degradation.expect("expired deadline must degrade");
    assert_eq!(d.reason, Exhausted::Deadline);
    assert!(
        d.nodes_at_stop <= Budget::CHECK_INTERVAL * threads,
        "overshoot {} nodes exceeds one check interval per worker",
        d.nodes_at_stop
    );
    assert!(DoneOracle::new(&stencil).is_uov(&res.uov));
}

/// Near-`i64::MAX` coordinates: every layer reports overflow as an error
/// value instead of panicking (debug builds) or wrapping (release builds).
#[test]
fn extreme_coordinates_error_instead_of_panicking() {
    let huge = i64::MAX - 1;

    // Stencil construction itself accepts the coordinates…
    let s = Stencil::new(vec![ivec![huge, 0], ivec![huge, huge]]).expect("lex-positive");
    // …but the search's setup arithmetic (Σvᵢ, ‖v‖², functional bounds)
    // overflows and must say so.
    let res = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default());
    assert!(
        matches!(res, Err(SearchError::Isg(IsgError::Overflow { .. }))),
        "expected overflow, got {res:?}"
    );

    // i64::MIN is unnegatable: gcd/content paths must reject it.
    assert!(ivec![i64::MIN, 0].try_content().is_err());

    // A domain too large to address: mapping construction reports it.
    let vast = RectDomain::new(ivec![0, 0], ivec![huge, huge]);
    assert!(matches!(
        NaturalMap::try_new(&vast),
        Err(MappingError::AllocationTooLarge)
    ));
    // An axis-collapsing OV still fits in the address space, but a
    // diagonal one needs ~2·i64::MAX classes — typed error, no wrap.
    assert!(OvMap::try_new(&vast, ivec![1, 0], Layout::Interleaved).is_ok());
    assert!(matches!(
        OvMap::try_new(&vast, ivec![1, 1], Layout::Interleaved),
        Err(MappingError::AllocationTooLarge | MappingError::Isg(_))
    ));
}

/// Degenerate stencils: empty, zero vectors, lex-negative vectors, and
/// dimension mismatches are rejected as typed errors.
#[test]
fn degenerate_stencils_are_rejected_not_crashed() {
    assert!(Stencil::new(vec![]).is_err(), "empty stencil");
    assert!(Stencil::new(vec![ivec![0, 0]]).is_err(), "zero vector");
    assert!(Stencil::new(vec![ivec![-1, 2]]).is_err(), "lex-negative");

    // A single-vector stencil is its own optimal UOV.
    let s = Stencil::new(vec![ivec![1, 0]]).expect("valid");
    let res =
        find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).expect("in range");
    assert_eq!(res.uov, ivec![1, 0]);

    // Mapping with a vector of the wrong dimension: typed error.
    let dom = RectDomain::grid(4, 4);
    assert!(matches!(
        OvMap::try_new(&dom, ivec![1, 0, 0], Layout::Interleaved),
        Err(MappingError::DimMismatch {
            domain: 2,
            vector: 3
        })
    ));
    assert!(matches!(
        OvMap::try_new(&dom, ivec![0, 0], Layout::Interleaved),
        Err(MappingError::ZeroVector)
    ));
}

/// The end-to-end driver under a starvation deadline: the plan still
/// materialises, every statement keeps a legal UOV, and the degradations
/// are reported per statement.
#[test]
fn driver_degrades_gracefully_under_starvation() {
    for nest in [
        examples::fig1_nest(16, 16),
        examples::stencil5_nest(8, 32),
        examples::psm_nest(12, 12),
    ] {
        let config = PlanConfig {
            layout: Layout::Interleaved,
            budget: Budget::unlimited().with_deadline(Duration::ZERO),
            ..PlanConfig::default()
        };
        let p = plan_with(&nest, &config).expect("starvation must not fail the plan");
        for stmt in p.statements.iter().flatten() {
            assert!(
                DoneOracle::new(&stmt.stencil).is_uov(&stmt.uov),
                "driver kept an illegal UOV under starvation"
            );
            let d = stmt
                .degradation
                .as_ref()
                .expect("zero deadline must degrade");
            assert!(d.nodes_at_stop <= Budget::CHECK_INTERVAL);
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot corruption: every damaged checkpoint is a typed
// `CheckpointError`, never a panic, a hang, or a silently wrong resume.
// ---------------------------------------------------------------------

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("uov_fault_{name}_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Bytes of a genuine snapshot from a real (truncated) checkpointed run.
fn real_snapshot_bytes(name: &str) -> Vec<u8> {
    let s = Stencil::new(vec![ivec![1, -2], ivec![1, 0], ivec![1, 2]]).expect("valid");
    let path = tmp_path(name);
    let config = SearchConfig {
        budget: Budget::unlimited().with_max_nodes(6),
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            interval: 1,
        }),
        ..SearchConfig::default()
    };
    let res = find_best_uov(&s, Objective::ShortestVector, &config).expect("in range");
    assert_eq!(res.checkpoint_error, None, "snapshot write must succeed");
    let bytes = std::fs::read(&path).expect("snapshot file exists");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn truncated_snapshots_are_typed_errors() {
    let bytes = real_snapshot_bytes("trunc");
    let path = tmp_path("trunc_cut");
    for cut in [bytes.len() / 2, bytes.len() - 4, 3, 0] {
        std::fs::write(&path, &bytes[..cut]).expect("write test file");
        match read_snapshot(&path) {
            Err(CheckpointError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_sections_fail_their_crc() {
    let bytes = real_snapshot_bytes("flip");
    let path = tmp_path("flip_mut");
    // Flip one bit inside the last section's CRC trailer: the CRC no
    // longer matches its section.
    let mut crc_flip = bytes.clone();
    let n = crc_flip.len();
    crc_flip[n - 3] ^= 0x10;
    std::fs::write(&path, &crc_flip).expect("write test file");
    assert!(
        matches!(
            read_snapshot(&path),
            Err(CheckpointError::CrcMismatch { .. })
        ),
        "CRC-trailer flip must be a CrcMismatch"
    );
    // Flip one bit of every byte in turn: decoding must never panic and
    // never silently accept a snapshot that differs from the original.
    let clean = read_snapshot_bytes(&bytes);
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 1;
        std::fs::write(&path, &mutated).expect("write test file");
        if let Ok(snap) = read_snapshot(&path) {
            assert_ne!(
                snap.fingerprint, clean.fingerprint,
                "byte {i}: flip decoded Ok without changing the fingerprint"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// Decode a snapshot from an in-memory byte image via a scratch file.
fn read_snapshot_bytes(bytes: &[u8]) -> uov::core::checkpoint::Snapshot {
    let path = tmp_path("scratch_decode");
    std::fs::write(&path, bytes).expect("write test file");
    let snap = read_snapshot(&path).expect("pristine snapshot decodes");
    let _ = std::fs::remove_file(&path);
    snap
}

#[test]
fn wrong_version_header_is_rejected() {
    let mut bytes = real_snapshot_bytes("version");
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let path = tmp_path("version_mut");
    std::fs::write(&path, &bytes).expect("write test file");
    assert!(matches!(
        read_snapshot(&path),
        Err(CheckpointError::UnsupportedVersion(99))
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn damaged_magic_is_rejected() {
    let mut bytes = real_snapshot_bytes("magic");
    bytes[0] = b'X';
    let path = tmp_path("magic_mut");
    std::fs::write(&path, &bytes).expect("write test file");
    assert!(matches!(
        read_snapshot(&path),
        Err(CheckpointError::BadMagic)
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_snapshot_file_is_a_typed_io_error() {
    let path = tmp_path("does_not_exist");
    assert!(matches!(
        read_snapshot(&path),
        Err(CheckpointError::Io { .. })
    ));
}

#[test]
fn snapshot_from_a_different_stencil_cannot_resume() {
    let s = Stencil::new(vec![ivec![1, -2], ivec![1, 0], ivec![1, 2]]).expect("valid");
    let path = tmp_path("mismatch");
    let config = SearchConfig {
        checkpoint: Some(CheckpointConfig {
            path: path.clone(),
            interval: 4,
        }),
        ..SearchConfig::default()
    };
    let res = find_best_uov(&s, Objective::ShortestVector, &config).expect("in range");
    assert_eq!(res.checkpoint_error, None);

    // Different stencil — refused.
    let other = Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).expect("valid");
    let err = search_resume(
        &path,
        &other,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect_err("a foreign snapshot must be refused");
    assert!(matches!(
        err,
        SearchError::Checkpoint(CheckpointError::StencilMismatch { .. })
    ));

    // Same stencil, different objective — also refused: the snapshot's
    // costs would be meaningless under the other objective.
    let grid = RectDomain::grid(4, 4);
    let err = search_resume(
        &path,
        &s,
        Objective::KnownBounds(&grid),
        &SearchConfig::default(),
    )
    .expect_err("an objective change must be refused");
    assert!(matches!(
        err,
        SearchError::Checkpoint(CheckpointError::StencilMismatch { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Kill -9 and resume: the crash-safety acceptance test, in-process.
// ---------------------------------------------------------------------

/// The kill-loop workload: ~1 s of debug-profile search at 4 threads —
/// long enough that a 250 ms timer reliably SIGKILLs it mid-run, short
/// enough that the final resumed completion stays cheap.
fn kill_workload() -> Stencil {
    Stencil::new(vec![
        ivec![5, 0, 0],
        ivec![0, 5, 0],
        ivec![0, 0, 5],
        ivec![1, 2, 3],
    ])
    .expect("static stencil is valid")
}

fn kill_workload_config(path: &Path) -> SearchConfig {
    SearchConfig {
        threads: 4,
        checkpoint: Some(CheckpointConfig {
            path: path.to_path_buf(),
            interval: 2_000,
        }),
        ..SearchConfig::default()
    }
}

/// Child half of the kill test: inert unless `UOV_CKPT_CHILD` names a
/// snapshot path, in which case it runs (or resumes) the checkpointed
/// search and exits. The parent test SIGKILLs this process mid-run.
#[test]
fn checkpoint_child_runner() {
    let Ok(path) = std::env::var("UOV_CKPT_CHILD") else {
        return;
    };
    let path = PathBuf::from(path);
    let s = kill_workload();
    let config = kill_workload_config(&path);
    let res = if path.exists() {
        search_resume(&path, &s, Objective::ShortestVector, &config)
    } else {
        find_best_uov(&s, Objective::ShortestVector, &config)
    }
    .expect("child search must succeed");
    println!("RESULT uov={} cost={}", res.uov, res.cost);
}

#[test]
fn sigkilled_and_resumed_search_matches_clean_run() {
    use std::process::{Command, Stdio};
    let clean = find_best_uov(
        &kill_workload(),
        Objective::ShortestVector,
        &SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        },
    )
    .expect("in range");

    let exe = std::env::current_exe().expect("test binary path");
    let path = tmp_path("sigkill");
    let mut kills = 0;
    for _ in 0..6 {
        let mut child = Command::new(&exe)
            .args(["--exact", "checkpoint_child_runner", "--nocapture"])
            .env("UOV_CKPT_CHILD", &path)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn child test process");
        std::thread::sleep(Duration::from_millis(250));
        match child.try_wait().expect("poll child") {
            Some(_) => break, // ran to completion before the timer
            None => {
                child.kill().expect("SIGKILL child"); // SIGKILL on unix
                let _ = child.wait();
                kills += 1;
            }
        }
    }
    assert!(
        kills >= 1,
        "workload finished before any kill landed; grow kill_workload()"
    );
    // Finish whatever work remains from the last surviving snapshot.
    let s = kill_workload();
    let resumed = if path.exists() {
        search_resume(
            &path,
            &s,
            Objective::ShortestVector,
            &kill_workload_config(&path),
        )
        .expect("snapshot of a killed run must resume")
    } else {
        // Every kill landed before the first snapshot interval elapsed:
        // nothing persisted, so the "resume" is simply a fresh run.
        find_best_uov(&s, Objective::ShortestVector, &kill_workload_config(&path))
            .expect("in range")
    };
    assert_eq!(
        (resumed.uov.clone(), resumed.cost),
        (clean.uov.clone(), clean.cost),
        "kill -9 and resume must be byte-identical to the clean run"
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Planning-service protocol faults, against a *live* server: every
// adversarial byte stream must produce a typed error frame or a clean
// connection drop — never a worker panic — and the server must keep
// serving well-formed clients afterwards.
// ---------------------------------------------------------------------

mod service_faults {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    use uov::isg::{ivec, Stencil};
    use uov::service::proto::{
        self, encode_frame, read_frame, ObjectiveSpec, PlanRequest, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    };
    use uov::service::{serve, Client, ServerConfig, ServerHandle};

    fn test_server() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                // Short idle horizon (~0.5 s) so the half-open test
                // observes the reap without stalling the suite.
                idle_ticks: 5,
                ..ServerConfig::default()
            },
        )
        .expect("bind test server")
    }

    fn raw_conn(server: &ServerHandle) -> TcpStream {
        let s = TcpStream::connect(server.endpoint()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set timeout");
        s
    }

    fn valid_request_frame() -> Vec<u8> {
        let req = PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])
                .expect("valid stencil"),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        };
        encode_frame(proto::kind::REQ_PLAN, &req.encode())
    }

    /// The server survived an attack iff a fresh well-formed client still
    /// gets a correct answer and no worker ever panicked.
    fn assert_still_serving(server: &ServerHandle) {
        let mut client = Client::connect(server.endpoint()).expect("post-attack connect");
        let resp = client
            .plan(&PlanRequest {
                stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])
                    .expect("valid stencil"),
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0,
                flags: 0,
            })
            .expect("the server must keep serving after an attack");
        assert_eq!(resp.uov, ivec![1, 1]);
        assert_eq!(server.stats().panics, 0, "a worker panicked");
    }

    /// Truncated frames at every interesting cut point: mid-magic,
    /// mid-header, mid-payload, and just short of the CRC. Each one is a
    /// clean drop on the server side.
    #[test]
    fn truncated_frames_are_dropped_not_panicked() {
        let server = test_server();
        let frame = valid_request_frame();
        for cut in [1, 3, HEADER_LEN - 1, HEADER_LEN + 2, frame.len() - 1] {
            let mut conn = raw_conn(&server);
            conn.write_all(&frame[..cut]).expect("write truncated");
            // Half-close so the server's next read sees EOF mid-frame.
            conn.shutdown(std::net::Shutdown::Write).expect("shutdown");
            let mut sink = Vec::new();
            let _ = conn.read_to_end(&mut sink); // error frame or clean EOF
        }
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// Flip one bit in every byte of a valid frame in turn. The CRC (or a
    /// structural check it protects) must reject each mutant: the client
    /// never reads a RESP_PLAN, and the server never panics.
    #[test]
    fn bit_flips_never_yield_a_plan_response() {
        let server = test_server();
        let frame = valid_request_frame();
        for i in 0..frame.len() {
            let mut mutant = frame.clone();
            mutant[i] ^= 1;
            let mut conn = raw_conn(&server);
            if conn.write_all(&mutant).is_err() {
                continue; // server already dropped us — fine
            }
            let _ = conn.shutdown(std::net::Shutdown::Write);
            // A clean drop (Ok(None) / Err) is also acceptable; only a
            // successful plan response would be a contract violation.
            if let Ok(Some((kind, _))) = read_frame(&mut conn) {
                assert_eq!(
                    kind,
                    proto::kind::RESP_ERROR,
                    "byte {i}: a corrupted frame got a non-error response"
                );
            }
        }
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// Wrong magic and unsupported version headers are protocol errors:
    /// typed error frame or drop, counted by the server, no panic.
    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let server = test_server();

        let mut bad_magic = valid_request_frame();
        bad_magic[..4].copy_from_slice(b"EVIL");
        let mut bad_version = valid_request_frame();
        bad_version[4..6].copy_from_slice(&0xFFFFu16.to_le_bytes());

        for attack in [bad_magic, bad_version] {
            let mut conn = raw_conn(&server);
            conn.write_all(&attack).expect("write attack");
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut sink = Vec::new();
            let _ = conn.read_to_end(&mut sink);
        }
        assert!(
            server.stats().protocol_errors >= 2,
            "attacks must be counted as protocol errors"
        );
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// A length prefix far beyond `MAX_PAYLOAD` must be rejected from the
    /// 11 header bytes alone — no payload allocation, no read loop. The
    /// attacker sends *only* the header; a server that tried to read (or
    /// allocate) 4 GiB would hang past the read deadline below.
    #[test]
    fn oversized_length_prefix_is_rejected_from_the_header_alone() {
        let server = test_server();
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&proto::VERSION.to_le_bytes());
        header.push(proto::kind::REQ_PLAN);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        const { assert!(u32::MAX > MAX_PAYLOAD) };

        let mut conn = raw_conn(&server);
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        conn.write_all(&header).expect("write header");
        // Deliberately no payload and no EOF: the rejection must come
        // from the header, within the read deadline.
        let mut sink = [0u8; 64];
        match conn.read(&mut sink) {
            Ok(0) => {} // dropped — fine
            Ok(_) => {} // typed error frame — fine
            Err(e) => panic!("server hung on an oversized prefix: {e}"),
        }
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// A half-open connection (client connects, then goes silent) is
    /// reaped by the idle horizon instead of pinning a worker forever.
    #[test]
    fn half_open_connections_are_reaped() {
        let server = test_server();
        let conn = raw_conn(&server); // never writes
                                      // idle_ticks = 5 ⇒ reap after ~0.5 s of silence.
        std::thread::sleep(Duration::from_millis(1500));
        // The server closed its side: our next read sees EOF.
        let mut probe = conn;
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        let mut sink = [0u8; 8];
        match probe.read(&mut sink) {
            Ok(0) => {} // EOF — reaped
            Ok(n) => panic!("unexpected {n} bytes from a silent connection"),
            Err(e) => panic!("connection not reaped within the idle horizon: {e}"),
        }
        assert!(
            server.stats().idle_timeouts >= 1,
            "the reap must be counted as an idle timeout"
        );
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// A slow-loris peer trickling one header byte at a time slower than
    /// a full frame can form is cut by the read deadline: progress is
    /// only *completed frames*, so the drip never refreshes the idle
    /// clock, and the connection is reaped while a well-formed client on
    /// the same server keeps being served.
    #[test]
    fn slow_loris_header_drip_is_cut_by_the_read_deadline() {
        let server = test_server(); // idle_ticks = 5 ⇒ ~0.5 s deadline
        let frame = valid_request_frame();
        let mut conn = raw_conn(&server);
        let start = std::time::Instant::now();
        let mut cut = false;
        for byte in frame.iter().take(8) {
            if conn.write_all(std::slice::from_ref(byte)).is_err() {
                cut = true; // server already closed on us — the defense worked
                break;
            }
            std::thread::sleep(Duration::from_millis(250));
            if start.elapsed() > Duration::from_secs(5) {
                break;
            }
        }
        if !cut {
            // The drip finished its 8 bytes; the server must still have
            // reaped us (EOF on read), not parked the partial header.
            conn.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("set timeout");
            let mut sink = [0u8; 8];
            match conn.read(&mut sink) {
                Ok(0) => {} // EOF — reaped
                Ok(_) => {} // error frame — also a cut
                Err(e) => panic!("slow-loris drip was not reaped: {e}"),
            }
        }
        assert!(
            server.stats().idle_timeouts >= 1,
            "the slow-loris cut must be counted as an idle timeout"
        );
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// A batch frame whose entry count exceeds `MAX_BATCH_ENTRIES` is a
    /// typed `Malformed` rejection — counted, never allocated for, never
    /// a panic — both as a lying raw count and as a genuinely oversized
    /// well-formed batch.
    #[test]
    fn oversized_batch_counts_are_typed_malformed_rejections() {
        use uov::service::proto::{BatchRequest, MAX_BATCH_ENTRIES};
        use uov::service::{ErrorCode, ServiceError};

        let server = test_server();

        // A lying count with no entry bytes behind it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(MAX_BATCH_ENTRIES + 1).to_le_bytes());
        let frame = encode_frame(proto::kind::REQ_BATCH, &payload);
        let mut conn = raw_conn(&server);
        conn.write_all(&frame).expect("write oversized count");
        match read_frame(&mut conn).expect("typed reply") {
            Some((kind, _)) => assert_eq!(
                kind,
                proto::kind::RESP_ERROR,
                "a lying batch count must be rejected"
            ),
            None => panic!("connection dropped without a typed error"),
        }

        // A well-formed but oversized batch through the real client.
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let req = PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])
                .expect("valid stencil"),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        };
        let batch = BatchRequest {
            entries: vec![req; MAX_BATCH_ENTRIES as usize + 1],
        };
        match client.plan_batch(&batch) {
            Err(ServiceError::Rejected { code, .. }) => assert_eq!(
                code,
                ErrorCode::Malformed,
                "an oversized batch must be a typed Malformed rejection"
            ),
            other => panic!("oversized batch was not rejected: {other:?}"),
        }
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }

    /// Garbage *after* a valid frame on the same connection: the first
    /// request is answered, the trailing garbage is a typed drop.
    #[test]
    fn garbage_after_a_valid_frame_is_contained() {
        let server = test_server();
        let mut conn = raw_conn(&server);
        let mut bytes = valid_request_frame();
        bytes.extend_from_slice(b"\xde\xad\xbe\xef then some trailing junk");
        conn.write_all(&bytes).expect("write");
        let _ = conn.shutdown(std::net::Shutdown::Write);
        let first = read_frame(&mut conn).expect("first frame answers");
        let (kind, _) = first.expect("response present");
        assert_eq!(kind, proto::kind::RESP_PLAN, "valid request must be served");
        // Whatever follows is an error frame or EOF, never a hang/panic.
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
        assert_still_serving(&server);
        server.shutdown();
        server.join();
    }
}

fn lex_positive_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2, 4), 1..6)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any node cap, any stencil: the search returns (never panics) and
    /// whatever it returns is a true UOV. The node cap is exact, so the
    /// recorded stop point never exceeds cap + 1.
    #[test]
    fn starved_search_is_always_legal(s in stencil_2d(), cap in 1u64..200) {
        let budget = Budget::unlimited().with_max_nodes(cap);
        let res = find_best_uov(&s, Objective::ShortestVector, &budgeted(budget))
            .expect("small coordinates cannot overflow");
        prop_assert!(DoneOracle::new(&s).is_uov(&res.uov));
        if let Some(d) = &res.degradation {
            prop_assert_eq!(d.reason, Exhausted::Nodes);
            prop_assert!(d.nodes_at_stop <= cap + 1, "node cap is exact");
        }
    }

    /// Budgeted and unbudgeted searches agree whenever the budget did not
    /// actually bind — degradation is the *only* way answers may differ.
    #[test]
    fn generous_budget_changes_nothing(s in stencil_2d()) {
        let exact = find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default())
            .expect("in range");
        let budget = Budget::unlimited()
            .with_deadline(Duration::from_secs(120))
            .with_max_nodes(u64::MAX)
            .with_max_memo_entries(usize::MAX);
        let roomy = find_best_uov(&s, Objective::ShortestVector, &budgeted(budget))
            .expect("in range");
        prop_assert!(roomy.degradation.is_none());
        prop_assert_eq!(exact.cost, roomy.cost);
    }

    /// Memo-capped oracle queries: either a definitive answer or a typed
    /// exhaustion — and the raw query is the one place exhaustion is an
    /// error, because there is no legal fallback for a membership bit.
    #[test]
    fn memo_capped_oracle_never_lies(s in stencil_2d(), w in lex_positive_vec(2, 6)) {
        let oracle = DoneOracle::new(&s);
        let budget = Budget::unlimited().with_max_memo_entries(4);
        match oracle.is_uov_budgeted(&w, &budget) {
            Ok(answer) => prop_assert_eq!(answer, oracle.is_uov(&w), "budget changed the answer"),
            Err(SearchError::Exhausted(reason)) => prop_assert_eq!(reason, Exhausted::Memo),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Resilience-fabric faults: stale sockets across restarts, malformed
// frames landing in the server's per-class counters, cache eviction
// racing in-flight searches, and the watchdog cutting wedged workers.
// ---------------------------------------------------------------------

mod resilience_faults {
    use std::io::Write;
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use uov::core::npc::PartitionInstance;
    use uov::core::search::{find_best_uov, SearchConfig};
    use uov::isg::{ivec, Stencil};
    use uov::service::proto::{self, encode_frame, ObjectiveSpec, PlanRequest, HEADER_LEN, MAGIC};
    use uov::service::{serve, Client, PlanCache, ServerConfig};

    fn fig1_request() -> PlanRequest {
        PlanRequest {
            stencil: Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])
                .expect("valid stencil"),
            objective: ObjectiveSpec::ShortestVector,
            deadline_ms: 0,
            flags: 0,
        }
    }

    /// A long-lived client survives a full server bounce on the same
    /// port: the first request after the restart hits the stale socket,
    /// reconnects once transparently, and succeeds — no caller-visible
    /// error, no double-send (the retry fires only when no response
    /// frame was received).
    #[test]
    fn client_reconnects_once_across_a_server_restart() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let endpoint = server.endpoint().to_string();
        let mut client = Client::connect(&endpoint).expect("connect");
        let before = client.plan(&fig1_request()).expect("first plan");

        server.shutdown();
        server.join();
        // Same port, fresh process state (SO_REUSEADDR makes the rebind
        // immediate after a graceful drain).
        let server = serve(&endpoint, ServerConfig::default()).expect("rebind same port");

        let after = client
            .plan(&fig1_request())
            .expect("stale socket must heal with one transparent reconnect");
        assert_eq!(before.uov, after.uov);
        assert_eq!(before.certificate_hash, after.certificate_hash);
        server.shutdown();
        server.join();
    }

    /// Each malformed-frame class lands in its own server counter,
    /// readable over the wire via the `Stats` frame: CRC damage, wrong
    /// magic, unsupported version, oversized length prefix.
    #[test]
    fn malformed_frame_classes_are_counted_and_exposed() {
        let server = serve("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let valid = encode_frame(proto::kind::REQ_PLAN, &fig1_request().encode());

        // CRC flip: damage one payload byte; header still parses.
        let mut crc_flip = valid.clone();
        let at = HEADER_LEN + 2;
        crc_flip[at] ^= 0x01;
        // Wrong magic.
        let mut bad_magic = valid.clone();
        bad_magic[..4].copy_from_slice(b"EVIL");
        // Unsupported version.
        let mut bad_version = valid.clone();
        bad_version[4..6].copy_from_slice(&0xFFFFu16.to_le_bytes());
        // Hostile length prefix (header only, no payload follows).
        let mut oversized = Vec::new();
        oversized.extend_from_slice(MAGIC);
        oversized.extend_from_slice(&proto::VERSION.to_le_bytes());
        oversized.push(proto::kind::REQ_PLAN);
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());

        for attack in [&crc_flip, &bad_magic, &bad_version, &oversized] {
            let mut conn = TcpStream::connect(server.endpoint()).expect("connect");
            conn.write_all(attack).expect("write attack");
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut sink = Vec::new();
            let _ = std::io::Read::read_to_end(&mut conn, &mut sink);
        }

        let mut client = Client::connect(server.endpoint()).expect("connect");
        let stats = client.stats().expect("stats frame").server;
        assert!(stats.crc_failures >= 1, "CRC flip not counted: {stats:?}");
        assert!(stats.bad_magic >= 1, "bad magic not counted: {stats:?}");
        assert!(stats.bad_version >= 1, "bad version not counted: {stats:?}");
        assert!(
            stats.oversized_frames >= 1,
            "oversized prefix not counted: {stats:?}"
        );
        assert!(
            stats.protocol_errors >= 4,
            "aggregate must cover every class: {stats:?}"
        );
        assert_eq!(stats.panics, 0);
        server.shutdown();
        server.join();
    }

    /// LRU eviction racing an in-flight single-flight search: a tiny
    /// cache is churned by a flood of distinct problems while a slow
    /// leader holds a flight open and followers wait on it. Everyone
    /// must get the same correct answer — the flight table, not LRU
    /// residency, is what coalesces waiters.
    #[test]
    fn eviction_while_a_flight_is_open_stays_consistent() {
        let cache = Arc::new(PlanCache::new(2));
        let release = Arc::new(AtomicBool::new(false));

        let solve = |stencil: &Stencil, objective: &ObjectiveSpec| {
            find_best_uov(stencil, objective.as_objective(), &SearchConfig::default())
                .map_err(|e| e.to_string())
        };

        let slow_stencil =
            Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).expect("valid");
        let leader = {
            let cache = Arc::clone(&cache);
            let release = Arc::clone(&release);
            let stencil = slow_stencil.clone();
            std::thread::spawn(move || {
                cache.plan(&stencil, &ObjectiveSpec::ShortestVector, |s, o| {
                    // Hold the flight open until the flood is done.
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    solve(s, o)
                })
            })
        };
        // The leader has registered its flight once the miss is counted.
        while cache.stats().misses == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }

        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let stencil = slow_stencil.clone();
                std::thread::spawn(move || {
                    cache.plan(&stencil, &ObjectiveSpec::ShortestVector, solve)
                })
            })
            .collect();

        // Churn the 2-entry LRU with distinct problems while the flight
        // is open (k ≥ 2: k = 1 would be the leader's own problem and
        // join its flight instead of churning the LRU).
        for k in 2..=20i64 {
            let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid");
            let planned = cache
                .plan(&s, &ObjectiveSpec::ShortestVector, solve)
                .expect("flood plan");
            assert_eq!(planned.uov, ivec![1, k], "flood problem {k}");
        }
        release.store(true, Ordering::SeqCst);

        let lead = leader.join().expect("leader thread").expect("leader plan");
        assert_eq!(lead.uov, ivec![1, 1]);
        for f in followers {
            let got = f.join().expect("follower thread").expect("follower plan");
            assert_eq!(got.uov, lead.uov);
            assert_eq!(got.cost, lead.cost);
        }
        let stats = cache.stats();
        assert!(
            stats.coalesced >= 1,
            "followers must have coalesced onto the flight: {stats:?}"
        );
    }

    /// A request whose search would run for minutes (a PARTITION
    /// reduction with an unlimited deadline) wedges its worker; the
    /// watchdog must trip the request's cancellation token and the
    /// server must answer with a certified degraded plan instead of
    /// pinning the worker forever.
    #[test]
    fn watchdog_cancels_a_wedged_request() {
        let server = serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                wedge_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let inst = PartitionInstance::new(vec![5, 5, 4, 3, 2, 1]).expect("positive");
        let (stencil, _) = inst.reduce().expect("reduction");
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let resp = client
            .plan(&PlanRequest {
                stencil,
                objective: ObjectiveSpec::ShortestVector,
                deadline_ms: 0, // unlimited: only the watchdog can cut this
                flags: 0,
            })
            .expect("wedged request must still be answered");
        assert_ne!(
            resp.degradation,
            uov::service::DegradationCode::None,
            "a watchdog cut must be reported as degradation"
        );
        // The degraded answer still carries a server-side certificate.
        assert_ne!(resp.certificate_hash, 0);
        let stats = client.stats().expect("stats").server;
        assert!(
            stats.watchdog_cancels >= 1,
            "watchdog never fired: {stats:?}"
        );
        // The worker survived: the next (easy) request is served.
        let quick = client.plan(&fig1_request()).expect("post-wedge plan");
        assert_eq!(quick.uov, ivec![1, 1]);
        server.shutdown();
        server.join();
    }
}

// ---------------------------------------------------------------------
// Dense-engine fault injection: cancellation and worker panics must
// leave a resumable snapshot with a coherent PATHSET store, and
// near-i64::MAX coordinates must route to the spill tier instead of
// overflowing the dense window arithmetic.
// ---------------------------------------------------------------------

mod dense_faults {
    use super::*;
    use std::collections::HashMap;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicU64;
    use uov::core::checkpoint::{read_snapshot as read_snap, Snapshot};
    use uov::core::{ConeMemo, MaskTable, Window};
    use uov::isg::IterationDomain;

    /// PATHSET-store coherence of a decoded snapshot: every live frontier
    /// entry's offset must exist in the known map with a superset mask.
    /// An orphaned frontier entry (offset missing, or carrying bits the
    /// store never recorded) would expand from state the resume cannot
    /// reconstruct.
    fn assert_no_orphaned_pathset_entries(snap: &Snapshot, context: &str) {
        let known: HashMap<&IVec, u64> = snap.known.iter().map(|(w, m)| (w, *m)).collect();
        for (cost, w, mask) in &snap.frontier {
            let Some(&stored) = known.get(w) else {
                panic!("{context}: frontier entry {w} (cost {cost}) missing from known map");
            };
            assert_eq!(
                stored & mask,
                *mask,
                "{context}: frontier mask {mask:#x} at {w} not recorded in known mask {stored:#x}"
            );
        }
    }

    /// Budget cancellation mid-sweep: a token tripped while 8 workers are
    /// expanding leaves (a) a decodable snapshot with no orphaned PATHSET
    /// entries and (b) a state that resumes to the byte-identical final
    /// answer of an uninterrupted run.
    #[test]
    fn cancellation_mid_sweep_leaves_resumable_state() {
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .expect("valid");
        let reference =
            find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).expect("clean");
        let token = Arc::new(AtomicBool::new(false));
        let tripper = {
            let token = Arc::clone(&token);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(300));
                token.store(true, Ordering::Relaxed);
            })
        };
        let path = tmp_path("cancel_resumable");
        let config = SearchConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                interval: 1,
            }),
            ..budgeted_threaded(Budget::unlimited().with_cancel_token(Arc::clone(&token)), 8)
        };
        let cut = find_best_uov(&s, Objective::ShortestVector, &config)
            .expect("cancellation degrades, not errors");
        tripper.join().expect("tripper thread");
        assert_eq!(cut.checkpoint_error, None, "snapshot write failed");
        // Whether the token landed mid-sweep or after completion, the
        // final snapshot must exist, decode, and be internally coherent.
        let snap = read_snap(&path).expect("cancelled run must leave a valid snapshot");
        assert_no_orphaned_pathset_entries(&snap, "cancelled");
        let resumed = search_resume(
            &path,
            &s,
            Objective::ShortestVector,
            &SearchConfig::default(),
        )
        .expect("cancelled snapshot must resume");
        assert_eq!(
            (resumed.uov, resumed.cost),
            (reference.uov, reference.cost),
            "resume after cancellation diverged"
        );
        assert!(resumed.stats.complete);
        let _ = std::fs::remove_file(&path);
    }

    /// Deterministic mid-sweep variant: a node-cap cut at every depth from
    /// 1 to 30 leaves a coherent snapshot — the orphan check runs against
    /// snapshots whose frontiers are provably non-empty, not just the
    /// empty-frontier final states.
    #[test]
    fn node_cut_snapshots_never_orphan_pathset_entries() {
        let s = Stencil::new(vec![ivec![1, -2], ivec![1, 0], ivec![1, 2]]).expect("valid");
        let reference =
            find_best_uov(&s, Objective::ShortestVector, &SearchConfig::default()).expect("clean");
        let mut saw_live_frontier = false;
        for cut in 1u64..=30 {
            let path = tmp_path(&format!("orphan_cut_{cut}"));
            let config = SearchConfig {
                budget: Budget::unlimited().with_max_nodes(cut),
                checkpoint: Some(CheckpointConfig {
                    path: path.clone(),
                    interval: 1,
                }),
                ..SearchConfig::default()
            };
            let partial = find_best_uov(&s, Objective::ShortestVector, &config).expect("in range");
            assert_eq!(partial.checkpoint_error, None, "cut={cut}");
            let snap = read_snap(&path).expect("cut run must leave a valid snapshot");
            saw_live_frontier |= !snap.frontier.is_empty();
            assert_no_orphaned_pathset_entries(&snap, &format!("cut={cut}"));
            let resumed = search_resume(
                &path,
                &s,
                Objective::ShortestVector,
                &SearchConfig::default(),
            )
            .expect("cut snapshot must resume");
            assert_eq!(
                (resumed.uov.clone(), resumed.cost),
                (reference.uov.clone(), reference.cost),
                "cut={cut}"
            );
            let _ = std::fs::remove_file(&path);
        }
        assert!(
            saw_live_frontier,
            "every cut produced an empty frontier; the orphan check never ran on live state"
        );
    }

    /// An iteration domain that delegates to a [`RectDomain`] but panics
    /// on the Nth `num_points` call — `num_points` sits on the KnownBounds
    /// cost path, so the panic detonates inside a search worker mid-sweep.
    #[derive(Debug)]
    struct DetonatingDomain {
        inner: RectDomain,
        calls: AtomicU64,
        /// Panic on this call number; `u64::MAX` disarms.
        fuse: AtomicU64,
    }

    impl IterationDomain for DetonatingDomain {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn contains(&self, p: &IVec) -> bool {
            self.inner.contains(p)
        }
        fn extreme_points(&self) -> Vec<IVec> {
            self.inner.extreme_points()
        }
        fn points(&self) -> Box<dyn Iterator<Item = IVec> + '_> {
            self.inner.points()
        }
        fn num_points(&self) -> u64 {
            let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            if n == self.fuse.load(Ordering::Relaxed) {
                panic!("injected worker fault: num_points call {n}");
            }
            self.inner.num_points()
        }
    }

    /// A worker panic mid-sweep must not corrupt the on-disk state: the
    /// snapshot present after the panic decodes, carries no orphaned
    /// PATHSET entries, and resumes (with the fault disarmed) to the
    /// byte-identical answer of a never-faulted run.
    #[test]
    fn worker_panic_mid_sweep_leaves_resumable_state() {
        let s = Stencil::new(vec![
            ivec![1, -2],
            ivec![1, -1],
            ivec![1, 0],
            ivec![1, 1],
            ivec![1, 2],
        ])
        .expect("valid");
        let grid = RectDomain::grid(10, 10);
        let reference = find_best_uov(&s, Objective::KnownBounds(&grid), &SearchConfig::default())
            .expect("clean");

        // Phase 1: write a genuine mid-search snapshot with a node cap.
        let path = tmp_path("panic_resumable");
        let cut_config = SearchConfig {
            budget: Budget::unlimited().with_max_nodes(4),
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                interval: 1,
            }),
            ..SearchConfig::default()
        };
        let partial =
            find_best_uov(&s, Objective::KnownBounds(&grid), &cut_config).expect("in range");
        assert_eq!(partial.checkpoint_error, None);

        // Phase 2: resume on 8 workers through the detonating domain.
        // The fingerprint check passes (the wrapper delegates), then the
        // fuse blows inside a worker's cost evaluation.
        let domain = DetonatingDomain {
            inner: RectDomain::grid(10, 10),
            calls: AtomicU64::new(0),
            fuse: AtomicU64::new(10),
        };
        let resume_config = SearchConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                interval: 1,
            }),
            ..budgeted_threaded(Budget::unlimited(), 8)
        };
        // The engine's contract: a worker panic is reaped into a typed
        // `SearchError::WorkerPanic`, never an unwinding main thread. The
        // catch_unwind is belt-and-braces so a regression to propagation
        // still reaches the snapshot checks below instead of aborting.
        let blown = catch_unwind(AssertUnwindSafe(|| {
            find_best_uov(&s, Objective::KnownBounds(&domain), &resume_config)
        }));
        match blown {
            Ok(Err(SearchError::WorkerPanic { payload, .. })) => {
                assert!(
                    payload.contains("injected worker fault"),
                    "unexpected worker panic payload: {payload}"
                );
            }
            Ok(other) => panic!("fuse at call 10 never detonated: {other:?}"),
            Err(_) => {} // propagated panic: still a detonation
        }

        // Phase 3: whatever snapshot survived the detonation must be
        // valid, coherent, and resumable to the reference answer.
        let snap = read_snap(&path).expect("post-panic snapshot must decode");
        assert_no_orphaned_pathset_entries(&snap, "post-panic");
        domain.fuse.store(u64::MAX, Ordering::Relaxed);
        let resumed = search_resume(
            &path,
            &s,
            Objective::KnownBounds(&grid),
            &SearchConfig::default(),
        )
        .expect("post-panic snapshot must resume");
        assert_eq!(
            (resumed.uov, resumed.cost),
            (reference.uov, reference.cost),
            "resume after worker panic diverged"
        );
        assert!(resumed.stats.complete);
        let _ = std::fs::remove_file(&path);
    }

    /// Near-`i64::MAX` coordinates miss the dense window (the bounds
    /// check happens before any offset arithmetic) and land in the spill
    /// tier; merges and key round-trips there never overflow.
    #[test]
    fn extreme_coordinates_take_the_spill_tier_without_overflow() {
        let window = Window::from_bounds(&[-8, -8], &[8, 8], 1 << 16);
        assert!(!window.is_empty());
        // In-window sanity first.
        assert!(window.index(&[0, 0]).is_some());
        assert!(window.index(&[8, -8]).is_some());
        // Extremes: every one must miss cleanly, including values whose
        // offset subtraction would wrap i64.
        for w in [
            [i64::MAX, 0],
            [i64::MAX - 1, i64::MAX - 1],
            [0, i64::MIN],
            [i64::MIN + 1, i64::MAX],
            [9, 0],
        ] {
            assert_eq!(window.index(&w), None, "window admitted {w:?}");
        }

        let table = MaskTable::new(Window::from_bounds(&[-8, -8], &[8, 8], 1 << 16));
        let far = [i64::MAX - 1, i64::MIN + 2];
        let first = table.merge(&far, 0b101);
        assert!(first.is_new && first.grew);
        assert_eq!(first.merged, 0b101);
        let again = table.merge(&far, 0b010);
        assert!(!again.is_new && again.grew);
        assert_eq!(again.merged, 0b111);
        assert_eq!(again.key, first.key, "spill key must be stable");
        assert_eq!(table.probe(&far), Some(0b111));
        assert_eq!(table.key_of(&far), Some(first.key));
        assert_eq!(table.mask_of(first.key), Some(0b111));
        let mut coords = Vec::new();
        assert!(table.coords_of(first.key, &mut coords));
        assert_eq!(coords, far);
        // One spill node + one dense node both count toward the memo cap.
        table.merge(&[1, 1], 0b1);
        assert_eq!(table.len(), 2);

        // The cone memo's dense tier is likewise immune: indices only
        // come from Window::index, so extremes can never reach a page.
        let memo = ConeMemo::new(Window::from_bounds(&[-4, -4], &[4, 4], 1 << 12));
        let idx = memo.window().index(&[3, -2]).expect("in window");
        assert_eq!(memo.get(idx), None);
        assert!(memo.set(idx, true));
        assert_eq!(memo.get(idx), Some(true));
        assert_eq!(memo.window().index(&[i64::MAX - 1, 1]), None);
    }

    /// The full oracle at spill-tier coordinates: verdicts come back as
    /// `Ok` answers (never overflow panics), and they match closed-form
    /// ground truth for the quadrant cone. Non-members at near-`i64::MAX`
    /// magnitude are decided by the dual-cone functional cut — no cone
    /// walk — so even astronomically far points must answer cleanly;
    /// members use out-of-window (but walkable) coordinates.
    #[test]
    fn oracle_spill_tier_verdicts_do_not_overflow() {
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).expect("valid");
        let oracle = DoneOracle::new(&s);
        let unlimited = Budget::unlimited();
        let half = i64::MAX / 2;
        let far = 2_500i64; // window reach for this stencil is ±128
        for (w, expect) in [
            (ivec![far, far], true),
            (ivec![far, 0], true),
            (ivec![half, -1], false),
            (ivec![-1, half], false),
            (ivec![half, -half], false),
        ] {
            let got = oracle
                .in_done_budgeted(&w, &unlimited)
                .expect("spill-tier DONE query must not error");
            assert_eq!(got, expect, "DONE({w})");
        }
    }
}
