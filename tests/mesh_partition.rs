//! The partition differential: the mesh must return byte-identical
//! answers — and stay available — while the home shard is partitioned
//! away mid-flight and later heals.
//!
//! Every replica sits behind a seeded [`ChaosProxy`], whose partition
//! mode *holds* frames (delayed, ordered, never dropped — TCP
//! retransmission across a cut link) until healed. Three properties are
//! pinned per seed, at server search-thread counts 1 and 8:
//!
//! 1. **Warm failover** — a certified answer computed on the home shard
//!    is replicated to its ring successor; with the home partitioned
//!    away, the failover request is served from the neighbor's replica
//!    cache, byte-identical, and the hit is attributed to replication
//!    (`replica_hits ≥ 1` on the real servers).
//! 2. **Partitioned distributed solve** — an asymmetric partition
//!    (requests pass, responses held) makes the home execute a work
//!    unit whose completion surfaces only after heal. The lease fence
//!    re-dispatches the unit, the late completion is drained and
//!    discarded by epoch (`stale_epoch_rejections ≥ 1` on the
//!    coordinator), and the final `(uov, cost, certificate hash)` is
//!    byte-identical to a direct in-process search.
//! 3. **Server-side fence** — replaying a work-unit envelope under a
//!    superseded epoch is rejected with `StaleEpoch` and counted.
//!
//! Seeds come from `UOV_CHAOS_SEED`-style env (`UOV_MESH_SEED`) when
//! set; CI loops a fixed list over this schedule matrix.

use std::time::Duration;

use uov::core::certify::certify;
use uov::core::checkpoint::encode_snapshot;
use uov::core::search::{find_best_uov, search_unit, Objective, SearchConfig};
use uov::core::Budget;
use uov::isg::{ivec, IVec, Stencil};
use uov::service::{
    CacheOutcome, ChaosConfig, ChaosProxy, Client, ErrorCode, MeshClient, MeshConfig, MeshEvent,
    ObjectiveSpec, PlanRequest, ReplicaSet, ServerConfig, ServiceError, WorkUnitRequest,
};

/// Hard enough that a 4-node local prefix leaves a real frontier to
/// distribute, parameterized so different seeds get different homes.
fn problem(seed: u64) -> Stencil {
    let k = 2 + (seed % 5) as i64;
    Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid stencil")
}

fn local_truth(stencil: &Stencil) -> (IVec, u128, u64) {
    let result = find_best_uov(stencil, Objective::ShortestVector, &SearchConfig::default())
        .expect("local search");
    let cert = certify(stencil, &Objective::ShortestVector, &result).expect("local certification");
    (result.uov.clone(), result.cost, cert.transcript_hash)
}

fn request(stencil: &Stencil) -> PlanRequest {
    PlanRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    }
}

fn seeds() -> Vec<u64> {
    match std::env::var("UOV_MESH_SEED") {
        Ok(s) => vec![s.trim().parse().expect("UOV_MESH_SEED must be a u64")],
        Err(_) => vec![7, 1998],
    }
}

/// Mesh over the proxy endpoints. A 1 s lease keeps partition stalls
/// short; `failure_threshold: 1` opens a partitioned shard's breaker
/// after one lost lease so routed retries fail over immediately.
fn mesh_config(seed: u64, gossip: bool) -> MeshConfig {
    MeshConfig {
        local_prefix_nodes: 4,
        unit_node_budget: 12,
        attempt_timeout: Duration::from_secs(1),
        failure_threshold: 1,
        seed,
        gossip,
        ..MeshConfig::default()
    }
}

struct Fabric {
    set: ReplicaSet,
    proxies: Vec<ChaosProxy>,
    proxy_endpoints: Vec<String>,
}

impl Fabric {
    /// Three real replicas, each behind a clean (no fault rates) seeded
    /// chaos proxy; the mesh sees only the proxy endpoints.
    fn start(seed: u64, search_threads: usize) -> Fabric {
        let config = ServerConfig {
            workers: 2,
            search_threads,
            ..ServerConfig::default()
        };
        let set = ReplicaSet::start(3, config).expect("start replicas");
        let proxies: Vec<ChaosProxy> = set
            .endpoints()
            .iter()
            .map(|ep| {
                ChaosProxy::start(
                    ep,
                    ChaosConfig {
                        seed,
                        ..ChaosConfig::default()
                    },
                )
                .expect("start proxy")
            })
            .collect();
        let proxy_endpoints = proxies.iter().map(|p| p.endpoint().to_string()).collect();
        Fabric {
            set,
            proxies,
            proxy_endpoints,
        }
    }

    /// Sum a counter over the *real* servers (stats queried off-proxy,
    /// so a partition cannot hide them).
    fn sum_real_stats(&self, pick: impl Fn(&uov::service::StatsResponse) -> u64) -> u64 {
        self.set
            .endpoints()
            .iter()
            .map(|ep| {
                let mut c = Client::connect(ep).expect("connect real endpoint");
                pick(&c.stats().expect("stats"))
            })
            .sum()
    }
}

/// Phase 1: replication warms the ring successor; a symmetric partition
/// of the home shard forces the failover request onto the neighbor,
/// which serves the byte-identical answer from its replicated cache.
fn run_warm_failover(fabric: &Fabric, seed: u64) {
    let stencil = problem(seed);
    let (uov, cost, hash) = local_truth(&stencil);
    let req = request(&stencil);
    let mut mesh = MeshClient::new(&fabric.proxy_endpoints, mesh_config(seed, true)).expect("mesh");
    let home = mesh.ring().route(MeshClient::routing_key(&req));

    // Cold plan: computed on the home shard, replicated to its successor.
    let cold = mesh.plan(&req).expect("cold plan");
    assert_eq!(cold.uov, uov, "seed {seed}: cold UOV diverged");
    assert_eq!(cold.cost, cost, "seed {seed}: cold cost diverged");
    assert_eq!(
        cold.certificate_hash, hash,
        "seed {seed}: cold hash diverged"
    );
    assert!(
        mesh.stats().replicas_pushed >= 1,
        "seed {seed}: nothing was replicated: {:?}",
        mesh.stats()
    );

    // Partition the home away; the failover must land on a warm,
    // certified replica hit — not a cold solve, not a degraded answer.
    fabric.proxies[home].partition_symmetric();
    let warm = mesh
        .plan(&req)
        .expect("mesh must stay available under partition");
    fabric.proxies[home].heal();
    assert_eq!(
        warm.cache,
        CacheOutcome::Hit,
        "seed {seed}: failover missed"
    );
    assert_eq!(warm.uov, uov, "seed {seed}: failover UOV diverged");
    assert_eq!(warm.cost, cost, "seed {seed}: failover cost diverged");
    assert_eq!(
        warm.certificate_hash, hash,
        "seed {seed}: failover hash diverged"
    );
    assert!(
        mesh.stats().failovers >= 1,
        "seed {seed}: the partition caused no failover: {:?}",
        mesh.stats()
    );
    assert!(
        fabric.sum_real_stats(|s| s.cache.replica_hits) >= 1,
        "seed {seed}: the failover hit was not served from a replicated entry"
    );
    assert!(
        fabric.sum_real_stats(|s| s.cache.replicated_entries) >= 1,
        "seed {seed}: no server stored a replicated entry"
    );
}

/// Phase 2: distributed solve with the home shard behind an asymmetric
/// partition (requests pass, responses held) from round 0, healed at
/// round 1. The held completion surfaces post-heal as a stale-epoch
/// frame; the answer stays byte-identical to the direct search.
fn run_partitioned_distributed(fabric: &Fabric, seed: u64) {
    let stencil = problem(seed + 1);
    let (uov, cost, hash) = local_truth(&stencil);
    let req = request(&stencil);
    let mut mesh =
        MeshClient::new(&fabric.proxy_endpoints, mesh_config(seed, false)).expect("mesh");
    let home = mesh.ring().route(MeshClient::routing_key(&req));

    let proxies = &fabric.proxies;
    let resp = mesh
        .plan_distributed_hooked(&req, &mut |round| match round {
            0 => proxies[home].partition_asymmetric(false, true),
            1 => proxies[home].heal(),
            _ => {}
        })
        .expect("distributed search must survive the partition");
    // Belt and braces: never leave the fabric partitioned.
    proxies[home].heal();

    assert_eq!(resp.uov, uov, "seed {seed}: distributed UOV diverged");
    assert_eq!(resp.cost, cost, "seed {seed}: distributed cost diverged");
    assert_eq!(
        resp.certificate_hash, hash,
        "seed {seed}: distributed certificate hash diverged"
    );
    let stats = mesh.stats();
    assert!(
        stats.redispatches >= 1,
        "seed {seed}: the partition caused no re-dispatch: {stats:?}"
    );
    assert!(
        stats.stale_epoch_rejections >= 1,
        "seed {seed}: the healed partition surfaced no stale completion: {stats:?}"
    );
    let events = mesh.take_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, MeshEvent::StaleCompletionDiscarded { .. })),
        "seed {seed}: no stale-completion event was logged"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, MeshEvent::RoundMerged { round, .. } if *round >= 1)),
        "seed {seed}: search finished in one round — budgets too large for the schedule"
    );
}

/// Phase 3: the server-side fence. Replay a work-unit envelope under a
/// superseded epoch straight at a real replica: rejected, typed, counted.
fn run_stale_replay(fabric: &Fabric, seed: u64) {
    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![2, 3]]).expect("valid stencil");
    let prefix = SearchConfig {
        budget: Budget::unlimited().with_max_nodes(2),
        threads: 1,
        ..SearchConfig::default()
    };
    let (_, mut snap) =
        search_unit(None, &stencil, Objective::ShortestVector, &prefix).expect("prefix search");
    let mut raw = Client::connect(&fabric.set.endpoints()[0]).expect("connect real endpoint");
    let mk = |snap: &uov::core::checkpoint::Snapshot| WorkUnitRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        node_budget: 8,
        bound_hint: None,
        snapshot: encode_snapshot(snap).expect("encode"),
    };

    snap.epoch = 9_000_005;
    raw.workunit(&mk(&snap)).expect("fresh lease accepted");
    snap.epoch = 9_000_003;
    let err = raw
        .workunit(&mk(&snap))
        .expect_err("superseded lease must be fenced");
    assert!(
        matches!(
            err,
            ServiceError::Rejected {
                code: ErrorCode::StaleEpoch,
                ..
            }
        ),
        "seed {seed}: wrong rejection for a superseded lease: {err:?}"
    );
    assert!(
        fabric.sum_real_stats(|s| s.server.stale_epoch_rejections) >= 1,
        "seed {seed}: the fence fired but was not counted"
    );
}

/// The acceptance matrix: every seed, at server search-thread counts 1
/// and 8, runs the full partition schedule — warm failover from a
/// neighbor replica, a partitioned-and-healed distributed solve, and a
/// stale-epoch replay — with byte-identity and availability throughout.
#[test]
fn mesh_survives_partition_and_heal_byte_identically() {
    for seed in seeds() {
        for threads in [1usize, 8] {
            let fabric = Fabric::start(seed, threads);
            run_warm_failover(&fabric, seed);
            run_partitioned_distributed(&fabric, seed);
            run_stale_replay(&fabric, seed);
            let Fabric { set, proxies, .. } = fabric;
            for p in proxies {
                p.stop();
            }
            set.shutdown_all();
        }
    }
}
