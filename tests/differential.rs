//! Differential suite: the parallel branch-and-bound against its two
//! independent references.
//!
//! For randomized stencils the engine must return the **byte-identical**
//! `(UOV, cost)` triple regardless of worker count — the determinism
//! contract of `uov_core::search` — and must agree with the brute-force
//! `exhaustive_best_uov` enumeration wherever the search radius provably
//! contains the optimum.
//!
//! The stencil generator is seeded from the `UOV_TEST_SEED` environment
//! variable (default below) so CI can sweep seeds to vary both the tested
//! stencils and, indirectly, the thread interleavings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uov::core::checkpoint::CheckpointConfig;
use uov::core::search::{
    exhaustive_best_uov, find_best_uov, search_resume, Objective, SearchConfig,
};
use uov::core::Budget;
use uov::isg::{IVec, RectDomain, Stencil};

fn seed_from_env() -> u64 {
    std::env::var("UOV_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0D1F)
}

fn with_threads(threads: usize) -> SearchConfig {
    SearchConfig {
        threads,
        ..SearchConfig::default()
    }
}

/// Thread counts under test: sequential, a couple of small counts that
/// exercise stealing, and whatever the host actually has.
fn thread_counts() -> Vec<usize> {
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![2, 4, ncores.max(2)];
    counts.dedup();
    counts
}

/// A random valid stencil: `n` lexicographically positive vectors with
/// coordinates in `[-bound, bound]`.
fn random_stencil(rng: &mut StdRng, dim: usize, bound: i64, max_vecs: usize) -> Stencil {
    loop {
        let n = rng.gen_range(1..=max_vecs);
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            let v = loop {
                let cand: Vec<i64> = (0..dim).map(|_| rng.gen_range(-bound..=bound)).collect();
                let cand = IVec::from(cand);
                if cand.is_lex_positive() {
                    break cand;
                }
            };
            vs.push(v);
        }
        if let Ok(s) = Stencil::new(vs) {
            return s;
        }
    }
}

/// A search radius guaranteed to contain the shortest-vector optimum:
/// `‖w*‖₂ ≤ ‖Σvᵢ‖₂ ≤ Σ|initialᵢ|`, so the ∞-norm box of that radius
/// covers every candidate the branch-and-bound could prefer.
fn covering_radius(s: &Stencil) -> i64 {
    let initial = s.sum();
    (0..s.dim()).map(|i| initial[i].abs()).sum::<i64>() + 1
}

/// The core deliverable: `threads = N` is byte-identical to `threads = 1`
/// on randomized stencils, for both the UOV and its cost.
#[test]
fn parallel_engine_matches_sequential_on_random_stencils() {
    let mut rng = StdRng::seed_from_u64(seed_from_env());
    for case in 0..48 {
        let dim = rng.gen_range(1usize..=3);
        let s = random_stencil(&mut rng, dim, 2, 4);
        let seq = find_best_uov(&s, Objective::ShortestVector, &with_threads(1))
            .expect("small coordinates cannot overflow");
        for threads in thread_counts() {
            let par = find_best_uov(&s, Objective::ShortestVector, &with_threads(threads))
                .expect("small coordinates cannot overflow");
            assert_eq!(
                par.uov, seq.uov,
                "case {case}: UOV diverged at threads={threads} for {s:?}"
            );
            assert_eq!(
                par.cost, seq.cost,
                "case {case}: cost diverged at threads={threads} for {s:?}"
            );
            assert_eq!(par.stats.complete, seq.stats.complete);
        }
    }
}

/// Both engines against brute force: enumerate every UOV in a box known
/// to contain the optimum and take the key-minimum. The branch-and-bound
/// (sequential *and* parallel) must land on the identical vector.
#[test]
fn both_engines_match_exhaustive_within_covering_radius() {
    let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xE8AA);
    for case in 0..16 {
        let s = random_stencil(&mut rng, 2, 2, 4);
        let radius = covering_radius(&s);
        let ex = exhaustive_best_uov(&s, Objective::ShortestVector, radius)
            .expect("the initial UOV is inside the covering radius");
        for threads in [1usize, 4] {
            let bb = find_best_uov(&s, Objective::ShortestVector, &with_threads(threads))
                .expect("small coordinates cannot overflow");
            assert_eq!(
                bb.cost, ex.cost,
                "case {case}: cost differs from exhaustive at threads={threads} for {s:?}"
            );
            assert_eq!(
                bb.uov, ex.uov,
                "case {case}: tie-break differs from exhaustive at threads={threads} for {s:?}"
            );
        }
    }
}

/// The storage objective (the paper's actual cost) under the same
/// differential: identical storage-class counts at every thread count.
#[test]
fn known_bounds_storage_counts_are_thread_independent() {
    let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0x0553);
    let grid = RectDomain::grid(6, 9);
    for case in 0..12 {
        let s = random_stencil(&mut rng, 2, 2, 4);
        let seq = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(1))
            .expect("small coordinates cannot overflow");
        for threads in thread_counts() {
            let par = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(threads))
                .expect("small coordinates cannot overflow");
            assert_eq!(
                (par.uov.clone(), par.cost),
                (seq.uov.clone(), seq.cost),
                "case {case}: storage plan diverged at threads={threads} for {s:?}"
            );
        }
    }
}

/// Repeated parallel runs on one instance: the OS scheduler is the only
/// source of variation, and it must not be observable.
#[test]
fn repeated_parallel_runs_are_byte_identical() {
    let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0x9E9E);
    let s = random_stencil(&mut rng, 2, 3, 5);
    let reference =
        find_best_uov(&s, Objective::ShortestVector, &with_threads(1)).expect("in range");
    for round in 0..10 {
        let par = find_best_uov(&s, Objective::ShortestVector, &with_threads(4)).expect("in range");
        assert_eq!(par.uov, reference.uov, "round {round} for {s:?}");
        assert_eq!(par.cost, reference.cost, "round {round} for {s:?}");
    }
}

/// Crash-safe resume under the same differential contract: interrupt a
/// seeded search after a random number of node charges, resume it from
/// the snapshot, and the final `(uov, cost)` must be **byte-identical**
/// to the uninterrupted run — sequential and 8-way parallel alike.
#[test]
fn interrupted_then_resumed_search_is_byte_identical() {
    let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xC4C4);
    for case in 0..12 {
        let dim = rng.gen_range(1usize..=3);
        let s = random_stencil(&mut rng, dim, 2, 4);
        let cut = rng.gen_range(1u64..40);
        for threads in [1usize, 8] {
            let reference = find_best_uov(&s, Objective::ShortestVector, &with_threads(threads))
                .expect("small coordinates cannot overflow");
            let mut path = std::env::temp_dir();
            path.push(format!(
                "uov_diff_resume_{}_{case}_{threads}.ckpt",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            let interrupted = SearchConfig {
                budget: Budget::unlimited().with_max_nodes(cut),
                checkpoint: Some(CheckpointConfig {
                    path: path.clone(),
                    interval: 1,
                }),
                ..with_threads(threads)
            };
            let partial = find_best_uov(&s, Objective::ShortestVector, &interrupted)
                .expect("a node cap never turns a valid instance into an error");
            assert_eq!(
                partial.checkpoint_error, None,
                "case {case}: snapshot write failed for {s:?}"
            );
            let resumed =
                search_resume(&path, &s, Objective::ShortestVector, &with_threads(threads))
                    .expect("a clean snapshot must resume");
            assert_eq!(
                (resumed.uov.clone(), resumed.cost),
                (reference.uov.clone(), reference.cost),
                "case {case}: resume diverged at threads={threads} cut={cut} for {s:?}"
            );
            assert!(resumed.stats.complete, "case {case}");
            assert!(resumed.degradation.is_none(), "case {case}");
            let _ = std::fs::remove_file(&path);
        }
    }
}

// ---------------------------------------------------------------------
// Planning service vs direct search: a service query, a direct
// `find_best_uov` (the same engine `driver::plan` runs per statement),
// and a cache-hit replay must all return the byte-identical
// `(uov, cost)` — including when the resubmission is coordinate-permuted
// and is answered through the canonicalizing cache.
// ---------------------------------------------------------------------

mod service_vs_direct {
    use super::{random_stencil, seed_from_env, with_threads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uov::core::search::{find_best_uov, Objective};
    use uov::isg::{IVec, RectDomain, Stencil};
    use uov::service::{
        serve, CacheOutcome, Client, ObjectiveSpec, PlanRequest, ServerConfig, ServerHandle,
    };

    fn test_server() -> ServerHandle {
        serve("127.0.0.1:0", ServerConfig::default()).expect("bind test server")
    }

    fn query(
        client: &mut Client,
        stencil: &Stencil,
        objective: ObjectiveSpec,
    ) -> (IVec, u128, u64, CacheOutcome) {
        let resp = client
            .plan(&PlanRequest {
                stencil: stencil.clone(),
                objective,
                deadline_ms: 0,
                flags: 0,
            })
            .expect("service must answer a valid request");
        assert_eq!(
            resp.degradation,
            uov::service::DegradationCode::None,
            "an unlimited-deadline request must not degrade"
        );
        (resp.uov, resp.cost, resp.certificate_hash, resp.cache)
    }

    /// Every coordinate permutation of `s` that keeps all vectors
    /// lexicographically positive, as whole stencils, with its σ.
    fn valid_permutations(s: &Stencil) -> Vec<(Vec<usize>, Stencil)> {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for slot in 0..n {
                    let mut q: Vec<usize> = p
                        .iter()
                        .map(|&x| if x >= slot { x + 1 } else { x })
                        .collect();
                    q.insert(0, slot);
                    out.push(q);
                }
            }
            out
        }
        let mut out = Vec::new();
        for perm in perms(s.dim()) {
            let vectors: Vec<IVec> = s
                .iter()
                .map(|v| IVec::from(perm.iter().map(|&k| v[k]).collect::<Vec<i64>>()))
                .collect();
            if !vectors.iter().all(IVec::is_lex_positive) {
                continue;
            }
            if let Ok(t) = Stencil::new(vectors) {
                out.push((perm, t));
            }
        }
        out
    }

    /// Cold service query ≡ direct search ≡ cache-hit replay, on seeded
    /// random stencils — the `(uov, cost)` triple byte-identical across
    /// all three, and the replay certificate-identical to the cold solve.
    #[test]
    fn service_query_equals_direct_search_equals_replay() {
        let server = test_server();
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0x5E4C);
        for case in 0..24 {
            let dim = 1 + (case % 3);
            let s = random_stencil(&mut rng, dim, 2, 4);
            let direct = find_best_uov(&s, Objective::ShortestVector, &with_threads(1))
                .expect("small coordinates cannot overflow");
            let (cold_uov, cold_cost, cold_cert, _) =
                query(&mut client, &s, ObjectiveSpec::ShortestVector);
            let (re_uov, re_cost, re_cert, re_cache) =
                query(&mut client, &s, ObjectiveSpec::ShortestVector);
            assert_eq!(
                (cold_uov.clone(), cold_cost),
                (direct.uov.clone(), direct.cost),
                "case {case}: service diverged from direct search for {s:?}"
            );
            assert_eq!(
                (re_uov, re_cost),
                (cold_uov, cold_cost),
                "case {case}: replay diverged for {s:?}"
            );
            assert_eq!(re_cache, CacheOutcome::Hit, "case {case}: replay must hit");
            assert_eq!(
                re_cert, cold_cert,
                "case {case}: replay certificate differs from cold solve for {s:?}"
            );
        }
        server.shutdown();
        let stats = server.join();
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.protocol_errors, 0);
    }

    /// Coordinate-permuted resubmission: the canonicalizing cache answers
    /// σ(problem) from the entry the unpermuted problem populated, and
    /// the answer must be byte-identical to a *direct search of the
    /// permuted problem* — the cache may never be observable.
    #[test]
    fn permuted_resubmission_is_byte_identical_to_its_own_direct_search() {
        let server = test_server();
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xCA70);
        for case in 0..12 {
            let dim = 2 + (case % 2);
            let s = random_stencil(&mut rng, dim, 2, 4);
            // Populate the canonical entry.
            let _ = query(&mut client, &s, ObjectiveSpec::ShortestVector);
            for (perm, permuted) in valid_permutations(&s) {
                let direct = find_best_uov(&permuted, Objective::ShortestVector, &with_threads(1))
                    .expect("small coordinates cannot overflow");
                let (uov, cost, _, cache) =
                    query(&mut client, &permuted, ObjectiveSpec::ShortestVector);
                assert_eq!(
                    (uov, cost),
                    (direct.uov.clone(), direct.cost),
                    "case {case}: σ={perm:?} answer diverged from direct search for {s:?}"
                );
                assert_eq!(
                    cache,
                    CacheOutcome::Hit,
                    "case {case}: σ={perm:?} must be answered from the canonical entry"
                );
            }
        }
        server.shutdown();
        assert_eq!(server.join().panics, 0);
    }

    /// The same permutation contract under the paper's storage objective:
    /// the domain permutes alongside the stencil, and the permuted query
    /// still matches its own direct search byte-for-byte.
    #[test]
    fn permuted_known_bounds_queries_match_direct_search() {
        let server = test_server();
        let mut client = Client::connect(server.endpoint()).expect("connect");
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xD073);
        let lo = IVec::from(vec![0, 0]);
        let hi = IVec::from(vec![5, 8]); // non-square: permutation is observable
        for case in 0..8 {
            let s = random_stencil(&mut rng, 2, 2, 4);
            let base_dom = RectDomain::new(lo.clone(), hi.clone());
            let _ = query(&mut client, &s, ObjectiveSpec::KnownBounds(base_dom));
            for (perm, permuted) in valid_permutations(&s) {
                let plo = IVec::from(perm.iter().map(|&k| lo[k]).collect::<Vec<i64>>());
                let phi = IVec::from(perm.iter().map(|&k| hi[k]).collect::<Vec<i64>>());
                let pdom = RectDomain::new(plo, phi);
                let direct =
                    find_best_uov(&permuted, Objective::KnownBounds(&pdom), &with_threads(1))
                        .expect("small coordinates cannot overflow");
                let (uov, cost, _, _) =
                    query(&mut client, &permuted, ObjectiveSpec::KnownBounds(pdom));
                assert_eq!(
                    (uov, cost),
                    (direct.uov.clone(), direct.cost),
                    "case {case}: σ={perm:?} storage answer diverged for {s:?}"
                );
            }
        }
        server.shutdown();
        assert_eq!(server.join().panics, 0);
    }
}

/// Resuming a *completed* search is a no-op that returns the same answer:
/// the final snapshot of a finished run has an empty frontier, and
/// resuming it must simply re-emit the incumbent.
#[test]
fn resuming_a_completed_search_returns_the_same_answer() {
    let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0x1D1D);
    let s = random_stencil(&mut rng, 2, 2, 4);
    for threads in [1usize, 8] {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "uov_diff_complete_{}_{threads}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = SearchConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                interval: 4,
            }),
            ..with_threads(threads)
        };
        let done = find_best_uov(&s, Objective::ShortestVector, &config).expect("in range");
        assert_eq!(done.checkpoint_error, None);
        let resumed = search_resume(&path, &s, Objective::ShortestVector, &with_threads(threads))
            .expect("a final snapshot must resume");
        assert_eq!((resumed.uov, resumed.cost), (done.uov, done.cost));
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Kernel zoo: the paper's named stencils, pinned as fixed instances so
// the dense engine is compared against the old engine's committed
// answers (uov, cost) *and* against itself across thread counts down to
// the certificate transcript hash — the strongest byte-identity the
// repo can express.
// ---------------------------------------------------------------------

mod kernel_zoo {
    use super::*;
    use uov::core::certify::certify;
    use uov::isg::ivec;

    /// Named stencils with their known-optimal shortest UOVs. The
    /// expected vectors are the old engine's answers (each is also easy
    /// to verify by hand against §3 of the paper); a dense-engine
    /// divergence here is a correctness bug, not a perf artifact.
    fn zoo() -> Vec<(&'static str, Stencil, IVec, u128)> {
        vec![
            (
                "fig1-pipeline",
                Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap(),
                ivec![1, 1],
                2,
            ),
            (
                "stencil5",
                Stencil::new(vec![
                    ivec![1, -2],
                    ivec![1, -1],
                    ivec![1, 0],
                    ivec![1, 1],
                    ivec![1, 2],
                ])
                .unwrap(),
                ivec![2, 0],
                4,
            ),
            (
                "jacobi-1d",
                Stencil::new(vec![ivec![1, -1], ivec![1, 0], ivec![1, 1]]).unwrap(),
                ivec![2, 0],
                4,
            ),
            (
                "psm-h",
                Stencil::new(vec![ivec![1, 1], ivec![1, 0], ivec![0, 1]]).unwrap(),
                ivec![1, 1],
                2,
            ),
            (
                "semigroup-23",
                Stencil::new(vec![ivec![2], ivec![3]]).unwrap(),
                ivec![5],
                25,
            ),
            (
                "skewed-wavefront",
                Stencil::new(vec![ivec![1, 1], ivec![2, 1]]).unwrap(),
                ivec![3, 2],
                13,
            ),
        ]
    }

    /// Every zoo kernel solves to its pinned `(uov, cost)` at thread
    /// counts 1 and 8, and the *certificates* — including the transcript
    /// hash binding problem fingerprint, vector, cost and witness counts
    /// — are byte-identical across thread counts.
    #[test]
    fn zoo_certificates_are_thread_independent() {
        for (name, s, expect_uov, expect_cost) in zoo() {
            let seq = find_best_uov(&s, Objective::ShortestVector, &with_threads(1))
                .unwrap_or_else(|e| panic!("{name}: sequential search failed: {e}"));
            assert_eq!(
                seq.uov, expect_uov,
                "{name}: uov drifted from pinned answer"
            );
            assert_eq!(seq.cost, expect_cost, "{name}: cost drifted");
            let seq_cert = certify(&s, &Objective::ShortestVector, &seq)
                .unwrap_or_else(|e| panic!("{name}: sequential result failed certify: {e}"));
            let par = find_best_uov(&s, Objective::ShortestVector, &with_threads(8))
                .unwrap_or_else(|e| panic!("{name}: parallel search failed: {e}"));
            let par_cert = certify(&s, &Objective::ShortestVector, &par)
                .unwrap_or_else(|e| panic!("{name}: parallel result failed certify: {e}"));
            assert_eq!(
                (par.uov, par.cost),
                (seq.uov, seq.cost),
                "{name}: engines disagree"
            );
            assert_eq!(
                par_cert.transcript_hash, seq_cert.transcript_hash,
                "{name}: certificate transcripts diverge across thread counts"
            );
        }
    }

    /// Same contract under the KnownBounds objective, where cost is the
    /// storage-class count over a concrete iteration domain.
    #[test]
    fn zoo_known_bounds_certificates_are_thread_independent() {
        let grid = RectDomain::grid(12, 12);
        for (name, s, _, _) in zoo() {
            if s.dim() != 2 {
                continue;
            }
            let seq = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(1))
                .unwrap_or_else(|e| panic!("{name}: sequential KB search failed: {e}"));
            let seq_cert = certify(&s, &Objective::KnownBounds(&grid), &seq)
                .unwrap_or_else(|e| panic!("{name}: KB certify failed: {e}"));
            let par = find_best_uov(&s, Objective::KnownBounds(&grid), &with_threads(8))
                .unwrap_or_else(|e| panic!("{name}: parallel KB search failed: {e}"));
            let par_cert = certify(&s, &Objective::KnownBounds(&grid), &par)
                .unwrap_or_else(|e| panic!("{name}: parallel KB certify failed: {e}"));
            assert_eq!((par.uov, par.cost), (seq.uov, seq.cost), "{name}");
            assert_eq!(par_cert.transcript_hash, seq_cert.transcript_hash, "{name}");
        }
    }

    /// Randomized extension of the zoo: on seeded random stencils the
    /// certificate transcript hash — not just `(uov, cost)` — matches
    /// between the sequential and 8-way engines.
    #[test]
    fn random_stencil_certificates_are_thread_independent() {
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xCE27);
        for case in 0..16 {
            let dim = rng.gen_range(1usize..=3);
            let s = random_stencil(&mut rng, dim, 3, 5);
            let seq = find_best_uov(&s, Objective::ShortestVector, &with_threads(1))
                .expect("small coordinates cannot overflow");
            let par = find_best_uov(&s, Objective::ShortestVector, &with_threads(8))
                .expect("small coordinates cannot overflow");
            let a = certify(&s, &Objective::ShortestVector, &seq).expect("seq certify");
            let b = certify(&s, &Objective::ShortestVector, &par).expect("par certify");
            assert_eq!(
                a.transcript_hash, b.transcript_hash,
                "case {case}: transcripts diverge for {s:?}"
            );
        }
    }

    /// UOVCKPT1 cross-engine compatibility: a snapshot cut mid-search by
    /// the sequential engine resumes under the 8-way engine (and vice
    /// versa) to the byte-identical final answer. Checkpoints are an
    /// on-disk interchange format, not an engine-private cache.
    #[test]
    fn checkpoints_are_cross_engine_compatible() {
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xCC07);
        for case in 0..10 {
            let dim = rng.gen_range(1usize..=3);
            let s = random_stencil(&mut rng, dim, 2, 4);
            let cut = rng.gen_range(1u64..40);
            let reference = find_best_uov(&s, Objective::ShortestVector, &with_threads(1))
                .expect("small coordinates cannot overflow");
            for (writer, resumer) in [(1usize, 8usize), (8, 1)] {
                let mut path = std::env::temp_dir();
                path.push(format!(
                    "uov_diff_xengine_{}_{case}_{writer}_{resumer}.ckpt",
                    std::process::id()
                ));
                let _ = std::fs::remove_file(&path);
                let interrupted = SearchConfig {
                    budget: Budget::unlimited().with_max_nodes(cut),
                    checkpoint: Some(CheckpointConfig {
                        path: path.clone(),
                        interval: 1,
                    }),
                    ..with_threads(writer)
                };
                let partial = find_best_uov(&s, Objective::ShortestVector, &interrupted)
                    .expect("a node cap never turns a valid instance into an error");
                assert_eq!(
                    partial.checkpoint_error, None,
                    "case {case}: writer={writer} snapshot failed for {s:?}"
                );
                let resumed =
                    search_resume(&path, &s, Objective::ShortestVector, &with_threads(resumer))
                        .expect("a clean snapshot must resume on the other engine");
                assert_eq!(
                    (resumed.uov, resumed.cost),
                    (reference.uov.clone(), reference.cost),
                    "case {case}: writer={writer} resumer={resumer} diverged for {s:?}"
                );
                assert!(resumed.stats.complete, "case {case}");
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}
