//! The chaos differential: the resilient fabric under seeded faults must
//! be *invisible* in the answers.
//!
//! A [`ResilientClient`] runs a fixed request schedule against three
//! replicas, each behind a [`ChaosProxy`] injecting connection resets,
//! half-open stalls, latency spikes, frame truncation, and payload
//! bit-flips — while replicas are killed and restarted mid-schedule. The
//! contract:
//!
//! 1. **Completion**: every request completes despite the faults.
//! 2. **Byte-identity**: each `(uov, cost, transcript hash)` triple is
//!    identical to a direct in-process `find_best_uov` + `certify` run —
//!    the fabric may retry, fail over, and reconnect, but it may never
//!    change an answer.
//! 3. **Determinism**: the fabric's decision log (attempts, failures,
//!    backoffs, breaker transitions) replays identically for a seed.
//! 4. **Warm restarts**: a graceful drain persists the plan cache; the
//!    restarted replica's first request for a cached problem is a `Hit`
//!    with the same certificate.
//!
//! Seeds come from `UOV_CHAOS_SEED` when set (CI loops a fixed list), or
//! a built-in pair otherwise. Fault rates are chosen so outcome classes
//! are timing-robust: stalls are far longer than the attempt timeout,
//! delays far shorter.

use std::time::Duration;

use uov::core::certify::certify;
use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::isg::{ivec, IVec, Stencil};
use uov::service::{
    CacheOutcome, ChaosConfig, ChaosProxy, Client, FabricEvent, MeshClient, MeshConfig, MeshEvent,
    ObjectiveSpec, PlanRequest, ReplicaSet, ResilientClient, ResilientConfig, ServerConfig,
};

/// The request schedule's problems: small enough that every search
/// finishes in milliseconds, distinct enough to exercise the cache.
fn problems() -> Vec<Stencil> {
    (1..=6i64)
        .map(|k| Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid"))
        .collect()
}

/// What a direct, in-process solve of `stencil` yields: the ground truth
/// every fabric answer must match byte-for-byte.
fn local_truth(stencil: &Stencil) -> (IVec, u128, u64) {
    let result = find_best_uov(stencil, Objective::ShortestVector, &SearchConfig::default())
        .expect("local search");
    let cert = certify(stencil, &Objective::ShortestVector, &result).expect("local certification");
    (result.uov.clone(), result.cost, cert.transcript_hash)
}

fn request(stencil: &Stencil) -> PlanRequest {
    PlanRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    }
}

/// Seeds under test: `UOV_CHAOS_SEED` pins one (the CI smoke loops a
/// fixed list through it), otherwise a built-in pair.
fn seeds() -> Vec<u64> {
    match std::env::var("UOV_CHAOS_SEED") {
        Ok(s) => vec![s.trim().parse().expect("UOV_CHAOS_SEED must be a u64")],
        Err(_) => vec![7, 1998],
    }
}

fn chaos_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        reset_per_mille: 50,
        stall_per_mille: 15,
        truncate_per_mille: 40,
        flip_per_mille: 50,
        delay_per_mille: 60,
        // Stall ≫ attempt timeout, delay ≪ attempt timeout: outcome
        // classes stay deterministic on any plausible machine.
        stall_ms: 2_500,
        delay_ms: 3,
    }
}

fn fabric_config(seed: u64) -> ResilientConfig {
    ResilientConfig {
        attempt_timeout: Duration::from_millis(400),
        max_attempts: 40,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        seed,
        failure_threshold: 3,
        cooldown: 4,
        hedge_after: None,
        hedge_verify: false,
    }
}

/// Run the full kill/restart schedule under chaos at one seed and thread
/// count; assert completion and byte-identity; return the fabric's
/// decision log.
fn run_chaos_schedule(seed: u64, search_threads: usize) -> Vec<FabricEvent> {
    let config = ServerConfig {
        workers: 2,
        search_threads,
        ..ServerConfig::default()
    };
    let mut set = ReplicaSet::start(3, config).expect("start replicas");
    let proxies: Vec<ChaosProxy> = set
        .endpoints()
        .iter()
        .map(|ep| ChaosProxy::start(ep, chaos_config(seed)).expect("start proxy"))
        .collect();
    let endpoints: Vec<String> = proxies.iter().map(|p| p.endpoint().to_string()).collect();
    let mut fabric = ResilientClient::new(&endpoints, fabric_config(seed)).expect("fabric");

    let problems = problems();
    let truths: Vec<_> = problems.iter().map(local_truth).collect();

    // Two passes over the problem set (the second exercises server-side
    // caches), with two kill/restart cycles woven between requests.
    let schedule: Vec<usize> = (0..problems.len()).chain(0..problems.len()).collect();
    for (step, &p) in schedule.iter().enumerate() {
        match step {
            4 => {
                set.kill(0).expect("replica 0 was up");
            }
            6 => set.restart(0).expect("restart replica 0"),
            8 => {
                set.kill(1).expect("replica 1 was up");
            }
            10 => set.restart(1).expect("restart replica 1"),
            _ => {}
        }
        let resp = fabric
            .plan(&request(&problems[p]))
            .unwrap_or_else(|e| panic!("step {step} (problem {p}) failed under chaos: {e}"));
        let (uov, cost, hash) = &truths[p];
        assert_eq!(&resp.uov, uov, "step {step}: UOV diverged");
        assert_eq!(&resp.cost, cost, "step {step}: cost diverged");
        assert_eq!(
            &resp.certificate_hash, hash,
            "step {step}: certificate hash diverged"
        );
    }

    for stats in set.shutdown_all().into_iter().flatten() {
        assert_eq!(stats.panics, 0, "a replica worker panicked under chaos");
    }
    for proxy in proxies {
        proxy.stop();
    }
    fabric.take_events()
}

/// The acceptance differential: full completion and byte-identity under
/// chaos, at every seed, at thread counts 1 and 8.
#[test]
fn chaos_differential_is_byte_identical_to_local_search() {
    for seed in seeds() {
        for threads in [1usize, 8] {
            let events = run_chaos_schedule(seed, threads);
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, FabricEvent::Failure { .. })),
                "seed {seed}: chaos injected no faults — rates too low to test anything"
            );
        }
    }
}

/// Replaying the same seed yields the same decision log, event for
/// event: retries, backoff intervals, breaker transitions, failover
/// order. Timing noise must not leak into decisions.
#[test]
fn chaos_decision_log_replays_identically_for_a_seed() {
    let seed = seeds()[0];
    let first = run_chaos_schedule(seed, 1);
    let second = run_chaos_schedule(seed, 1);
    assert_eq!(
        first, second,
        "seed {seed}: two runs of the same seed diverged"
    );
}

/// Hedged mode under the same chaos: still completes, still
/// byte-identical (the hedge can only change *which replica* answers,
/// never the answer).
#[test]
fn chaos_with_hedging_still_completes_and_agrees() {
    let seed = seeds()[0];
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let mut set = ReplicaSet::start(3, config).expect("start replicas");
    let proxies: Vec<ChaosProxy> = set
        .endpoints()
        .iter()
        .map(|ep| ChaosProxy::start(ep, chaos_config(seed)).expect("start proxy"))
        .collect();
    let endpoints: Vec<String> = proxies.iter().map(|p| p.endpoint().to_string()).collect();
    let mut fabric = ResilientClient::new(
        &endpoints,
        ResilientConfig {
            hedge_after: Some(Duration::from_millis(60)),
            ..fabric_config(seed)
        },
    )
    .expect("fabric");

    let problems = problems();
    for (i, stencil) in problems.iter().enumerate() {
        if i == 2 {
            set.kill(0).expect("replica 0 was up");
        }
        let (uov, cost, hash) = local_truth(stencil);
        let resp = fabric
            .plan(&request(stencil))
            .unwrap_or_else(|e| panic!("hedged request {i} failed: {e}"));
        assert_eq!(resp.uov, uov);
        assert_eq!(resp.cost, cost);
        assert_eq!(resp.certificate_hash, hash);
    }
    set.shutdown_all();
    for proxy in proxies {
        proxy.stop();
    }
}

/// Warm-cache restarts: a graceful drain persists the plan cache; the
/// restarted replica reloads it, answers a cached problem as a first
/// request `Hit`, and the certificate is unchanged.
#[test]
fn warm_cache_survives_a_graceful_restart() {
    let snapshot = std::env::temp_dir().join(format!("uov_chaos_warm_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let config = ServerConfig {
        warm_cache: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let mut set = ReplicaSet::start(1, config).expect("start replica");
    let endpoint = set.endpoints()[0].clone();
    let stencil = problems().remove(0);

    let mut client = Client::connect(&endpoint).expect("connect");
    let cold = client.plan(&request(&stencil)).expect("cold plan");
    assert_eq!(cold.cache, CacheOutcome::Miss);

    // Graceful drain persists the snapshot; an abrupt kill would not.
    set.drain(0).expect("replica was up");
    assert!(snapshot.exists(), "drain must persist the warm cache");
    set.restart(0).expect("restart");

    let mut client = Client::connect(&endpoint).expect("reconnect");
    let stats = client.stats().expect("stats").cache;
    assert!(
        stats.warm_loaded >= 1,
        "restart must reload the snapshot: {stats:?}"
    );
    let warm = client.plan(&request(&stencil)).expect("warm plan");
    assert_eq!(
        warm.cache,
        CacheOutcome::Hit,
        "first post-restart request must be served from the warm cache"
    );
    assert_eq!(warm.uov, cold.uov);
    assert_eq!(warm.cost, cold.cost);
    assert_eq!(
        warm.certificate_hash, cold.certificate_hash,
        "a warm hit must certify identically to the cold solve"
    );

    set.shutdown_all();
    let _ = std::fs::remove_file(&snapshot);
}

/// Consistent-hash routing under a home-shard kill: every problem's
/// request is routed to its ring home, and when that home is killed
/// mid-schedule the mesh fails over to the next live ring successor —
/// without the answer changing a byte.
#[test]
fn mesh_routing_survives_a_home_shard_kill() {
    let mut set = ReplicaSet::start(3, ServerConfig::default()).expect("start replicas");
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let mut mesh = MeshClient::new(
        &endpoints,
        MeshConfig {
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            ..MeshConfig::default()
        },
    )
    .expect("mesh");

    let problems = problems();
    let truths: Vec<_> = problems.iter().map(local_truth).collect();

    // Pass 1: all shards up. Record each problem's home.
    let homes: Vec<usize> = problems
        .iter()
        .map(|s| mesh.ring().route(MeshClient::routing_key(&request(s))))
        .collect();
    for (i, stencil) in problems.iter().enumerate() {
        let resp = mesh.plan(&request(stencil)).expect("routed plan");
        let (uov, cost, hash) = &truths[i];
        assert_eq!(&resp.uov, uov);
        assert_eq!(&resp.cost, cost);
        assert_eq!(&resp.certificate_hash, hash);
    }
    assert_eq!(
        mesh.stats().failovers,
        0,
        "with every shard up, no request may leave its home"
    );

    // Kill the first problem's home; its requests must fail over, and
    // problems homed elsewhere must keep their home shard.
    let victim = homes[0];
    set.kill(victim).expect("home shard was up");
    for (i, stencil) in problems.iter().enumerate() {
        let resp = mesh
            .plan(&request(stencil))
            .unwrap_or_else(|e| panic!("problem {i} failed after home-shard kill: {e}"));
        let (uov, cost, hash) = &truths[i];
        assert_eq!(&resp.uov, uov, "problem {i}: UOV diverged after failover");
        assert_eq!(
            &resp.cost, cost,
            "problem {i}: cost diverged after failover"
        );
        assert_eq!(
            &resp.certificate_hash, hash,
            "problem {i}: certificate hash diverged after failover"
        );
    }
    assert!(
        mesh.take_events()
            .iter()
            .any(|e| matches!(e, MeshEvent::Failover { home, .. } if *home == victim)),
        "killing a home shard must surface as a failover event"
    );
    set.shutdown_all();
}

/// An abrupt kill (crash semantics) must NOT persist the cache — a
/// crashed replica restarts cold rather than trusting a torn snapshot.
#[test]
fn abrupt_kill_does_not_persist_the_cache() {
    let snapshot = std::env::temp_dir().join(format!("uov_chaos_crash_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let config = ServerConfig {
        warm_cache: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let mut set = ReplicaSet::start(1, config).expect("start replica");
    let endpoint = set.endpoints()[0].clone();
    let stencil = problems().remove(0);

    let mut client = Client::connect(&endpoint).expect("connect");
    client.plan(&request(&stencil)).expect("plan");
    set.kill(0).expect("replica was up");
    assert!(
        !snapshot.exists(),
        "a crash must not write the warm snapshot"
    );
    set.restart(0).expect("restart");
    let mut client = Client::connect(&endpoint).expect("reconnect");
    let resp = client.plan(&request(&stencil)).expect("cold plan");
    assert_eq!(
        resp.cache,
        CacheOutcome::Miss,
        "crashed replica starts cold"
    );
    set.shutdown_all();
}

/// Warm cache × replication: an entry a replica accepted over
/// `REQ_REPLICATE` (re-certified on receipt) survives a graceful drain
/// in the `UOVWARM1` snapshot, is re-validated from first principles on
/// restart, and serves a byte-identical first-request `Hit`. Corrupting
/// the snapshot flips the restart to a *typed* cold start — the damaged
/// entry is never served, and the server counts the corrupt load.
#[test]
fn replicated_entries_survive_a_warm_restart_and_corruption_starts_cold() {
    let snapshot =
        std::env::temp_dir().join(format!("uov_chaos_replwarm_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let config = ServerConfig {
        warm_cache: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let mut set = ReplicaSet::start(1, config).expect("start replica");
    let endpoint = set.endpoints()[0].clone();
    let stencil = problems().remove(1);
    let (uov, cost, hash) = local_truth(&stencil);

    // Push the entry the way a mesh coordinator would: the replica
    // re-certifies before storing.
    let mut client = Client::connect(&endpoint).expect("connect");
    let stored = client
        .replicate(&uov::service::ReplicateRequest {
            stencil: stencil.clone(),
            objective: ObjectiveSpec::ShortestVector,
            uov: uov.clone(),
            cost,
            repair: false,
        })
        .expect("replicate");
    assert!(stored.stored, "a certified entry must be accepted");
    assert_eq!(client.stats().expect("stats").cache.replicated_entries, 1);

    // Drain → restart: the replicated entry rides the warm snapshot and
    // serves the first post-restart request as a byte-identical hit.
    set.drain(0).expect("replica was up");
    assert!(snapshot.exists(), "drain must persist the warm cache");
    set.restart(0).expect("restart");
    let mut client = Client::connect(&endpoint).expect("reconnect");
    assert!(
        client.stats().expect("stats").cache.warm_loaded >= 1,
        "restart must reload the replicated entry"
    );
    let warm = client.plan(&request(&stencil)).expect("warm plan");
    assert_eq!(warm.cache, CacheOutcome::Hit, "replicated entry lost");
    assert_eq!(warm.uov, uov);
    assert_eq!(warm.cost, cost);
    assert_eq!(warm.certificate_hash, hash);

    // Corrupt the snapshot: flip one byte inside the entry section. The
    // load fails typed (WarmCacheError::Corrupt on the cache layer, the
    // `warm_load_corrupt` counter on the wire) and the replica starts
    // cold — it must still answer correctly, from a fresh solve.
    set.drain(0).expect("replica was up");
    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snapshot, &bytes).expect("write corrupted snapshot");
    set.restart(0).expect("restart after corruption");
    let mut client = Client::connect(&endpoint).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.cache.warm_loaded, 0,
        "a corrupt snapshot must restore nothing"
    );
    assert!(
        stats.server.warm_load_corrupt >= 1,
        "the corrupt load must be counted: {stats:?}"
    );
    let cold = client.plan(&request(&stencil)).expect("cold plan");
    assert_eq!(cold.cache, CacheOutcome::Miss, "corrupt entry served");
    assert_eq!(cold.uov, uov);
    assert_eq!(cold.cost, cost);
    assert_eq!(cold.certificate_hash, hash);

    set.shutdown_all();
    let _ = std::fs::remove_file(&snapshot);
}

/// A chaos stall crossed with the server's idle deadline: the proxy
/// holds every frame silent far past the server's read horizon, so each
/// stalled connection must be reaped by the idle deadline (and counted
/// as an idle timeout) while the client sees only typed errors — and
/// direct traffic to the same server keeps flowing, byte-identical to a
/// local solve, with zero panics.
#[test]
fn stalled_connections_meet_the_idle_deadline_as_typed_errors() {
    let server = uov::service::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            // ~0.5 s idle horizon, far below the proxy's stall.
            idle_ticks: 5,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let proxy = ChaosProxy::start(
        server.endpoint(),
        ChaosConfig {
            seed: 1998,
            reset_per_mille: 0,
            stall_per_mille: 1000, // every frame stalls
            truncate_per_mille: 0,
            flip_per_mille: 0,
            delay_per_mille: 0,
            stall_ms: 3_000,
            delay_ms: 0,
        },
    )
    .expect("start proxy");

    let stencil = problems()[0].clone();
    for attempt in 0..2 {
        let mut client = Client::connect(proxy.endpoint()).expect("connect through proxy");
        client
            // Longer than the server's idle horizon: the server reaps
            // the silent connection while we are still waiting.
            .set_timeout(Some(Duration::from_millis(1_500)))
            .expect("set timeout");
        let out = client.plan(&request(&stencil));
        assert!(
            out.is_err(),
            "attempt {attempt}: a fully stalled proxy cannot deliver a plan: {out:?}"
        );
    }
    assert!(proxy.stats().stalls >= 1, "the proxy must have stalled");

    // The stalled (silent) server-side connections are cut by the idle
    // deadline and counted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().idle_timeouts == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        server.stats().idle_timeouts >= 1,
        "stalled connections must be counted as idle timeouts: {:?}",
        server.stats()
    );

    // Direct traffic is unaffected: same answer as a local solve.
    let (uov, cost, hash) = local_truth(&stencil);
    let mut direct = Client::connect(server.endpoint()).expect("direct connect");
    let resp = direct
        .plan(&request(&stencil))
        .expect("direct traffic keeps flowing during the attack");
    assert_eq!(resp.uov, uov);
    assert_eq!(resp.cost, cost);
    assert_eq!(resp.certificate_hash, hash);

    proxy.stop();
    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.panics, 0, "a worker panicked under stalled load");
}
