//! Property tests for the DONE/DEAD oracle invariants (paper §3.1–§3.2).
//!
//! The invariants under test:
//!
//! 1. Every vector reported by `uovs_within` satisfies `is_uov`.
//! 2. The initial UOV `Σvᵢ` is always accepted (§3.2.1 — it is universal
//!    for every schedule).
//! 3. DEAD ⊆ DONE at every query point: a value is dead only once every
//!    consumer has executed, and dead requires done by definition — the
//!    sets are *not* disjoint, DEAD is the upward-closed core of DONE.
//! 4. Cache-hit answers equal cold-cache answers: re-querying a warmed
//!    oracle (including one warmed by concurrent workers) never changes a
//!    membership bit.

use proptest::prelude::*;
use uov::core::search::initial_uov;
use uov::core::DoneOracle;
use uov::isg::{ivec, IVec, RectDomain, Stencil};

fn lex_positive_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2, 3), 1..5)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

fn any_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim).prop_map(IVec::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Invariant 1: `uovs_within` only ever reports true UOVs — checked
    /// against a *fresh* oracle so a cache bug in the enumerating oracle
    /// cannot vouch for itself.
    #[test]
    fn uovs_within_reports_only_uovs(s in stencil_2d()) {
        let warm = DoneOracle::new(&s);
        for w in warm.uovs_within(4) {
            prop_assert!(warm.is_uov(&w), "warm oracle rejects its own {w}");
            prop_assert!(DoneOracle::new(&s).is_uov(&w), "cold oracle rejects {w}");
        }
    }

    /// Invariant 2: the initial UOV `Σvᵢ` is accepted for every stencil.
    #[test]
    fn initial_uov_is_always_accepted(s in stencil_2d()) {
        prop_assert!(DoneOracle::new(&s).is_uov(&initial_uov(&s)));
    }

    /// Invariant 3: DEAD ⊆ DONE pointwise, sampled over random query
    /// points. (Dead means *every* consumer has read the value; done means
    /// the producer has run — the former entails the latter.)
    #[test]
    fn dead_is_a_subset_of_done_pointwise(s in stencil_2d(), w in any_vec(2, 5)) {
        let oracle = DoneOracle::new(&s);
        if oracle.in_dead(&w) {
            prop_assert!(oracle.in_done(&w), "{w} is dead but not done");
        }
    }

    /// Invariant 3, set-level: the enumerated DEAD set at a query point is
    /// contained in the DONE set at the same point.
    #[test]
    fn dead_points_are_contained_in_done_points(s in stencil_2d()) {
        let oracle = DoneOracle::new(&s);
        let grid = RectDomain::grid(5, 5);
        let q = ivec![4, 4];
        let done = oracle.done_points(&q, &grid);
        for p in oracle.dead_points(&q, &grid) {
            prop_assert!(done.contains(&p), "dead point {p} missing from DONE");
        }
    }

    /// Invariant 4: a warmed cache never changes an answer. Query a batch
    /// twice against one oracle (second pass is all cache hits) and
    /// compare each bit to a cold oracle's answer.
    #[test]
    fn cache_hits_equal_cold_answers(s in stencil_2d()) {
        let warm = DoneOracle::new(&s);
        let mut queries = Vec::new();
        for x in -3i64..=3 {
            for y in -3i64..=3 {
                queries.push(ivec![x, y]);
            }
        }
        let first: Vec<bool> = queries.iter().map(|w| warm.in_done(w)).collect();
        let second: Vec<bool> = queries.iter().map(|w| warm.in_done(w)).collect();
        prop_assert_eq!(&first, &second, "cache hit changed an answer");
        let cold: Vec<bool> = {
            let oracle = DoneOracle::new(&s);
            queries.iter().map(|w| oracle.in_done(w)).collect()
        };
        prop_assert_eq!(&first, &cold, "warm cache disagrees with cold oracle");
    }

    /// Invariant 4 under concurrency: workers racing on one shared oracle
    /// get exactly the cold sequential answers.
    #[test]
    fn concurrent_cache_equals_cold_answers(s in stencil_2d()) {
        let shared = DoneOracle::new(&s);
        let mut queries = Vec::new();
        for x in -3i64..=3 {
            for y in -3i64..=3 {
                queries.push(ivec![x, y]);
            }
        }
        let answers = uov::core::par::fan_out(&queries, 4, |w| shared.is_uov(w));
        let cold = DoneOracle::new(&s);
        for (w, got) in queries.iter().zip(answers) {
            prop_assert_eq!(got, cold.is_uov(w), "racing workers flipped is_uov({})", w);
        }
    }
}
