//! Property tests for the DONE/DEAD oracle invariants (paper §3.1–§3.2).
//!
//! The invariants under test:
//!
//! 1. Every vector reported by `uovs_within` satisfies `is_uov`.
//! 2. The initial UOV `Σvᵢ` is always accepted (§3.2.1 — it is universal
//!    for every schedule).
//! 3. DEAD ⊆ DONE at every query point: a value is dead only once every
//!    consumer has executed, and dead requires done by definition — the
//!    sets are *not* disjoint, DEAD is the upward-closed core of DONE.
//! 4. Cache-hit answers equal cold-cache answers: re-querying a warmed
//!    oracle (including one warmed by concurrent workers) never changes a
//!    membership bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uov::core::search::initial_uov;
use uov::core::{DoneOracle, ReferenceOracle};
use uov::isg::{ivec, IVec, RectDomain, Stencil};

fn seed_from_env() -> u64 {
    std::env::var("UOV_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0D1F)
}

fn lex_positive_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim)
        .prop_map(IVec::from)
        .prop_filter("lexicographically positive", |v| v.is_lex_positive())
}

fn stencil_2d() -> impl Strategy<Value = Stencil> {
    prop::collection::vec(lex_positive_vec(2, 3), 1..5)
        .prop_map(|vs| Stencil::new(vs).expect("validated"))
}

fn any_vec(dim: usize, bound: i64) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-bound..=bound, dim).prop_map(IVec::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Invariant 1: `uovs_within` only ever reports true UOVs — checked
    /// against a *fresh* oracle so a cache bug in the enumerating oracle
    /// cannot vouch for itself.
    #[test]
    fn uovs_within_reports_only_uovs(s in stencil_2d()) {
        let warm = DoneOracle::new(&s);
        for w in warm.uovs_within(4) {
            prop_assert!(warm.is_uov(&w), "warm oracle rejects its own {w}");
            prop_assert!(DoneOracle::new(&s).is_uov(&w), "cold oracle rejects {w}");
        }
    }

    /// Invariant 2: the initial UOV `Σvᵢ` is accepted for every stencil.
    #[test]
    fn initial_uov_is_always_accepted(s in stencil_2d()) {
        prop_assert!(DoneOracle::new(&s).is_uov(&initial_uov(&s)));
    }

    /// Invariant 3: DEAD ⊆ DONE pointwise, sampled over random query
    /// points. (Dead means *every* consumer has read the value; done means
    /// the producer has run — the former entails the latter.)
    #[test]
    fn dead_is_a_subset_of_done_pointwise(s in stencil_2d(), w in any_vec(2, 5)) {
        let oracle = DoneOracle::new(&s);
        if oracle.in_dead(&w) {
            prop_assert!(oracle.in_done(&w), "{w} is dead but not done");
        }
    }

    /// Invariant 3, set-level: the enumerated DEAD set at a query point is
    /// contained in the DONE set at the same point.
    #[test]
    fn dead_points_are_contained_in_done_points(s in stencil_2d()) {
        let oracle = DoneOracle::new(&s);
        let grid = RectDomain::grid(5, 5);
        let q = ivec![4, 4];
        let done = oracle.done_points(&q, &grid);
        for p in oracle.dead_points(&q, &grid) {
            prop_assert!(done.contains(&p), "dead point {p} missing from DONE");
        }
    }

    /// Invariant 4: a warmed cache never changes an answer. Query a batch
    /// twice against one oracle (second pass is all cache hits) and
    /// compare each bit to a cold oracle's answer.
    #[test]
    fn cache_hits_equal_cold_answers(s in stencil_2d()) {
        let warm = DoneOracle::new(&s);
        let mut queries = Vec::new();
        for x in -3i64..=3 {
            for y in -3i64..=3 {
                queries.push(ivec![x, y]);
            }
        }
        let first: Vec<bool> = queries.iter().map(|w| warm.in_done(w)).collect();
        let second: Vec<bool> = queries.iter().map(|w| warm.in_done(w)).collect();
        prop_assert_eq!(&first, &second, "cache hit changed an answer");
        let cold: Vec<bool> = {
            let oracle = DoneOracle::new(&s);
            queries.iter().map(|w| oracle.in_done(w)).collect()
        };
        prop_assert_eq!(&first, &cold, "warm cache disagrees with cold oracle");
    }

    /// Invariant 4 under concurrency: workers racing on one shared oracle
    /// get exactly the cold sequential answers.
    #[test]
    fn concurrent_cache_equals_cold_answers(s in stencil_2d()) {
        let shared = DoneOracle::new(&s);
        let mut queries = Vec::new();
        for x in -3i64..=3 {
            for y in -3i64..=3 {
                queries.push(ivec![x, y]);
            }
        }
        let answers = uov::core::par::fan_out(&queries, 4, |w| shared.is_uov(w));
        let cold = DoneOracle::new(&s);
        for (w, got) in queries.iter().zip(answers) {
            prop_assert_eq!(got, cold.is_uov(w), "racing workers flipped is_uov({})", w);
        }
    }
}

/// Differentials against the retained [`ReferenceOracle`] — the pre-dense
/// scalar memoizer kept verbatim as an executable specification. The dense
/// bitset/window engine must agree with it bit-for-bit on every verdict.
mod reference_differential {
    use super::*;

    /// Seeded random stencil in `dim` dimensions, mirroring the generator
    /// used by `tests/differential.rs`.
    fn random_stencil(rng: &mut StdRng, dim: usize, bound: i64, max_vecs: usize) -> Stencil {
        loop {
            let n = rng.gen_range(1..=max_vecs);
            let vecs: Vec<IVec> = (0..n)
                .map(|_| loop {
                    let v = IVec::from(
                        (0..dim)
                            .map(|_| rng.gen_range(-bound..=bound))
                            .collect::<Vec<i64>>(),
                    );
                    if v.is_lex_positive() {
                        return v;
                    }
                })
                .collect();
            if let Ok(s) = Stencil::new(vecs) {
                return s;
            }
        }
    }

    /// DONE and DEAD verdicts agree with the reference oracle over a full
    /// coordinate box, on seeded random 2-D and 3-D stencils.
    #[test]
    fn dense_oracle_matches_reference_on_boxes() {
        let mut rng = StdRng::seed_from_u64(seed_from_env());
        for case in 0..24 {
            let dim = if case % 3 == 0 { 3 } else { 2 };
            let s = random_stencil(&mut rng, dim, 3, 4);
            let dense = DoneOracle::new(&s);
            let mut reference = ReferenceOracle::new(&s).expect("reference oracle");
            let bound = 5i64;
            let mut coords = vec![-bound; dim];
            loop {
                let w = IVec::from(coords.clone());
                assert_eq!(
                    dense.in_done(&w),
                    reference.in_done(&w),
                    "DONE({w}) diverges from reference on stencil {s} (case {case})"
                );
                assert_eq!(
                    dense.in_dead(&w),
                    reference.in_dead(&w),
                    "DEAD({w}) diverges from reference on stencil {s} (case {case})"
                );
                // Odometer over the box [-bound, bound]^dim.
                let mut i = 0;
                loop {
                    if i == dim {
                        break;
                    }
                    coords[i] += 1;
                    if coords[i] <= bound {
                        break;
                    }
                    coords[i] = -bound;
                    i += 1;
                }
                if i == dim {
                    break;
                }
            }
            assert!(reference.memo_len() > 0, "reference memo never populated");
        }
    }

    /// `uovs_within` enumerates the identical set (same vectors, same
    /// order — both are sorted) on both oracles.
    #[test]
    fn dense_uov_enumeration_matches_reference() {
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0xD1FF);
        for case in 0..16 {
            let s = random_stencil(&mut rng, 2, 3, 4);
            let dense = DoneOracle::new(&s);
            let mut reference = ReferenceOracle::new(&s).expect("reference oracle");
            let radius = 4 + (case % 3) as i64;
            assert_eq!(
                dense.uovs_within(radius),
                reference.uovs_within(radius),
                "uovs_within({radius}) diverges on stencil {s}"
            );
        }
    }

    /// is_uov agreement includes the DEAD ⊆ DONE corner: every point where
    /// either oracle says UOV, both must, and both must also say DONE.
    #[test]
    fn is_uov_agreement_and_containment() {
        let mut rng = StdRng::seed_from_u64(seed_from_env() ^ 0x15_0F);
        for _ in 0..16 {
            let s = random_stencil(&mut rng, 2, 3, 4);
            let dense = DoneOracle::new(&s);
            let mut reference = ReferenceOracle::new(&s).expect("reference oracle");
            for x in -4i64..=4 {
                for y in -4i64..=4 {
                    let w = ivec![x, y];
                    let d = dense.is_uov(&w);
                    assert_eq!(d, reference.is_uov(&w), "is_uov({w}) diverges on {s}");
                    if d {
                        assert!(dense.in_done(&w), "UOV {w} not DONE on {s}");
                    }
                }
            }
        }
    }
}

/// Far-coordinate queries land outside the dense window (its reach is a
/// few hundred per dimension — see `query_window`) and must take the
/// sharded spill tier; the verdicts there are pinned by closed-form facts
/// about stencils whose cones are textbook objects. Coordinates stay in
/// the low thousands: far past every window bound, but with cone walks
/// the memoised DFS completes in linear time.
mod window_spill {
    use super::*;

    /// 1-D numerical semigroup ⟨2,3⟩: DONE(n) ⟺ n = 0 ∨ n ≥ 2, and
    /// UOV(n) ⟺ n−2 and n−3 both DONE ⟺ n ≥ 5. These hold at any
    /// magnitude, so out-of-window probes are checked against ground
    /// truth rather than against another memoizer. (The 1-D window spans
    /// ±960 for this stencil; everything ≥ 5 000 is spill traffic.)
    #[test]
    fn semigroup_verdicts_hold_past_the_window() {
        let s = Stencil::new(vec![ivec![2], ivec![3]]).unwrap();
        let oracle = DoneOracle::new(&s);
        for n in [0i64, 1, 2, 3, 4, 5, 6, 1_000, 5_000, 5_001, 20_000] {
            let expect_done = n == 0 || n >= 2;
            let expect_uov = n >= 5;
            assert_eq!(oracle.in_done(&ivec![n]), expect_done, "DONE({n})");
            assert_eq!(oracle.is_uov(&ivec![n]), expect_uov, "UOV({n})");
        }
        // Negative points are cut by the positive functional without any
        // cone walk, so these may be arbitrarily far out.
        assert!(!oracle.in_done(&ivec![-1_000_000_000]));
        assert!(!oracle.in_done(&ivec![-5_001]));
    }

    /// 2-D quadrant stencil {(1,0),(0,1)}: DONE is exactly the closed
    /// non-negative quadrant. Membership probes sit past the ±128 window
    /// reach; non-membership probes are functional cuts and may be huge.
    #[test]
    fn quadrant_verdicts_hold_past_the_window() {
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1]]).unwrap();
        let oracle = DoneOracle::new(&s);
        let big = 3_001i64;
        assert!(oracle.in_done(&ivec![big, big]));
        assert!(oracle.in_done(&ivec![big, 0]));
        assert!(oracle.in_done(&ivec![0, big]));
        assert!(!oracle.in_done(&ivec![1_000_000_007, -1]));
        assert!(!oracle.in_done(&ivec![-1, 1_000_000_007]));
        assert!(oracle.is_uov(&ivec![big, big]));
        assert!(
            !oracle.is_uov(&ivec![big, 0]),
            "edge point misses (0,1) step"
        );
    }

    /// Spill-tier answers are stable under cache warming and agree with a
    /// cold oracle: querying the same far coordinates twice (second pass
    /// is all spill-map hits) never flips a bit.
    #[test]
    fn spill_hits_equal_cold_answers() {
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 2]]).unwrap();
        let warm = DoneOracle::new(&s);
        let far: Vec<IVec> = (0..32).map(|i| ivec![2_000 + i, 4_000 - 3 * i]).collect();
        let first: Vec<bool> = far.iter().map(|w| warm.in_done(w)).collect();
        let second: Vec<bool> = far.iter().map(|w| warm.in_done(w)).collect();
        assert_eq!(first, second, "spill-tier hit changed an answer");
        let cold = DoneOracle::new(&s);
        let cold_bits: Vec<bool> = far.iter().map(|w| cold.in_done(w)).collect();
        assert_eq!(
            first, cold_bits,
            "warm spill tier disagrees with cold oracle"
        );
    }

    /// The same fact answered from the dense window (small coords) and
    /// from the spill tier: DONE is closed under adding cone elements, so
    /// marching a cone element from deep inside the window out past the
    /// window bound must never flip membership off at the boundary.
    #[test]
    fn window_and_spill_agree_across_the_boundary() {
        let s = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]]).unwrap();
        let oracle = DoneOracle::new(&s);
        // The window reach for this stencil is ±256 per dimension; march
        // the diagonal from (1,1) to (4000,4000) in steps that straddle
        // the boundary densely near it.
        let step = ivec![1, 1];
        let mut w = ivec![1, 1];
        assert!(oracle.in_done(&w));
        while w[0] < 4_000 {
            let jump = if (200..600).contains(&w[0]) { 1 } else { 97 };
            for _ in 0..jump {
                w = &w + &step;
            }
            assert!(oracle.in_done(&w), "cone point {w} lost past the window");
        }
    }
}
