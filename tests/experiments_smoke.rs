//! Smoke-test every experiment at quick scale and check the qualitative
//! shapes the paper reports.

use uov::bench::{experiments, Scale};

#[test]
fn every_experiment_runs_and_is_nonempty() {
    for name in experiments::all_names() {
        let tables = experiments::run(name, Scale::Quick)
            .unwrap_or_else(|| panic!("unknown experiment {name}"));
        assert!(!tables.is_empty(), "{name} produced no tables");
        for t in &tables {
            assert!(
                !t.rows().is_empty(),
                "{name}: table `{}` is empty",
                t.title()
            );
            assert!(t.to_markdown().contains("###"));
            assert!(!t.to_csv().is_empty());
        }
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(experiments::run("fig99", Scale::Quick).is_none());
}

fn series(table: &uov::bench::Table, label: &str) -> Vec<f64> {
    table
        .rows()
        .iter()
        .find(|r| r[0] == label)
        .unwrap_or_else(|| panic!("missing series {label}"))[1..]
        .iter()
        .filter_map(|c| c.parse().ok())
        .collect()
}

#[test]
fn stencil_scaling_shapes_hold_on_all_machines() {
    for machine in 0..3 {
        let t = &experiments::run(["fig9", "fig10", "fig11"][machine], Scale::Quick).unwrap()[0];
        let natural = series(t, "Natural");
        let ov_tiled = series(t, "OV-Mapped Tiled");
        // At the largest quick size the tiled OV version wins against
        // untiled natural on every machine.
        assert!(
            ov_tiled.last().unwrap() < natural.last().unwrap(),
            "machine {machine}: tiled OV must win out of cache"
        );
    }
}

#[test]
fn psm_overhead_ordering_matches_fig8() {
    let t = &experiments::run("fig8", Scale::Quick).unwrap()[0];
    // Rows: Storage Optimized, Natural, OV-Mapped. Column per machine.
    for col in 1..=3 {
        let opt: f64 = t.rows()[0][col].parse().unwrap();
        let nat: f64 = t.rows()[1][col].parse().unwrap();
        let ov: f64 = t.rows()[2][col].parse().unwrap();
        assert!(opt < nat, "storage-optimized must have the least overhead");
        assert!(ov < nat, "OV-mapped must beat natural (Fig 8)");
    }
}

#[test]
fn npc_table_agrees_everywhere() {
    let t = &experiments::run("npc", Scale::Quick).unwrap()[0];
    for row in t.rows() {
        assert_eq!(row[2], row[3], "DP vs UOV disagreement: {row:?}");
    }
}

#[test]
fn ablation_confirms_optimality() {
    let tables = experiments::run("ablation", Scale::Quick).unwrap();
    assert_eq!(tables.len(), 5);
    for row in tables[0].rows() {
        if row[7] != "(skipped)" {
            assert_eq!(row[7], "true", "B&B missed the optimum: {row:?}");
        }
    }
}
