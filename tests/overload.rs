//! The overload soak: a hog tenant offering far more than its quota,
//! woven with partitions and a replica kill/restart, must be *invisible*
//! to compliant tenants.
//!
//! Three replicas run with per-tenant admission quotas: the compliant
//! tenant has a generous default quota, the hog a tight one (rate 20/s,
//! burst 10, in-flight cap 4) that it exceeds by well over 10× — the hog
//! threads hammer every replica as fast as the sockets allow for the
//! whole schedule. The contract:
//!
//! 1. **Compliant availability 1.0**: every compliant request completes —
//!    shed pressure lands on the hog (typed `Overloaded`), never on
//!    in-quota traffic.
//! 2. **Certified answers only**: every served answer — full-fidelity
//!    *or* pressure-degraded to the always-legal `Σvᵢ` — carries the
//!    certificate transcript hash of a local certification of the same
//!    `(stencil, uov)`, so answers are byte-identical across
//!    `search_threads` 1 and 8 and across every seed.
//! 3. **Faults compose**: a symmetric partition of one replica and an
//!    abrupt kill + restart of another happen mid-schedule; the
//!    resilient fabric's failover keeps the compliant view at 1.0.
//! 4. **Zero panics**, and the hog's excess is visibly counted
//!    (`shed_over_quota`).
//!
//! Seeds come from `UOV_OVERLOAD_SEED` when set (CI loops a fixed list),
//! or a built-in pair otherwise.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use uov::core::certify::certify;
use uov::core::search::{
    find_best_uov, initial_uov, try_cost_of, Objective, SearchConfig, SearchStats,
};
use uov::core::SearchResult;
use uov::isg::{ivec, IVec, Stencil};
use uov::service::{
    ChaosConfig, ChaosProxy, Client, DegradationCode, ErrorCode, ObjectiveSpec, PlanRequest,
    QuotaConfig, ReplicaSet, ResilientClient, ResilientConfig, ServerConfig, ServiceError,
    TenantQuota,
};

const COMPLIANT: u32 = 1;
const HOG: u32 = 9;

fn seeds() -> Vec<u64> {
    match std::env::var("UOV_OVERLOAD_SEED") {
        Ok(s) => vec![s.trim().parse().expect("UOV_OVERLOAD_SEED must be a u64")],
        Err(_) => vec![7, 1998],
    }
}

/// Small, fast problems — the soak stresses admission, not the search.
fn problems() -> Vec<Stencil> {
    (1..=4i64)
        .map(|k| Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, k]]).expect("valid"))
        .collect()
}

fn request(stencil: &Stencil) -> PlanRequest {
    PlanRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    }
}

/// Both certified truths for one problem: the full-fidelity answer and
/// the `Σvᵢ` pressure fast path. A served response must match one of
/// them byte-for-byte, selected by its degradation code.
struct Truth {
    full: (IVec, u128, u64),
    degraded: (IVec, u128, u64),
}

fn truth_of(stencil: &Stencil) -> Truth {
    let result = find_best_uov(stencil, Objective::ShortestVector, &SearchConfig::default())
        .expect("local search");
    let cert = certify(stencil, &Objective::ShortestVector, &result).expect("local certification");
    let full = (result.uov.clone(), result.cost, cert.transcript_hash);

    let uov = initial_uov(stencil);
    let cost = try_cost_of(&Objective::ShortestVector, &uov).expect("Σvᵢ cost");
    let as_result = SearchResult {
        uov: uov.clone(),
        cost,
        stats: SearchStats::default(),
        degradation: None,
        checkpoint_error: None,
    };
    let cert = certify(stencil, &Objective::ShortestVector, &as_result).expect("Σvᵢ certification");
    let degraded = (uov, cost, cert.transcript_hash);
    Truth { full, degraded }
}

/// Server config for the soak: tight hog quota, generous default, and a
/// low degrade watermark so queue pressure degrades in-budget requests
/// to the certified fast path instead of shedding them.
fn soak_config(search_threads: usize) -> ServerConfig {
    let mut tenants = HashMap::new();
    tenants.insert(
        HOG,
        TenantQuota {
            tokens_per_sec: 20,
            burst: 10,
            max_inflight: 4,
            weight: 1,
        },
    );
    ServerConfig {
        workers: 2,
        search_threads,
        queue_depth: 256,
        degrade_watermark: 2,
        quotas: Some(QuotaConfig {
            default: TenantQuota::default(),
            tenants,
        }),
        ..ServerConfig::default()
    }
}

fn fabric_config(seed: u64) -> ResilientConfig {
    ResilientConfig {
        attempt_timeout: Duration::from_millis(400),
        max_attempts: 40,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        seed,
        failure_threshold: 3,
        cooldown: 4,
        hedge_after: None,
        hedge_verify: false,
    }
}

/// One hog thread: hammer `endpoint` as tenant [`HOG`] until `stop`,
/// reconnecting through kills. Counts typed `Overloaded` sheds; any
/// other failure class is tolerated (the replica may be down) but a
/// served answer must still be one of the certified truths.
fn hog_thread(
    endpoint: String,
    stencil: Stencil,
    stop: Arc<AtomicBool>,
    sheds: Arc<AtomicU64>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut client: Option<Client> = None;
        while !stop.load(Ordering::Relaxed) {
            let c = match &mut client {
                Some(c) => c,
                None => match Client::connect(&endpoint) {
                    Ok(mut c) => {
                        c.set_tenant(HOG);
                        let _ = c.set_timeout(Some(Duration::from_secs(2)));
                        client.insert(c)
                    }
                    Err(_) => {
                        thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                },
            };
            match c.plan(&request(&stencil)) {
                Ok(_) => {}
                Err(ServiceError::Rejected {
                    code: ErrorCode::Overloaded,
                    ..
                }) => {
                    sheds.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServiceError::Rejected { .. }) => {}
                Err(_) => client = None, // replica down — redial
            }
        }
    })
}

/// Run the full soak at one seed and thread count: hog saturation on
/// every replica, a partition and a kill/restart mid-schedule, and a
/// compliant tenant whose every answer must match a certified truth.
fn run_soak(seed: u64, search_threads: usize) {
    let mut set = ReplicaSet::start(3, soak_config(search_threads)).expect("start replicas");
    let proxies: Vec<ChaosProxy> = set
        .endpoints()
        .iter()
        .map(|ep| {
            ChaosProxy::start(
                ep,
                ChaosConfig {
                    seed,
                    reset_per_mille: 0,
                    stall_per_mille: 0,
                    truncate_per_mille: 0,
                    flip_per_mille: 0,
                    delay_per_mille: 0,
                    ..ChaosConfig::default()
                },
            )
            .expect("start proxy")
        })
        .collect();
    let endpoints: Vec<String> = proxies.iter().map(|p| p.endpoint().to_string()).collect();
    let mut fabric = ResilientClient::new(&endpoints, fabric_config(seed)).expect("fabric");
    fabric.set_tenant(COMPLIANT);

    let problems = problems();
    let truths: Vec<Truth> = problems.iter().map(truth_of).collect();

    // Saturate every replica directly (not through the proxies, so a
    // partition never gives the compliant tenant a quieter server).
    let stop = Arc::new(AtomicBool::new(false));
    let sheds = Arc::new(AtomicU64::new(0));
    let hogs: Vec<_> = set
        .endpoints()
        .iter()
        .flat_map(|ep| {
            (0..2).map(|_| {
                hog_thread(
                    ep.clone(),
                    problems[0].clone(),
                    Arc::clone(&stop),
                    Arc::clone(&sheds),
                )
            })
        })
        .collect();

    // Two passes over the problems with faults woven in: a symmetric
    // partition of replica 1's proxy, then an abrupt kill + restart of
    // replica 0. Every compliant request must complete.
    let schedule: Vec<usize> = (0..problems.len()).chain(0..problems.len()).collect();
    let mut compliant_ok = 0u64;
    for (step, &p) in schedule.iter().enumerate() {
        match step {
            2 => proxies[1].partition_symmetric(),
            4 => proxies[1].heal(),
            5 => {
                set.kill(0);
            }
            7 => set.restart(0).expect("restart replica 0"),
            _ => {}
        }
        let resp = fabric.plan(&request(&problems[p])).unwrap_or_else(|e| {
            panic!("seed {seed}, threads {search_threads}, step {step}: compliant request failed — availability < 1.0: {e}")
        });
        compliant_ok += 1;
        let truth = &truths[p];
        let (uov, cost, hash) = match resp.degradation {
            DegradationCode::None => &truth.full,
            DegradationCode::Pressure => &truth.degraded,
            other => panic!(
                "seed {seed}, step {step}: unexpected degradation {other:?} with no deadline set"
            ),
        };
        assert_eq!(&resp.uov, uov, "seed {seed}, step {step}: UOV diverged");
        assert_eq!(&resp.cost, cost, "seed {seed}, step {step}: cost diverged");
        assert_eq!(
            &resp.certificate_hash, hash,
            "seed {seed}, step {step}: certificate hash diverged"
        );
    }
    assert_eq!(
        compliant_ok,
        schedule.len() as u64,
        "compliant availability must be 1.0"
    );

    stop.store(true, Ordering::Relaxed);
    for h in hogs {
        h.join().expect("hog thread");
    }
    assert!(
        sheds.load(Ordering::Relaxed) > 0,
        "seed {seed}: the hog was never shed — it did not exceed its quota"
    );

    let mut shed_over_quota = 0u64;
    for stats in set.shutdown_all().into_iter().flatten() {
        assert_eq!(stats.panics, 0, "seed {seed}: a worker panicked");
        shed_over_quota += stats.shed_over_quota;
    }
    assert!(
        shed_over_quota > 0,
        "seed {seed}: no replica counted a quota shed"
    );
    for proxy in proxies {
        proxy.stop();
    }
}

/// The acceptance soak: full compliant availability and certified
/// byte-identical answers under hog + partition + kill/restart, at every
/// seed, at search-thread counts 1 and 8.
#[test]
fn hog_partitions_and_restarts_leave_compliant_tenants_whole() {
    for seed in seeds() {
        for threads in [1usize, 8] {
            run_soak(seed, threads);
        }
    }
}
