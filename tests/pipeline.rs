//! Cross-crate integration: the full compiler pipeline — IR → dependence
//! analysis → UOV search → storage mapping → schedule-independent
//! execution — on every loop the paper discusses.

use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::core::DoneOracle;
use uov::isg::{IVec, RectDomain};
use uov::loopir::{analysis, examples, interp};
use uov::schedule::{legality, random_topological_order, LoopSchedule};
use uov::storage::legality::{check_order, schedule_independent_on_samples};
use uov::storage::{Layout, OvMap, StorageMap};

fn border(_array: usize, e: &IVec) -> f64 {
    (e.iter()
        .enumerate()
        .map(|(k, &c)| (k as i64 + 1) * c)
        .sum::<i64>()) as f64
        * 0.01
        + 1.0
}

#[test]
fn fig1_full_pipeline() {
    let nest = examples::fig1_nest(7, 5);
    let stencil = analysis::flow_stencil(&nest, 0).expect("regular loop");
    let best = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("stencil is in range");
    assert_eq!(best.uov, IVec::from([1, 1]));

    let map = OvMap::new(nest.domain(), best.uov.clone(), Layout::Interleaved);
    // Storage ~ n + m − 1 on the borderless interior domain.
    assert_eq!(map.size(), 7 + 5 - 1);

    // Conflict-free under sampled legal schedules…
    assert!(schedule_independent_on_samples(nest.domain(), &stencil, &map, 32).is_ok());

    // …and semantics-preserving through the interpreter.
    let live_out: Vec<(usize, IVec)> = (1..=5).map(|j| (0usize, IVec::from([7, j]))).collect();
    for schedule in [
        LoopSchedule::Lexicographic,
        LoopSchedule::Interchange(vec![1, 0]),
        LoopSchedule::tiled(vec![3, 2]),
        LoopSchedule::Wavefront(IVec::from([1, 1])),
    ] {
        let order = schedule.order(nest.domain());
        interp::assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border, &live_out);
    }
}

#[test]
fn stencil5_full_pipeline() {
    let nest = examples::stencil5_nest(6, 14);
    let stencil = analysis::flow_stencil(&nest, 0).expect("regular loop");
    assert_eq!(stencil.len(), 5);

    // The optimal UOV is the paper's (2,0); rectangular tiling is illegal
    // but skew-2 tiling works.
    let best = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("stencil is in range");
    assert_eq!(best.uov, IVec::from([2, 0]));
    assert!(!legality::rectangular_tiling_legal(&stencil));
    assert_eq!(legality::skew_factor_for_tiling(&stencil), Some(2));

    for layout in [Layout::Interleaved, Layout::Blocked] {
        let map = OvMap::new(nest.domain(), best.uov.clone(), layout);
        assert_eq!(map.size(), 2 * 14, "two rows of storage (Table 1)");
        let order = LoopSchedule::skewed_tiled_2d(2, vec![2, 5]).order(nest.domain());
        assert!(check_order(&order, nest.domain(), &stencil, &map).is_ok());
        let live_out: Vec<(usize, IVec)> = (0..14).map(|x| (0usize, IVec::from([6, x]))).collect();
        interp::assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border, &live_out);
    }
}

#[test]
fn psm_per_statement_pipeline() {
    // Each assignment of the PSM nest gets its own stencil and its own
    // disjoint OV-mapped storage (paper §3, first paragraph).
    let nest = examples::psm_nest(6, 8);
    let h_stencil = analysis::flow_stencil(&nest, 0).expect("H is regular");
    let e_stencil = analysis::flow_stencil(&nest, 1).expect("E is regular");

    let h_best = find_best_uov(
        &h_stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("stencil is in range");
    let e_best = find_best_uov(
        &e_stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )
    .expect("stencil is in range");
    assert_eq!(h_best.uov, IVec::from([1, 1]));
    assert_eq!(e_best.uov, IVec::from([1, 0]));

    let h_map = OvMap::new(nest.domain(), h_best.uov.clone(), Layout::Interleaved);
    let e_map = OvMap::new(nest.domain(), e_best.uov.clone(), Layout::Interleaved);
    assert!(schedule_independent_on_samples(nest.domain(), &h_stencil, &h_map, 16).is_ok());
    assert!(schedule_independent_on_samples(nest.domain(), &e_stencil, &e_map, 16).is_ok());

    // Both statements mapped at once, interpreted under hostile orders.
    // (H's stencil is the coarser one; any order legal for it is legal for
    // E's {(1,0)} as well.)
    let reference = interp::run_natural(&nest, &border);
    for seed in 0..8 {
        let order = random_topological_order(nest.domain(), &h_stencil, seed);
        let maps: Vec<Option<&dyn StorageMap>> = vec![Some(&h_map), Some(&e_map)];
        let live_out: Vec<(usize, IVec)> = (1..=8).map(|j| (0usize, IVec::from([6, j]))).collect();
        let out = interp::run(&nest, &order, &maps, &border, &live_out);
        for key in &live_out {
            assert_eq!(
                out[key], reference[key],
                "mismatch at {key:?} (seed {seed})"
            );
        }
    }
}

#[test]
fn region_analysis_identifies_temporaries() {
    use std::collections::BTreeSet;
    let nest = examples::fig1_nest(5, 5);
    let regions = analysis::RegionAnalysis::run(&nest, 0).expect("regular");
    // Imported: row 0 and column 0 (the loop's inputs).
    assert!(regions.imported.iter().all(|e| e[0] == 0 || e[1] == 0));
    // Temporaries given a live-out last row: everything except row 5.
    let live_out: BTreeSet<IVec> = (1..=5).map(|j| IVec::from([5, j])).collect();
    let temps = regions.temporaries(&live_out);
    assert_eq!(temps.len(), 25 - 5);
}

#[test]
fn known_bounds_objective_integrates_with_mapping() {
    // Pick the storage-optimal UOV for a wide, short domain and check the
    // mapping's size equals the search's predicted cost.
    let nest = examples::fig1_nest(3, 30);
    let stencil = analysis::flow_stencil(&nest, 0).expect("regular");
    let best = find_best_uov(
        &stencil,
        Objective::KnownBounds(nest.domain()),
        &SearchConfig::default(),
    )
    .expect("stencil is in range");
    let map = OvMap::new(nest.domain(), best.uov.clone(), Layout::Interleaved);
    assert_eq!(map.size() as u128, best.cost);
    assert!(DoneOracle::new(&stencil).is_uov(&best.uov));
    // On a 3×30 domain a time-directed OV (3 classes/column ≤ 30+2
    // diagonals) beats the diagonal: sanity-check the economy.
    let diag = OvMap::new(nest.domain(), IVec::from([1, 1]), Layout::Interleaved);
    assert!(map.size() <= diag.size());
}

#[test]
fn natural_and_mapped_agree_on_a_bigger_grid() {
    let nest = examples::fig1_nest(12, 9);
    let stencil = analysis::flow_stencil(&nest, 0).expect("regular");
    let map = OvMap::new(nest.domain(), IVec::from([1, 1]), Layout::Blocked);
    let live_out: Vec<(usize, IVec)> = (1..=9).map(|j| (0usize, IVec::from([12, j]))).collect();
    for seed in 100..108 {
        let order = random_topological_order(nest.domain(), &stencil, seed);
        interp::assert_mapping_preserves_semantics(&nest, 0, &map, &order, &border, &live_out);
    }
    let _ = RectDomain::grid(2, 2); // keep the import exercised
}

#[test]
fn uov_mapping_survives_hierarchical_tiling() {
    // §7 future work: multi-level tiling. The schedule-independent
    // mapping needs no adjustment when the tiling gains levels.
    use uov::isg::{ivec, Stencil};
    use uov::schedule::{legality::skew_matrix_2d, HierarchicalTiling};
    let s = Stencil::new(vec![
        ivec![1, -2],
        ivec![1, -1],
        ivec![1, 0],
        ivec![1, 1],
        ivec![1, 2],
    ])
    .unwrap();
    let dom = RectDomain::new(ivec![0, 0], ivec![9, 13]);
    let map = OvMap::new(&dom, ivec![2, 0], Layout::Interleaved);
    let skew = skew_matrix_2d(2);
    for (outer, inner) in [(vec![4, 8], vec![2, 4]), (vec![6, 12], vec![3, 3])] {
        let order = HierarchicalTiling::new(outer, inner)
            .transformed(skew.clone())
            .order(&dom);
        assert!(
            check_order(&order, &dom, &s, &map).is_ok(),
            "UOV mapping must survive two-level tiling"
        );
    }
}

#[test]
fn triangular_domain_storage_counting() {
    // A lower-triangular nest (footnote 6's A·i ≤ b form): the UOV theory
    // and mappings work unchanged on non-rectangular ISGs.
    use uov::core::objective::{storage_class_count, storage_class_count_exact};
    use uov::isg::{ivec, HalfspaceDomain2, IterationDomain as _};
    let tri = HalfspaceDomain2::lower_triangle(0, 12);
    for ov in [ivec![1, 1], ivec![1, 0], ivec![2, 1]] {
        let formula = storage_class_count(&tri, &ov);
        let exact = storage_class_count_exact(&tri, &ov);
        assert!(formula >= exact, "allocation must cover occupied classes");
        assert!(formula <= tri.num_points());
    }
    // Diagonal reuse on the triangle: classes = span of (−1,1) = 13.
    assert_eq!(storage_class_count(&tri, &ivec![1, 1]), 13);

    // And the mapping itself is conflict-free... on the bounding rectangle
    // the checker runs; on the triangle we verify address injectivity per
    // anti-diagonal directly.
    use uov::storage::{Layout, OvMap, StorageMap};
    let map = OvMap::new(&tri, ivec![1, 1], Layout::Interleaved);
    assert_eq!(map.size(), 13);
    for p in tri.points() {
        assert!(map.map(&p) < map.size());
        let q = &p + &ivec![1, 1];
        if tri.contains(&q) {
            assert_eq!(map.map(&p), map.map(&q));
        }
        let r = &p + &ivec![1, 0];
        if tri.contains(&r) {
            assert_ne!(map.map(&p), map.map(&r));
        }
    }
}
