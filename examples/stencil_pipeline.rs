//! The 5-point stencil, end to end: dependence analysis → UOV search →
//! skewed tiling legality → all seven storage/schedule variants, timed on
//! a simulated Pentium Pro and checked for bit-identical results.
//!
//! Run with: `cargo run --release --example stencil_pipeline`

use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::kernels::mem::{PlainMemory, TracedMemory};
use uov::kernels::stencil5::{run, storage_cells, Stencil5Config, Variant};
use uov::kernels::workloads;
use uov::loopir::{analysis, examples as ir};
use uov::memsim::machines;
use uov::schedule::legality;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The loop, as IR, and its extracted value-dependence stencil.
    let nest = ir::stencil5_nest(8, 64);
    let stencil = analysis::flow_stencil(&nest, 0)?;
    println!("stencil     : {stencil:?}");

    // 2. Rectangular tiling is illegal — skewing by 2 fixes it.
    assert!(!legality::rectangular_tiling_legal(&stencil));
    let skew = legality::skew_factor_for_tiling(&stencil).expect("2-D stencil");
    println!("tiling      : illegal as-is; legal after skew j' = j + {skew}·t");

    // 3. The optimal UOV is (2,0) — two rows of storage, Figure 5.
    let best = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )?;
    println!(
        "optimal UOV : {} (searched {} offsets)",
        best.uov, best.stats.visited
    );

    // 4. Run every variant on a simulated Pentium Pro; results must be
    //    bit-identical, cycles differ.
    let (len, t_steps) = (200_000usize, 4usize);
    let input = workloads::random_f32(len, 1);
    let cfg = Stencil5Config {
        len,
        time_steps: t_steps,
        tile: None,
    };

    let reference = run(&mut PlainMemory::new(), Variant::Natural, &cfg, &input);
    println!("\nL = {len}, T = {t_steps}:");
    println!(
        "{:<30}{:>14}{:>18}",
        "variant", "storage cells", "cycles/iteration"
    );
    for variant in Variant::all() {
        let mut mem = TracedMemory::new(machines::pentium_pro());
        let out = run(&mut mem, variant, &cfg, &input);
        assert_eq!(out, reference, "{variant:?} diverged");
        let cpi = mem.machine().cycles() as f64 / (len * t_steps) as f64;
        println!(
            "{:<30}{:>14}{:>18.1}",
            variant.label(),
            storage_cells(variant, len as u64, t_steps as u64),
            cpi
        );
    }
    println!("\nAll seven variants produced bit-identical results.");

    // 5. Parallelism on the SAME 2L-cell buffer (§1/§2): anti-diagonal
    //    wavefronts of skewed tiles run on real threads, race-free by the
    //    UOV theorem.
    use uov::kernels::parallel::run_stencil5_wavefront;
    let par_cfg = Stencil5Config {
        len,
        time_steps: 16,
        tile: Some((4, 4096)),
    };
    let big_input = workloads::random_f32(len, 1);
    let seq_start = std::time::Instant::now();
    let seq = run(
        &mut PlainMemory::new(),
        Variant::OvBlocked,
        &par_cfg,
        &big_input,
    );
    let seq_time = seq_start.elapsed();
    let par_start = std::time::Instant::now();
    let par = run_stencil5_wavefront(&par_cfg, &big_input, 4);
    let par_time = par_start.elapsed();
    assert_eq!(par, seq, "parallel wavefront must be bit-identical");
    println!(
        "\nParallel wavefront on shared OV storage (4 threads): {par_time:?} vs sequential {seq_time:?} — identical results."
    );
    Ok(())
}
