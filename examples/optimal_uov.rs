//! Exploring the UOV search: shortest-vector vs known-bounds objectives
//! (the Figure-3 lesson), search budgets, and the NP-completeness
//! reduction from PARTITION.
//!
//! Run with: `cargo run --release --example optimal_uov`

use uov::core::npc::PartitionInstance;
use uov::core::objective::storage_class_count;
use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::isg::{ivec, Polygon2, Stencil};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 3: on a skewed ISG, the shortest UOV wastes storage. ---
    let stencil = Stencil::new(vec![ivec![1, -1], ivec![1, 0], ivec![1, 1], ivec![0, 1]])?;
    let isg = Polygon2::fig3_isg();

    let shortest = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )?;
    let storage = find_best_uov(
        &stencil,
        Objective::KnownBounds(&isg),
        &SearchConfig::default(),
    )?;
    println!("Figure-3 ISG (skewed parallelogram):");
    println!(
        "  shortest UOV    = {}  → {} storage cells",
        shortest.uov,
        storage_class_count(&isg, &shortest.uov)
    );
    println!(
        "  known-bounds UOV = {} → {} storage cells",
        storage.uov, storage.cost
    );
    println!("  (the paper's example: ov (3,1) needs 16 cells, (3,0) needs 27)\n");

    // --- Search budgets: the incumbent is legal from the first visit. ---
    let stencil5 = Stencil::new(vec![
        ivec![1, -2],
        ivec![1, -1],
        ivec![1, 0],
        ivec![1, 1],
        ivec![1, 2],
    ])?;
    println!("5-pt stencil under shrinking search budgets:");
    for budget in [1u64, 4, 16, u64::MAX] {
        let res = find_best_uov(
            &stencil5,
            Objective::ShortestVector,
            &SearchConfig {
                max_visits: (budget != u64::MAX).then_some(budget),
                ..SearchConfig::default()
            },
        )?;
        println!(
            "  max_visits {:>4} → UOV {} (len² {}) complete={}",
            if budget == u64::MAX {
                "∞".to_string()
            } else {
                budget.to_string()
            },
            res.uov,
            res.cost,
            res.stats.complete
        );
    }

    // --- NP-completeness: PARTITION answered through UOV membership. ---
    println!("\nPARTITION via the §3.1 reduction:");
    for values in [
        vec![3, 1, 1, 2, 2, 1],
        vec![1, 3],
        vec![8, 7, 6, 5, 4, 3, 2, 1],
    ] {
        let inst = PartitionInstance::new(values.clone())?;
        let dp = inst.solve_brute();
        let uov = inst.solve_via_uov();
        assert_eq!(dp, uov);
        println!("  {values:?} → partitionable = {uov}");
    }
    Ok(())
}
