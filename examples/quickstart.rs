//! Quickstart: from a dependence stencil to a storage mapping.
//!
//! Walks the paper's Figure-1 example through the whole pipeline:
//! stencil → DONE/DEAD oracle → optimal UOV → storage mapping →
//! schedule-independence check.
//!
//! Run with: `cargo run --example quickstart`

use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::core::DoneOracle;
use uov::isg::{ivec, RectDomain, Stencil};
use uov::schedule::{random_topological_order, LoopSchedule};
use uov::storage::legality::check_order;
use uov::storage::{Layout, NaturalMap, OvMap, StorageMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The loop of the paper's Figure 1:
    //
    //   for i = 1..n { for j = 1..m {
    //       A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1])
    //   }}
    //
    // Its value dependences form a stencil: the value written at (i,j)
    // flows along (1,0), (0,1) and (1,1).
    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
    println!("stencil            : {stencil:?}");

    // The trivially legal universal occupancy vector is the stencil sum.
    println!("initial UOV Σvᵢ    : {}", stencil.sum());

    // Branch-and-bound finds the optimal (shortest) UOV — here (1,1).
    let best = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )?;
    println!(
        "optimal UOV        : {}  (visited {} offsets, {} pruned)",
        best.uov, best.stats.visited, best.stats.pruned
    );

    // Certify the answer: an independently checkable transcript whose
    // hash identifies this exact (problem, answer) pair — the same hash
    // the planning service returns for cached replays.
    let cert = uov::core::certify::certify(&stencil, &Objective::ShortestVector, &best)?;
    println!(
        "certificate        : transcript {:#018x}",
        cert.transcript_hash
    );

    // Membership can also be asked directly (NP-complete in general,
    // cheap for realistic stencils):
    let oracle = DoneOracle::new(&stencil);
    assert!(oracle.is_uov(&best.uov));
    assert!(!oracle.is_uov(&ivec![1, 0])); // fine for row-major, not universal

    // Build the storage mapping over a concrete bordered domain:
    // n+m+1 cells instead of the natural n·m.
    let (n, m) = (60i64, 40i64);
    let domain = RectDomain::new(ivec![0, 0], ivec![n, m]);
    let natural = NaturalMap::new(&domain);
    let mapped = OvMap::new(&domain, best.uov.clone(), Layout::Interleaved);
    println!(
        "storage            : natural {} cells → OV-mapped {} cells",
        natural.size(),
        mapped.size()
    );

    // "Universal" is checkable: simulate hostile-but-legal schedules and
    // verify no live value is ever clobbered.
    for schedule in [
        LoopSchedule::Lexicographic,
        LoopSchedule::Interchange(vec![1, 0]),
        LoopSchedule::tiled(vec![8, 8]),
        LoopSchedule::Wavefront(ivec![1, 1]),
    ] {
        let order = schedule.order(&domain);
        check_order(&order, &domain, &stencil, &mapped).map_err(|c| format!("{schedule}: {c}"))?;
        println!("verified           : conflict-free under {schedule}");
    }
    for seed in 0..5 {
        let order = random_topological_order(&domain, &stencil, seed);
        check_order(&order, &domain, &stencil, &mapped).map_err(|c| format!("seed {seed}: {c}"))?;
    }
    println!("verified           : conflict-free under 5 random legal orders");
    println!(
        "\nThe UOV mapping folds {}x less storage in, with no schedule restrictions.",
        natural.size() / mapped.size()
    );
    Ok(())
}
