//! Protein string matching (affine-gap Smith–Waterman) in the paper's
//! three storage treatments, with per-statement occupancy vectors.
//!
//! Run with: `cargo run --release --example protein_matching`

use uov::core::DoneOracle;
use uov::isg::{ivec, Stencil};
use uov::kernels::mem::{PlainMemory, TracedMemory};
use uov::kernels::psm::{run, storage_cells, PsmConfig, Variant};
use uov::kernels::workloads::{self, WeightTable};
use uov::memsim::machines;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The three temporaries of the Gotoh recurrence are separate
    // assignments (paper §3); each one's *consumer* stencil gets its own
    // occupancy vector:
    let v_h = Stencil::new(vec![ivec![1, 1], ivec![1, 0], ivec![0, 1]])?;
    let v_e = Stencil::new(vec![ivec![1, 0]])?;
    let v_f = Stencil::new(vec![ivec![0, 1]])?;
    for (name, stencil, uov) in [
        ("H", &v_h, ivec![1, 1]),
        ("E", &v_e, ivec![1, 0]),
        ("F", &v_f, ivec![0, 1]),
    ] {
        let oracle = DoneOracle::new(stencil);
        assert!(oracle.is_uov(&uov));
        println!("statement {name}: consumer stencil {stencil:?} → UOV {uov}");
    }
    println!("→ OV-mapped storage 2n0+2n1+1 (Table 2): H gets n0+n1+1, E gets n0, F gets n1\n");

    // Align two random proteins under every variant.
    let (n0, n1) = (1500usize, 1200usize);
    let s0 = workloads::random_protein(n0, 31);
    let s1 = workloads::random_protein(n1, 41);
    let table = WeightTable::synthetic(5);
    let cfg = PsmConfig { n0, n1, tile: None };

    let reference = run(
        &mut PlainMemory::new(),
        Variant::Natural,
        &cfg,
        &s0,
        &s1,
        &table,
    );
    println!("aligning |s0| = {n0} vs |s1| = {n1}: best local score = {reference}");
    println!(
        "\n{:<22}{:>16}{:>22}{:>22}",
        "variant", "storage cells", "PPro cycles/iter", "Ultra2 cycles/iter"
    );
    for variant in Variant::all() {
        let mut pp = TracedMemory::new(machines::pentium_pro());
        let score = run(&mut pp, variant, &cfg, &s0, &s1, &table);
        assert_eq!(score, reference, "{variant:?} diverged");
        let mut u2 = TracedMemory::new(machines::ultra_2());
        let _ = run(&mut u2, variant, &cfg, &s0, &s1, &table);
        let iters = (n0 * n1) as f64;
        println!(
            "{:<22}{:>16}{:>22.1}{:>22.1}",
            variant.label(),
            storage_cells(variant, n0 as u64, n1 as u64),
            pp.machine().cycles() as f64 / iters,
            u2.machine().cycles() as f64 / iters,
        );
    }
    println!("\nNote the Ultra 2 column: branch stalls dominate, so storage choices");
    println!("move the needle less — the paper's §5.2 observation.");
    Ok(())
}
