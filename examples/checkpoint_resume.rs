//! Crash-safe checkpoint/resume, demonstrated end to end.
//!
//! The search below visits ~1.3 million nodes (a few seconds of work).
//! Run it with a snapshot path and it periodically writes an atomic,
//! CRC-protected snapshot of the entire search state; kill the process
//! at any point — even `kill -9` — and re-running the same command
//! resumes from the last snapshot and finishes with the **byte-identical**
//! `(uov, cost)` a never-interrupted run produces.
//!
//! ```text
//! cargo run --release --example checkpoint_resume clean
//!     # → uov=... cost=...   (reference, no checkpointing)
//!
//! cargo run --release --example checkpoint_resume run /tmp/search.ckpt
//!     # kill -9 it mid-run, then run the same command again — repeat as
//!     # often as you like; the final line is identical to `clean`.
//! ```
//!
//! Only the result line goes to stdout; progress notes go to stderr, so
//! `diff <(... clean) <(... run PATH)` is a meaningful equality check.

use std::path::Path;

use uov::core::checkpoint::CheckpointConfig;
use uov::core::search::{find_best_uov, search_resume, Objective, SearchConfig, SearchResult};
use uov::core::{certify, SearchError};
use uov::isg::{ivec, Stencil};

/// Nodes expanded between snapshots. Small enough that a kill loses
/// little work, large enough that snapshot writes stay a rounding error.
const INTERVAL: u64 = 50_000;

fn workload() -> Stencil {
    Stencil::new(vec![
        ivec![3, 0, 0],
        ivec![0, 4, 0],
        ivec![0, 0, 5],
        ivec![1, 2, 3],
        ivec![2, 1, 1],
        ivec![1, 1, 4],
    ])
    .expect("static stencil is valid")
}

fn report(stencil: &Stencil, result: &SearchResult) {
    // Re-validate before printing: the result line is only ever a
    // certified one, resumed or not.
    let cert = certify(stencil, &Objective::ShortestVector, result)
        .expect("the engine's answer must pass the independent checker");
    eprintln!("note: {cert}");
    println!("uov={} cost={}", result.uov, result.cost);
}

fn main() -> Result<(), SearchError> {
    let args: Vec<String> = std::env::args().collect();
    let stencil = workload();
    match args.get(1).map(String::as_str) {
        Some("clean") => {
            let res = find_best_uov(
                &stencil,
                Objective::ShortestVector,
                &SearchConfig::default(),
            )?;
            report(&stencil, &res);
        }
        Some("run") => {
            let path = args.get(2).map(Path::new).unwrap_or_else(|| {
                eprintln!("usage: checkpoint_resume run <snapshot-path>");
                std::process::exit(2);
            });
            let config = SearchConfig {
                threads: 4,
                checkpoint: Some(CheckpointConfig {
                    path: path.to_path_buf(),
                    interval: INTERVAL,
                }),
                ..SearchConfig::default()
            };
            let res = if path.exists() {
                eprintln!("note: resuming from {}", path.display());
                search_resume(path, &stencil, Objective::ShortestVector, &config)?
            } else {
                eprintln!("note: fresh run, snapshotting to {}", path.display());
                find_best_uov(&stencil, Objective::ShortestVector, &config)?
            };
            if let Some(e) = &res.checkpoint_error {
                eprintln!("note: snapshot writes failed: {e}");
            }
            report(&stencil, &res);
        }
        _ => {
            eprintln!("usage: checkpoint_resume clean | checkpoint_resume run <snapshot-path>");
            std::process::exit(2);
        }
    }
    Ok(())
}
