//! Generate executable tiled code from a certified plan, then let the
//! autotuner pick the tile size: §2–§4 analysis feeding §5 made runnable.
//!
//! Two halves:
//!
//! 1. [`uov::driver::plan_and_emit`] — one call from a [`LoopNest`] to a
//!    standalone Rust program (and its C99 twin) whose loops are
//!    skew-tiled and whose stores go through the planned UOV mapping.
//!    The certificate transcript hash of the plan is stamped into the
//!    emitted source's provenance header.
//! 2. [`uov::codegen::autotune`] — memsim-ranked tile-size search with
//!    wall-clock timing of the top K, degrading to simulation-only
//!    ranking when no `rustc` is on the `PATH`.
//!
//! Run with: `cargo run --release --example generate_and_tune`

use uov::codegen::{autotune, AutotuneConfig, CandidateStatus};
use uov::driver;
use uov::kernels::zoo;
use uov::loopir::examples as ir;
use uov::storage::{Layout, OvMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Plan and emit: the §5 stencil, skew-tiled at 4×32.
    let nest = ir::stencil5_nest(8, 64);
    let emitted = driver::plan_and_emit("stencil5", &nest, Layout::Interleaved, Some([4, 32]))?;
    println!("schedule    : {}", emitted.spec.schedule.describe());
    for line in &emitted.spec.provenance {
        println!("provenance  : {line}");
    }
    println!(
        "emitted     : {} lines of Rust, {} lines of C",
        emitted.rust_source.lines().count(),
        emitted.c_source.lines().count()
    );
    let cert_line = emitted
        .rust_source
        .lines()
        .find(|l| l.contains("certificate"))
        .expect("certificate hash is stamped into the source");
    println!("stamped     :{}", cert_line.trim_start_matches("//"));

    // 2. Autotune the bandwidth-bound deep8 kernel at a demo scale.
    //    (The full-scale measurement lives in the `autotune` bench
    //    experiment, which writes BENCH_pr9.json.)
    let entry = zoo::deep8(6, 2048);
    let maps = entry.maps(Layout::Interleaved);
    let map_refs: Vec<Option<&OvMap>> = maps.iter().map(|m| m.as_ref()).collect();
    let cfg = AutotuneConfig {
        tiles0: vec![2, 4],
        tiles1: vec![64, 256],
        top_k: 2,
        seed: 7,
        ..AutotuneConfig::default()
    };
    let report = autotune(entry.name, &entry.nest, &map_refs, entry.skew_f, &cfg)?;

    println!("\ntile     memsim-cycles  wall-ns      status");
    for c in &report.candidates {
        println!(
            "{:<8} {:<14} {:<12} {}",
            format!("{}x{}", c.tile[0], c.tile[1]),
            c.memsim_cycles,
            c.wall_ns.map_or("-".into(), |ns| ns.to_string()),
            match &c.status {
                CandidateStatus::Ranked => "ranked",
                CandidateStatus::Timed => "timed",
                CandidateStatus::CompileFailed(_) => "compile failed",
                CandidateStatus::RunFailed(_) => "run failed",
                CandidateStatus::TimedOut => "timed out",
            }
        );
    }
    match (report.degraded.as_ref(), report.best, report.best_speedup()) {
        (Some(why), _, _) => println!("\ndegraded to memsim-only ranking: {why:?}"),
        (None, Some(bi), Some(s)) => {
            let b = &report.candidates[bi];
            println!(
                "\nbest tile {}x{}: {s:.2}x over the untiled UOV-mapped sweep",
                b.tile[0], b.tile[1]
            );
        }
        _ => println!("\nno candidate was timed"),
    }
    Ok(())
}
