//! The planning mesh, end to end: three shards, a request routed by
//! consistent hash to its home shard, a distributed search whose home
//! shard is killed mid-search (its work units re-dispatched along the
//! ring), and a byte-identical certificate against the direct solve.
//!
//! Run with: `cargo run --release --example mesh_roundtrip`

use uov::core::certify::certify;
use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::isg::{ivec, Stencil};
use uov::service::{
    MeshClient, MeshConfig, MeshEvent, ObjectiveSpec, PlanRequest, ReplicaSet, ServerConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three shards on ephemeral ports; each keeps its address across
    // restarts, so the ring never goes stale.
    let mut set = ReplicaSet::start(3, ServerConfig::default())?;
    println!("shards: {}", set.endpoints().join(", "));

    // The mesh: a consistent-hash ring over the shard endpoints. Tiny
    // local-prefix and per-unit budgets force a multi-round distributed
    // search so the mid-search kill has something to interrupt.
    let endpoints: Vec<String> = set.endpoints().to_vec();
    let mut mesh = MeshClient::new(
        &endpoints,
        MeshConfig {
            local_prefix_nodes: 4,
            unit_node_budget: 12,
            ..MeshConfig::default()
        },
    )?;

    // The problem, and what a direct in-process solve says about it.
    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 5]])?;
    let direct = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )?;
    let cert = certify(&stencil, &Objective::ShortestVector, &direct)?;
    let req = PlanRequest {
        stencil,
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    };

    // Every coordinator computes the same home shard for this problem —
    // the ring is a pure function of the endpoint names and the
    // problem's canonical fingerprint.
    let home = mesh.ring().route(MeshClient::routing_key(&req));
    println!("routed: home shard is #{home} ({})", endpoints[home]);

    // Distribute the search, killing the home shard at the first merge
    // round: its in-flight work units miss their lease and re-dispatch
    // to the next live ring successor.
    let resp = mesh.plan_distributed_hooked(&req, &mut |round| {
        if round == 0 {
            println!("round 0: killing home shard #{home} mid-search");
            set.kill(home);
        }
    })?;

    let stats = mesh.stats();
    println!(
        "survived: {} merge round(s), {} work unit(s), {} re-dispatch(es)",
        stats.rounds, stats.units_dispatched, stats.redispatches
    );
    for event in mesh.take_events() {
        if let MeshEvent::UnitRedispatched {
            round,
            unit,
            from,
            to,
        } = event
        {
            println!("  round {round}: unit {unit} re-dispatched shard #{from} → #{to}");
        }
    }

    println!(
        "mesh answer:   uov {} cost {} certificate {:#018x}",
        resp.uov, resp.cost, resp.certificate_hash
    );
    println!(
        "direct answer: uov {} cost {} certificate {:#018x}",
        direct.uov, direct.cost, cert.transcript_hash
    );
    assert_eq!(resp.uov, direct.uov);
    assert_eq!(resp.cost, direct.cost);
    assert_eq!(resp.certificate_hash, cert.transcript_hash);
    println!("byte-identical: the kill and re-dispatch never touched the answer");

    set.shutdown_all();
    Ok(())
}
