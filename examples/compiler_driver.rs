//! The whole pipeline as a single compiler pass: analyse a loop nest,
//! pick per-statement UOVs, build mappings, advise on tiling, and emit
//! the transformed pseudocode (the paper's Figure 1(a) → 1(b), automated).
//!
//! Run with: `cargo run --release --example compiler_driver`

use uov::driver::plan;
use uov::loopir::{codegen, examples};
use uov::storage::Layout;

fn main() -> Result<(), uov::Error> {
    for (name, nest) in [
        (
            "figure-1 running example (12×8)",
            examples::fig1_nest(12, 8),
        ),
        (
            "5-point stencil (T=6, L=24)",
            examples::stencil5_nest(6, 24),
        ),
        (
            "protein string matching (10×14)",
            examples::psm_nest(10, 14),
        ),
    ] {
        println!("======== {name} ========\n");
        println!("-- original --\n{}", codegen::emit_natural(&nest));
        let p = plan(&nest, Layout::Interleaved)?;
        for (idx, stmt) in p.statements.iter().enumerate() {
            match stmt {
                Err(e) => println!("statement {idx}: not UOV-eligible: {e}"),
                Ok(s) => {
                    println!(
                        "statement {idx}: stencil {:?}\n  UOV {} → {} cells (was {})",
                        s.stencil, s.uov, s.mapped_cells, s.natural_cells
                    );
                    if let Some(cert) = &s.certificate {
                        println!("  {cert}");
                        println!("  certificate transcript {:#018x}", cert.transcript_hash);
                    }
                }
            }
        }
        println!(
            "tiling: {}",
            if p.rectangular_tiling_legal {
                "rectangular tiling legal as-is".to_string()
            } else {
                format!("needs skew j' = j + {}·i", p.skew_factor.expect("2-D nest"))
            }
        );
        if let Some(Ok(s)) = p.statements.first() {
            if let Some(code) = &s.code {
                println!("\n-- OV-mapped (statement 0) --\n{code}");
            }
        }
    }

    // The same pass under a hard real-time budget: statements whose search
    // is cut short keep the best legal UOV found and record a degradation.
    // (An already-expired deadline, so the degraded path always shows; a
    // real pass would use e.g. `with_deadline(Duration::from_millis(1))`.)
    use std::time::Duration;
    use uov::core::Budget;
    use uov::driver::{plan_with, PlanConfig};
    let nest = examples::stencil5_nest(6, 24);
    let config = PlanConfig {
        layout: Layout::Interleaved,
        budget: Budget::unlimited().with_deadline(Duration::ZERO),
        ..PlanConfig::default()
    };
    let p = plan_with(&nest, &config)?;
    println!("======== budgeted pass (expired deadline) ========\n");
    for stmt in p.statements.iter().flatten() {
        match &stmt.degradation {
            Some(d) => println!("UOV {} — {d}", stmt.uov),
            None => println!("UOV {} — search ran to completion", stmt.uov),
        }
        // Even the degraded fallback is independently certified before
        // plan_with returns; the certificate says so explicitly.
        if let Some(cert) = &stmt.certificate {
            println!("  {cert}");
            println!("  certificate transcript {:#018x}", cert.transcript_hash);
        }
    }
    Ok(())
}
