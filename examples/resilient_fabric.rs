//! The self-healing fabric, end to end: three replicas behind seeded
//! chaos proxies, a [`ResilientClient`] planning through the faults, a
//! replica killed and restarted mid-run, and a warm-cache drain —
//! every answer byte-identical to a direct in-process solve.
//!
//! Run with: `cargo run --release --example resilient_fabric`

use std::time::Duration;

use uov::core::certify::certify;
use uov::core::search::{find_best_uov, Objective, SearchConfig};
use uov::isg::{ivec, Stencil};
use uov::service::{
    ChaosConfig, ChaosProxy, FabricEvent, ObjectiveSpec, PlanRequest, ReplicaSet, ResilientClient,
    ResilientConfig, ServerConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three replicas on ephemeral ports; each keeps its address across
    // restarts so the client's replica list never goes stale.
    let mut set = ReplicaSet::start(3, ServerConfig::default())?;
    println!("replicas: {}", set.endpoints().join(", "));

    // A chaos proxy in front of each replica: seeded fault injection —
    // resets, bit-flips, truncation, latency — deterministic per seed.
    let chaos = ChaosConfig {
        seed: 7,
        reset_per_mille: 50,
        flip_per_mille: 50,
        truncate_per_mille: 40,
        delay_per_mille: 60,
        delay_ms: 3,
        ..ChaosConfig::default()
    };
    let proxies: Vec<ChaosProxy> = set
        .endpoints()
        .iter()
        .map(|ep| ChaosProxy::start(ep, chaos))
        .collect::<Result<_, _>>()?;
    let endpoints: Vec<String> = proxies.iter().map(|p| p.endpoint().to_string()).collect();

    // The fabric: ordered replicas, per-attempt timeouts, deterministic
    // backoff, per-replica circuit breakers.
    let mut fabric = ResilientClient::new(
        &endpoints,
        ResilientConfig {
            attempt_timeout: Duration::from_millis(500),
            seed: 7,
            ..ResilientConfig::default()
        },
    )?;

    let stencil = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
    let request = PlanRequest {
        stencil: stencil.clone(),
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    };

    // Ground truth from a direct in-process solve: the fabric may retry
    // and fail over, but it may never change this triple.
    let local = find_best_uov(
        &stencil,
        Objective::ShortestVector,
        &SearchConfig::default(),
    )?;
    let cert = certify(&stencil, &Objective::ShortestVector, &local)?;
    println!(
        "local   : uov {}  cost {}  certificate {:#018x}",
        local.uov, local.cost, cert.transcript_hash
    );

    for round in 0..6 {
        if round == 2 {
            set.kill(0);
            println!("-- killed replica 0 (no warm-cache save: crash semantics)");
        }
        if round == 4 {
            set.restart(0)?;
            println!("-- restarted replica 0 on its original port");
        }
        let resp = fabric.plan(&request)?;
        assert_eq!(resp.uov, local.uov);
        assert_eq!(resp.cost, local.cost);
        assert_eq!(resp.certificate_hash, cert.transcript_hash);
        println!(
            "round {round}: uov {}  cache {:?}  certificate {:#018x}",
            resp.uov, resp.cache, resp.certificate_hash
        );
    }

    // The decision log records every retry, failover, backoff and
    // breaker transition — replayable from the seed.
    let events = fabric.take_events();
    let failures = events
        .iter()
        .filter(|e| matches!(e, FabricEvent::Failure { .. }))
        .count();
    println!(
        "fabric : {} events, {failures} absorbed failures, answers byte-identical throughout",
        events.len()
    );

    let faults: u64 = proxies
        .into_iter()
        .map(|p| {
            let s = p.stop();
            s.resets + s.bit_flips + s.truncations + s.delays
        })
        .sum();
    println!("chaos  : {faults} faults injected");
    set.shutdown_all();
    Ok(())
}
