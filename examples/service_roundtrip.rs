//! One round trip through the planning service: start a server
//! in-process, plan the paper's Figure-1 stencil over the wire, then
//! show the two cache behaviours the service exists for — a replay hit
//! that is certificate-identical to the cold solve, and a coordinate-
//! permuted resubmission answered from the same canonical entry.
//!
//! Run with: `cargo run --release --example service_roundtrip`

use uov::isg::{ivec, Stencil};
use uov::service::{serve, Client, ObjectiveSpec, PlanRequest, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Port 0 picks a free port; a production deployment would pass a
    // fixed TCP address or `unix:/path/to.sock`.
    let server = serve("127.0.0.1:0", ServerConfig::default())?;
    println!("server listening on {}", server.endpoint());

    let mut client = Client::connect(server.endpoint())?;
    let request = |stencil: Stencil| PlanRequest {
        stencil,
        objective: ObjectiveSpec::ShortestVector,
        deadline_ms: 0,
        flags: 0,
    };

    // Cold solve: a fresh search runs server-side, and the response
    // carries the certificate's transcript hash.
    let fig1 = Stencil::new(vec![ivec![1, 0], ivec![0, 1], ivec![1, 1]])?;
    let cold = client.plan(&request(fig1.clone()))?;
    println!(
        "cold    : uov {}  cost {}  cache {:?}  certificate {:#018x}",
        cold.uov, cold.cost, cold.cache, cold.certificate_hash
    );

    // Replay: served from the plan cache, certificate-identical.
    let replay = client.plan(&request(fig1))?;
    println!(
        "replay  : uov {}  cost {}  cache {:?}  certificate {:#018x}",
        replay.uov, replay.cost, replay.cache, replay.certificate_hash
    );
    assert_eq!(replay.certificate_hash, cold.certificate_hash);

    // Coordinate-permuted resubmission: (i,j) → (j,i) of the same loop.
    // The canonicalizing cache recognises the problem and answers from
    // the entry above, mapped back through the inverse permutation —
    // byte-identical to what a direct search of this problem returns.
    let swapped = Stencil::new(vec![ivec![0, 1], ivec![1, 0], ivec![1, 1]])?;
    let permuted = client.plan(&request(swapped))?;
    println!(
        "permuted: uov {}  cost {}  cache {:?}",
        permuted.uov, permuted.cost, permuted.cache
    );

    // Graceful drain: in-flight work finishes, then the process exits.
    client.shutdown_server()?;
    let stats = server.join();
    println!(
        "drained : {} requests, {} responses, {} protocol errors, {} panics",
        stats.requests, stats.responses, stats.protocol_errors, stats.panics
    );
    Ok(())
}
